"""Async serving demo: coalescing identical in-flight queries.

Starts the asyncio front-end (the ``repro serve --async-io`` server)
over a small university-style dataset, then fires 40 concurrent
requests from one event loop via :class:`repro.AsyncClient` — 30 of
them the *same* query under client-regenerated variable names, which
is what heavy traffic on a hot OMQ looks like.  The server coalesces
the identical in-flight requests onto one shared ``Plan.execute``,
micro-batches the rest, and reports what it did in ``/stats``.

Run it::

    python examples/async_demo.py
"""

import asyncio

from repro import ABox, OMQ, AsyncClient, ServiceError, TBox
from repro.queries import chain_cq
from repro.service import OMQService, serve_in_background

TBOX = TBox.parse("roles: P, R, S\nP <= S\nP <= R-")

DATA = ABox.parse("""
    R(ada, grace), R(grace, edsger), R(edsger, barbara)
    S(grace, edsger), S(edsger, barbara), S(barbara, ada)
    P(ada, grace), A_P(barbara)
""")


async def drive(url: str) -> None:
    async with AsyncClient.connect(url) as client:
        await client.register_dataset("demo", DATA)

        # 30 renamed twins of one hot query + 10 colder shapes, all in
        # flight at once from this single event loop
        hot = [OMQ(TBOX, chain_cq("RS", prefix=f"client{i}_"))
               for i in range(30)]
        cold = [OMQ(TBOX, chain_cq(labels))
                for labels in ("RSR", "SR", "RR", "SS", "RSS",
                               "SRS", "RSRS", "SRR", "RRS", "SSR")]
        results = await asyncio.gather(
            *[client.answer("demo", omq) for omq in hot + cold])

        print(f"{len(results)} concurrent requests answered")
        print(f"hot query answers: {sorted(results[0].answers)}")

        stats = await client.stats()
        serving = stats["async_serving"]
        print(f"coalesced:        {serving['coalesced']} requests "
              "joined an identical in-flight execution")
        print(f"micro-batches:    {serving['batches']} batches for "
              f"{serving['batched_requests']} executed requests")
        print(f"peak queue depth: {serving['peak_pending']} "
              f"(backpressure at {serving['max_pending']})")

        # an update invalidates coalescing for the dataset, so the
        # next identical query re-executes against the new data
        await client.update("demo", inserts=[("R", ("barbara", "alan")),
                                             ("S", ("alan", "ada"))])
        fresh = await client.answer("demo", OMQ(TBOX, chain_cq("RS")))
        print(f"after update:     {len(fresh.answers)} answers "
              f"(was {len(results[0].answers)})")

        try:
            await client.answer("missing", OMQ(TBOX, chain_cq("RS")))
        except ServiceError as error:
            print(f"structured error: {error.status} "
                  f"{error.error_type}: {error}")


def main() -> None:
    service = OMQService(max_workers=4)
    with serve_in_background(service, batch_window=0.005) as handle:
        print(f"async server on {handle.url}")
        asyncio.run(drive(handle.url))
    service.close()


if __name__ == "__main__":
    main()
