"""Running NDL rewritings as SQL views in a standard DBMS.

Section 6 of the paper asks "whether our rewritings can be efficiently
implemented using views in standard DBMSs".  This example compiles the
Tw rewriting of the running-example OMQ to SQL, prints the generated
``CREATE VIEW`` script and the single ``WITH``-query form, and then
evaluates the same rewriting on three interchangeable backends — the
native Python engine, SQLite with materialised tables (the RDFox
strategy of Appendix D.4) and SQLite views — checking they all agree.

Run with::

    python examples/sql_views.py
"""

import time

from repro import ABox, OMQ, TBox, chain_cq, evaluate, evaluate_sql, rewrite
from repro.data.generator import erdos_renyi_abox
from repro.sql import SQLEngine, compile_query


def main() -> None:
    tbox = TBox.parse("""
        roles: P, R, S
        P <= S
        P <= R-
    """)
    query = chain_cq("RSR")
    omq = OMQ(tbox, query)
    ndl = rewrite(omq, method="tw")

    print("The Tw rewriting as NDL:")
    print(ndl)

    compilation = compile_query(ndl)
    print("\nThe same rewriting as SQL views:")
    print(compilation.script())

    print("\n... or as one registerable WITH-query:")
    print(compilation.cte_query())

    # a small demonstration database, completed for the ontology as
    # rewritings over complete instances require
    abox = ABox.parse("""
        R(ann, bob), S(bob, carl), R(carl, dee),
        A_P(bob), R(dee, ann)
    """).complete(tbox)

    print("\nAnswers from the three backends:")
    python_result = evaluate(ndl, abox)
    print(f"  python engine : {sorted(python_result.answers)}")
    sql_result = evaluate_sql(ndl, abox, materialised=True)
    print(f"  sqlite tables : {sorted(sql_result.answers)}")
    view_result = evaluate_sql(ndl, abox, materialised=False)
    print(f"  sqlite views  : {sorted(view_result.answers)}")
    assert python_result.answers == sql_result.answers == view_result.answers

    # at scale, an SQLEngine amortises loading across many queries
    print("\nTiming on an Erdos-Renyi instance (Table 2 style):")
    big = erdos_renyi_abox(1000, 0.01, 0.05, seed=7).complete(tbox)
    with SQLEngine(big) as engine:
        for label, run in (
                ("python engine", lambda: evaluate(ndl, big)),
                ("sqlite tables",
                 lambda: engine.evaluate(ndl, materialised=True)),
                ("sqlite views",
                 lambda: engine.evaluate(ndl, materialised=False))):
            start = time.perf_counter()
            result = run()
            seconds = time.perf_counter() - start
            print(f"  {label:14s}: {len(result.answers):6d} answers "
                  f"in {seconds:.3f}s")


if __name__ == "__main__":
    main()
