"""Quickstart: ontology-mediated query answering in five minutes.

Builds the paper's running example (Examples 8 and 11), rewrites the
ontology-mediated query with each of the three optimal rewriters and
evaluates the rewritings over a small data instance.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ABox,
    AnswerSession,
    CQ,
    OMQ,
    TBox,
    certain_answers,
    compile_omq,
    rewrite,
)


def main() -> None:
    # The ontology of Example 11: P is a subrole of S, and P(x, y)
    # implies R(y, x).  Normalisation adds the surrogate concepts
    # A_P <-> exists P etc. automatically.
    tbox = TBox.parse("""
        roles: P, R, S
        P <= S
        P <= R-
    """)
    print("Ontology:")
    print(tbox)
    print(f"depth = {tbox.depth()}")

    # The CQ of Example 8 (a linear query with two answer variables).
    query = CQ.parse(
        "R(x0,x1), S(x1,x2), R(x2,x3), R(x3,x4), S(x4,x5), R(x5,x6), "
        "R(x6,x7)",
        answer_vars=["x0", "x7"])
    print(f"\nQuery: {query}")
    omq = OMQ(tbox, query)
    print(f"OMQ class: {omq.omq_class()}")

    # Some data: one chain that matches the query directly, and one
    # that matches only thanks to the ontology (A_P- marks an
    # individual with an anonymous P-predecessor).
    data = ABox.parse("""
        R(c0,c1), S(c1,c2), R(c2,c3), R(c3,c4), S(c4,c5), R(c5,c6),
        R(c6,c7),
        A_P-(d0), R(d0,d3), A_P-(d3), R(d3,d6), R(d6,d7)
    """)

    print("\nCertain answers (reference semantics via the chase):")
    print(" ", sorted(certain_answers(tbox, data, query)))

    # One answer() call loads the data each time; an AnswerSession is
    # the paper's experimental setting — many rewritings, one instance
    # loaded (and indexed) once.
    print("\nNDL rewritings (Section 3 of the paper), compiled once "
          "per method and executed over the shared session:")
    with AnswerSession(data) as session:
        for method in ("lin", "log", "tw", "ucq"):
            plan = compile_omq(omq, method=method)
            result = plan.execute(session)
            print(f"  {method:4s}: {plan.rules:3d} clauses, width "
                  f"{plan.width}, depth {plan.depth:2d} -> "
                  f"answers {sorted(result.answers)}")

    # a plan is frozen and reusable: explain() reports what was
    # compiled, execute() runs it over any data instance
    plan = compile_omq(omq, method="lin")
    report = plan.explain()
    print(f"\nplan.explain(): method={report['method']} "
          f"rules={report['rules']} width={report['width']} "
          f"depth={report['depth']} "
          f"compile={report['compile_seconds']}s")

    print("\nThe Lin rewriting itself:")
    print(rewrite(omq, method="lin"))


if __name__ == "__main__":
    main()
