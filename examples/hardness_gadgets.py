"""Solving NP-complete problems by asking an ontology: the hardness
gadgets of Sections 4-5 in action.

* Theorem 15: hitting-set instances become OMQs whose ontology depth is
  the parameter — the canonical model enumerates candidate hitting sets.
* Theorem 17: a single *fixed* ontology ``T_dagger`` over the one-atom
  data ``{A(a)}`` decides SAT as the query varies.
* Theorem 22: a fixed ontology ``T_ddagger`` decides membership in the
  hardest context-free language with *linear* queries.

Run with::

    python examples/hardness_gadgets.py
"""

from repro.chase import certain_answers
from repro.hardness import (
    Hypergraph,
    has_hitting_set,
    hitting_set_omq,
    in_hardest_language,
    is_satisfiable,
    sat_omq,
    tokenize,
    word_omq,
)
from repro.rewriting import OMQ, answer


def hitting_set_demo() -> None:
    print("== Theorem 15: hitting set as OMQ answering ==")
    hypergraph = Hypergraph.of(3, [[1, 3], [2, 3], [1, 2]])
    print("hypergraph: vertices 1-3, edges {1,3}, {2,3}, {1,2}")
    for k in (1, 2):
        tbox, query, abox = hitting_set_omq(hypergraph, k)
        via_omq = bool(certain_answers(tbox, abox, query))
        brute = has_hitting_set(hypergraph, k)
        print(f"  k={k}: OMQ says {via_omq!s:5} (brute force: {brute}) "
              f"[ontology depth {tbox.depth()}, {len(query)} query atoms]")
    print()


def sat_demo() -> None:
    print("== Theorem 17: SAT with one fixed ontology ==")
    formulas = {
        "(p1 | p2) & ~p1": [[1, 2], [-1]],
        "p1 & ~p1": [[1], [-1]],
        "(p1|p2) & (~p1|p2) & (p1|~p2) & (~p1|~p2)":
            [[1, 2], [-1, 2], [1, -2], [-1, -2]],
    }
    for text, cnf in formulas.items():
        tbox, query, abox = sat_omq(cnf)
        # the Tw rewriter handles the infinite-depth T_dagger
        via_omq = bool(answer(OMQ(tbox, query), abox, method="tw").answers)
        print(f"  {text:45s} -> OMQ {via_omq!s:5} "
              f"(DPLL: {is_satisfiable(cnf)})")
    print("  (the ontology and the data {A(a)} never change; only the "
          "tree-shaped query does)")
    print()


def hardest_language_demo() -> None:
    print("== Theorem 22: the hardest CFL with linear queries ==")
    for text in ("[a1b1]", "[a1a2#b2b1]", "[a1a2#b2b1][b2b1]",
                 "[#a1a2#b2b1][a1b1]"):
        word = tokenize(text)
        tbox, query, abox = word_omq(word)
        via_omq = bool(answer(OMQ(tbox, query), abox, method="tw").answers)
        reference = in_hardest_language(word)
        print(f"  {text:22s} in L: {via_omq!s:5} (reference: {reference})")


if __name__ == "__main__":
    hitting_set_demo()
    sat_demo()
    hardest_language_demo()
