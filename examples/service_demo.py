"""The serving layer end to end: cache, batches, updates, HTTP.

Registers a dataset with an :class:`~repro.service.service.OMQService`,
shows the rewriting cache recognising a repeat query under fresh
variable names, answers a deduplicated batch across every available
engine,
applies incremental insertions/deletions (answers track the data with
no reload), and finally drives the same service over its JSON/HTTP
front-end on an ephemeral port.

Run with::

    python examples/service_demo.py
"""

import json
import threading
import urllib.request

from repro import ABox, CQ, OMQ, OMQService, TBox
from repro.engine import available_engines
from repro.service import BatchRequest
from repro.service.serve import build_server

ONTOLOGY = """
    roles: P, R, S
    P <= S
    P <= R-
"""

DATA = """
    R(ada, turing), A_P(turing),
    R(turing, lovelace), S(lovelace, hopper)
"""


def main() -> None:
    tbox = TBox.parse(ONTOLOGY)
    service = OMQService(cache_size=64, max_workers=2)
    service.register_dataset("people", ABox.parse(DATA))

    # -- the rewriting cache -------------------------------------------
    query = CQ.parse("R(x, y), S(y, z)", answer_vars=["x"])
    first = service.answer("people", OMQ(tbox, query))
    # a client regenerating variable names still hits the cache: keys
    # are canonical up to variable renaming
    renamed = CQ.parse("R(a, b), S(b, c)", answer_vars=["a"])
    second = service.answer("people", OMQ(tbox, renamed))
    print(f"answers:            {sorted(first.answers)}")
    print(f"first request:      cached_rewriting={first.cached_rewriting}")
    print(f"renamed repeat:     cached_rewriting={second.cached_rewriting} "
          f"({second.seconds * 1000:.2f} ms)")

    # -- batch answering with deduplication ----------------------------
    batch = service.answer_batch(
        [BatchRequest("people", OMQ(tbox, query), engine=engine)
         for engine in available_engines()]
        + [BatchRequest("people", OMQ(tbox, renamed))])
    print("batch agreement:    "
          f"{len({frozenset(r.answers) for r in batch})} distinct "
          f"answer set(s) from {len(batch)} requests")

    # -- incremental updates -------------------------------------------
    service.insert_facts("people", [("R", ("hopper", "curie")),
                                    ("A_P", ("curie",))])
    after_insert = service.answer("people", OMQ(tbox, query))
    service.delete_facts("people", [("R", ("ada", "turing"))])
    after_delete = service.answer("people", OMQ(tbox, query))
    print(f"after insert:       {sorted(after_insert.answers)}")
    print(f"after delete:       {sorted(after_delete.answers)}")
    stats = service.stats()
    print(f"cache:              {stats['cache']['hits']} hits / "
          f"{stats['cache']['misses']} misses")

    # -- the HTTP front-end --------------------------------------------
    server = build_server(service, port=0, verbose=False)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    request = urllib.request.Request(
        f"http://{host}:{port}/answer",
        json.dumps({"dataset": "people", "tbox": ONTOLOGY,
                    "query": "R(x, y), S(y, z)",
                    "answers": ["x"]}).encode(),
        {"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        payload = json.loads(response.read())
    print(f"HTTP /answer:       {payload['answers']} "
          f"(cached_rewriting={payload['cached_rewriting']})")
    server.shutdown()
    server.server_close()
    service.close()


if __name__ == "__main__":
    main()
