"""The Section 6 'adaptable splitting strategy' in action.

The paper's experiments (Appendix D.4) show that none of the three
optimal rewriters Lin/Log/Tw wins on every dataset — the best choice
depends on the data distribution, exactly like join-order planning in
a DBMS.  Section 6 therefore proposes estimating the evaluation cost
of candidate rewritings from table statistics and picking the
cheapest.  This example does that on two deliberately different data
distributions and shows the planner switching strategies.

Run with::

    python examples/adaptive_planner.py
"""

from repro import OMQ, TBox, chain_cq, evaluate, rewrite
from repro.data.generator import erdos_renyi_abox
from repro.rewriting import DataStatistics, adaptive_rewrite, estimate_cost


def report(label, tbox, omq, completed) -> None:
    print(f"\n{label}")
    stats = DataStatistics.from_abox(completed)
    print(f"  |ind| = {stats.domain_size}, "
          f"|R| = {stats.predicate('R').size}, "
          f"|S| = {stats.predicate('S').size}")
    choice = adaptive_rewrite(omq, completed)
    print("  estimated costs:")
    for method in sorted(choice.costs, key=choice.costs.get):
        marker = "  <- chosen" if method == choice.method else ""
        print(f"    {method:8s} {choice.costs[method]:14.0f}{marker}")
    print("  measured tuples materialised:")
    for method in sorted(choice.costs):
        ndl = rewrite(omq, method=method)
        tuples = evaluate(ndl, completed).generated_tuples
        print(f"    {method:8s} {tuples:14d}")
    chosen = evaluate(choice.query, completed)
    print(f"  adaptive evaluation: {len(chosen.answers)} answers, "
          f"{chosen.generated_tuples} tuples")


def main() -> None:
    tbox = TBox.parse("""
        roles: P, R, S
        P <= S
        P <= R-
    """)
    query = chain_cq("RSRRSRR")
    omq = OMQ(tbox, query)
    print(f"OMQ: {query}")
    print(f"class: {omq.omq_class()}")

    # Distribution 1: the paper's Table 2 style - dense R, no S at all
    # (S only arises from the ontology through P)
    sparse = erdos_renyi_abox(300, 0.03, 0.05, seed=11).complete(tbox)
    report("Dataset A - Erdos-Renyi, no raw S edges:", tbox, omq, sparse)

    # Distribution 2: long R/S chains, which suit the linear slicing
    # of the Lin rewriter
    from repro import ABox

    chains = ABox()
    labels = "RSRRSRR" * 3
    for chain in range(40):
        for i, label in enumerate(labels):
            chains.add(label, f"c{chain}_{i}", f"c{chain}_{i + 1}")
    chains = chains.complete(tbox)
    report("Dataset B - disjoint R/S chains:", tbox, omq, chains)

    # statistics can also be reused without re-scanning the data
    stats = DataStatistics.from_abox(sparse)
    lin_cost = estimate_cost(rewrite(omq, method="lin"), stats)
    print("\nPre-computed statistics reuse: Lin cost on dataset A = "
          f"{lin_cost:.0f}")


if __name__ == "__main__":
    main()
