"""The observability layer end to end: metrics, traces, slow queries.

Boots the HTTP front-end on an ephemeral port with a 0ms slow-query
threshold (so every request lands in the slow-query log), then:

* answers a query twice with a caller-chosen ``X-Repro-Trace-Id`` and
  ``"trace": true``, printing the per-span breakdown of the cached
  repeat (decode / cache-lookup / execute / encode);
* scrapes ``GET /metrics`` and shows a few of the Prometheus families
  both servers export;
* reads the slow-query log back from ``/stats`` — each entry carries
  the trace ID and plan fingerprint that make a slow request
  attributable;
* switches the ``repro.*`` loggers to structured JSON lines, the
  shape a log pipeline would ingest.

Run with::

    python examples/obs_demo.py
"""

import io
import json
import threading
import urllib.request

from repro import ABox, CQ, OMQ, OMQService, TBox
from repro.obs import configure_logging, get_logger
from repro.service.serve import build_server

ONTOLOGY = """
    roles: P, R, S
    P <= S
    P <= R-
"""

DATA = """
    R(ada, turing), A_P(turing),
    R(turing, lovelace), S(lovelace, hopper)
"""


def call(url, path, payload=None, trace_id=None):
    headers = {"Content-Type": "application/json"}
    if trace_id:
        headers["X-Repro-Trace-Id"] = trace_id
    data = None if payload is None else json.dumps(payload).encode()
    with urllib.request.urlopen(
            urllib.request.Request(url + path, data, headers)) as reply:
        raw = reply.read()
        echoed = reply.headers.get("X-Repro-Trace-Id")
    if reply.headers.get("Content-Type", "").startswith("application/json"):
        return json.loads(raw), echoed
    return raw.decode(), echoed


def main() -> None:
    service = OMQService(cache_size=64, max_workers=2)
    service.obs.slow_query_ms = 0.0  # demo: everything is "slow"
    service.register_dataset("people", ABox.parse(DATA))
    server = build_server(service, port=0, verbose=False)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"

    # -- traced requests ----------------------------------------------
    payload = {"dataset": "people", "tbox_text": ONTOLOGY,
               "query": "R(x, y), S(y, z)", "answers": ["x"],
               "trace": True}
    call(url, "/answer", payload, trace_id="demo-cold")  # warms cache
    body, echoed = call(url, "/answer", payload, trace_id="demo-hot")
    print(f"answers:          {sorted(map(tuple, body['answers']))}")
    print(f"echoed trace id:  {echoed}")
    print("span breakdown of the cached repeat:")
    for span in body["trace"]["spans"]:
        print(f"  {span['name']:<14} {span['seconds'] * 1000:8.3f} ms "
              f"{span.get('attrs', '')}")
    annotations = body["trace"]["annotations"]
    print(f"plan fingerprint: {annotations['plan_fingerprint'][:16]}... "
          f"(cached={annotations['cached_rewriting']})")

    # -- the Prometheus exporter ---------------------------------------
    text, _ = call(url, "/metrics")
    wanted = ("repro_http_requests_total", "repro_cache_hits_total",
              "repro_answer_seconds_count")
    print("\nGET /metrics (excerpt):")
    for line in text.splitlines():
        if line.startswith(wanted):
            print(f"  {line}")

    # -- the slow-query log --------------------------------------------
    stats, _ = call(url, "/stats")
    print("\nslow-query log (threshold 0ms, so every request logs):")
    for entry in stats["observability"]["slow_query_log"][-2:]:
        print(f"  {entry['route']} {entry['ms']}ms "
              f"trace_id={entry.get('trace_id')}")

    # -- structured JSON logs ------------------------------------------
    stream = io.StringIO()
    configure_logging("info", json_output=True, stream=stream)
    get_logger("demo").info("request finished",
                            extra={"route": "/answer", "status": 200})
    print("\none structured log line:")
    print(f"  {stream.getvalue().strip()}")

    server.shutdown()
    server.server_close()
    service.close()


if __name__ == "__main__":
    main()
