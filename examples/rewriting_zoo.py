"""The rewritings zoo of Appendix A.6: every rewriting of the running
example OMQ, printed side by side.

The OMQ couples the CQ of Example 8 (``q(x0, x7)`` over the chain
``R S R R S R R``) with the ontology of Example 11; the appendix works
out its UCQ (9 CQs), Log, Lin and Tw rewritings by hand, and this
script regenerates all of them.

Run with::

    python examples/rewriting_zoo.py
"""

from repro import CQ, OMQ, TBox, rewrite
from repro.complexity import analyse


def main() -> None:
    tbox = TBox.parse("""
        roles: P, R, S
        P <= S
        P <= R-
    """)
    query = CQ.parse(
        "R(x0,x1), S(x1,x2), R(x2,x3), R(x3,x4), S(x4,x5), R(x5,x6), "
        "R(x6,x7)",
        answer_vars=["x0", "x7"])
    omq = OMQ(tbox, query)
    print(f"OMQ: {query}")
    print(f"with ontology:\n{tbox}\n")

    expectations = {
        "ucq": "Appendix A.6.1 (9 CQs)",
        "log": "Appendix A.6.2",
        "lin": "Appendix A.6.3",
        "tw": "Appendix A.6.4 (10 clauses)",
    }
    for method, provenance in expectations.items():
        ndl = rewrite(omq, method=method)
        report = analyse(ndl)
        print("=" * 70)
        print(f"{method.upper()} rewriting - {provenance}")
        print(f"clauses={report.clauses} depth={report.depth} "
              f"width={report.width} linear={report.linear} "
              f"skinny-depth={report.skinny_depth:.1f}")
        print("-" * 70)
        print(ndl)
        print()


if __name__ == "__main__":
    main()
