"""The full classical OBDA pipeline of Section 1: ontology + GAV
mapping + relational source, with rewriting *unfolding* so that queries
run directly over the source database (``M(D)`` is never materialised).

Run with::

    python examples/obda_mapping.py
"""

from repro import CQ, OMQ, TBox, rewrite
from repro.obda import Database, Mapping, evaluate_over_database


def main() -> None:
    # the unified conceptual view the end users see
    tbox = TBox.parse("""
        roles: worksFor, managedBy
        Manager <= Employee
        Employee <= EworksFor
        EworksFor- <= Department
        Department <= EmanagedBy
        EmanagedBy- <= Manager
    """)

    # the actual source schema: emp(id, name, dept, role), dept(id, city)
    mapping = Mapping()
    mapping.add("Employee", ["x"], [("emp", ["x", "n", "d", "r"])])
    mapping.add("worksFor", ["x", "d"], [("emp", ["x", "n", "d", "r"])])
    mapping.add("Department", ["d"], [("dept", ["d", "c"])])
    mapping.add("Manager", ["x"],
                [("emp", ["x", "n", "d", "r"]), ("mgr_flag", ["x"])])

    database = Database()
    for row in (("e1", "ann", "d1", "mgr"), ("e2", "bob", "d1", "dev"),
                ("e3", "eve", "d2", "dev"), ("e4", "joe", "d3", "dev")):
        database.add("emp", *row)
    database.add("mgr_flag", "e1")
    database.add("dept", "d1", "oslo")
    database.add("dept", "d2", "bergen")

    print(f"source database: {len(database)} rows over "
          f"{sorted(database.relations)}")
    print(f"virtual ABox M(D): {len(mapping.apply(database))} atoms\n")

    queries = {
        "employees and their departments":
            CQ.parse("Employee(x), worksFor(x, d)",
                     answer_vars=["x", "d"]),
        "employees in a *managed* department (manager may be implicit)":
            CQ.parse("worksFor(x, d), managedBy(d, m)", answer_vars=["x"]),
        "departments (including the ontology-implied d3)":
            CQ.parse("worksFor(x, d), Department(d)", answer_vars=["d"]),
    }
    for title, query in queries.items():
        omq = OMQ(tbox, query)
        # the ontology has a managedBy/worksFor cycle (infinite depth),
        # so the tree-witness rewriter of Section 3.4 is the right tool
        ndl = rewrite(omq, method="tw", over="arbitrary")
        unfolded = mapping.unfold(ndl)
        result = evaluate_over_database(ndl, mapping, database)
        print(title)
        print(f"  rewriting: {len(ndl)} clauses -> unfolded over the "
              f"source schema: {len(unfolded)} clauses")
        print(f"  answers: {sorted(result.answers)}\n")


if __name__ == "__main__":
    main()
