"""Multi-tenancy and durability: two isolated tenants, one restart.

Two tenants register a dataset under the *same name* against one
service with quotas and a data directory.  Each only ever sees its
own facts; a quota breach and a rate-limit rejection surface as
structured errors; and after closing the service a fresh one pointed
at the same directory warm-restores both tenants — answers, epochs
and standing subscriptions included.

Run with::

    python examples/tenants_demo.py
"""

import tempfile

from repro import ABox, OMQ, OMQService, TBox, chain_cq
from repro.client import Client
from repro.store import QuotaError, RateLimited, TenantQuota

ONTOLOGY = """
    roles: P, R, S
    P <= S
    P <= R-
"""

ACME_DATA = "P(anvil, rocket), R(rocket, coyote)"
GLOBEX_DATA = "P(widget, sprocket), R(sprocket, gizmo)"


def show(label, answers):
    rows = sorted(answers)
    print(f"  {label}: {rows if rows else '(none)'}")


def main() -> None:
    tbox = TBox.parse(ONTOLOGY)
    omq = OMQ(tbox, chain_cq("RS"))
    quota = TenantQuota(max_datasets=2, max_subscriptions=5,
                        rate_limit=100.0, rate_burst=5.0)

    with tempfile.TemporaryDirectory() as data_dir:
        service = OMQService(max_workers=2, data_dir=data_dir,
                             quota=quota)

        # -- isolation: same dataset name, two namespaces ---------------
        acme = Client.wrap(service, tenant="acme")
        globex = Client.wrap(service, tenant="globex")
        acme.register_dataset("orders", ABox.parse(ACME_DATA))
        globex.register_dataset("orders", ABox.parse(GLOBEX_DATA))

        print("each tenant sees only its own 'orders':")
        show("acme  ", acme.answer("orders", omq).answers)
        show("globex", globex.answer("orders", omq).answers)

        # -- standing queries survive restarts --------------------------
        sub = service.subscribe("orders", omq, tenant="acme")
        service.update("orders",
                       inserts=[("P", ("dynamite", "anvil"))],
                       tenant="acme")
        print(f"acme subscription after update: "
              f"{sorted(sub.answers)} (epoch {sub.epoch})")
        sub_id, sub_answers = sub.subscription_id, set(sub.answers)

        # -- quotas and rate limits are per tenant ----------------------
        try:
            acme.register_dataset("a2", ABox.parse("R(a, b)"))
            acme.register_dataset("a3", ABox.parse("R(a, b)"))
        except QuotaError as error:
            print(f"quota enforced: {error}")
        try:
            for _ in range(20):
                service.tenants.throttle("globex")
        except RateLimited as error:
            print(f"rate limited: retry in {error.retry_after:.2f}s")

        service.close()  # graceful: checkpoints every tenant file

        # -- warm restart ----------------------------------------------
        restarted = OMQService(max_workers=2, data_dir=data_dir,
                               quota=quota)
        counts = restarted.restore()
        print(f"warm restart restored {counts}")
        acme2 = Client.wrap(restarted, tenant="acme")
        globex2 = Client.wrap(restarted, tenant="globex")
        show("acme  ", acme2.answer("orders", omq).answers)
        show("globex", globex2.answer("orders", omq).answers)
        rearmed = restarted.standing.get(sub_id)
        assert set(rearmed.answers) == sub_answers
        print(f"subscription {sub_id!r} re-armed at epoch "
              f"{rearmed.epoch} with identical answers")
        restarted.close()


if __name__ == "__main__":
    main()
