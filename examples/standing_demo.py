"""Standing queries: subscribe once, receive exact answer deltas.

A monitoring dashboard should not re-run its query on a timer: it
should say once "tell me when the certain answers to this OMQ change"
and receive exactly the tuples that appeared and disappeared.  That
is ``Client.subscribe`` (see ``repro.standing``): the service keeps
every subscription's answers maintained *incrementally* inside its
update path — only the disjuncts of the rewriting that touch the
changed predicates are re-evaluated — and delivers
``AnswerDelta(added, removed, epoch)`` objects over long-poll or,
on the asyncio server, as a Server-Sent-Events stream.

Run with ``python examples/standing_demo.py``.
"""

import asyncio
import threading

from repro import ABox, AsyncClient, CQ, Client, OMQ, TBox
from repro.service import OMQService, serve_in_background

TBOX = TBox.parse("""
    roles: worksFor, manages
    Manager <= EmanagesEmployee
    EmanagesEmployee- <= Employee
    manages <= worksFor-
""".replace("EmanagesEmployee", "Emanages"))

QUERY = OMQ(TBOX, CQ.parse("worksFor(x, y), Manager(y)",
                           answer_vars=["x", "y"]))

def fresh_data() -> ABox:
    # each half registers its own copy: the service applies updates to
    # the registered ABox in place
    return ABox.parse("""
        worksFor(ana, bo)
        Manager(bo)
        worksFor(cy, dee)
    """)

UPDATES = (
    {"inserts": [("Manager", ("dee",))]},           # cy->dee appears
    {"inserts": [("manages", ("bo", "eve"))]},      # eve->bo via manages
    {"deletes": [("Manager", ("bo",))]},            # bo's pairs vanish
)


def show(delta):
    if delta.resync:  # full-state frame, not an increment
        for row in sorted(delta.answers or ()):
            print(f"  = {row}")
        return
    for row in sorted(delta.added):
        print(f"  + {row}")
    for row in sorted(delta.removed):
        print(f"  - {row}")


def embedded_long_poll() -> None:
    """One embedded service; a writer thread streams updates while the
    main thread polls its subscription."""
    print("== embedded service, long-poll ==")
    with Client.local() as client:
        client.register_dataset("org", fresh_data())
        sub = client.subscribe("org", QUERY)
        print(f"subscribed at epoch {sub.epoch}; initial answers:")
        for row in sorted(sub.answers):
            print(f"    {row}")

        def writer():
            for step in UPDATES:
                client.update("org",
                              inserts=step.get("inserts", ()),
                              deletes=step.get("deletes", ()))

        thread = threading.Thread(target=writer)
        thread.start()
        seen = 0
        while seen < len(UPDATES):
            for delta in sub.poll(timeout=5.0):
                print(f"epoch {delta.epoch}:")
                show(delta)
                seen += 1
        thread.join()
        print(f"final maintained answers: {sorted(sub.answers)}")
        sub.unsubscribe()


def sse_stream() -> None:
    """The same subscription pushed over the asyncio server's SSE
    endpoint — no polling at all."""
    print("\n== asyncio server, Server-Sent Events ==")
    service = OMQService()
    service.register_dataset("org", fresh_data())

    async def main() -> None:
        with serve_in_background(service) as handle:
            async with AsyncClient.connect(handle.url) as client:
                sub = await client.subscribe("org", QUERY)
                print(f"streaming from epoch {sub.epoch} ...")

                async def consume():
                    # exit on the epoch watermark, not a frame count: if
                    # an update lands before the stream attaches, its
                    # delta arrives folded into the snapshot/resync
                    # frame rather than individually
                    async for delta in sub.stream():
                        print(f"epoch {delta.epoch}:")
                        show(delta)
                        if sub.epoch >= len(UPDATES):
                            return

                task = asyncio.create_task(consume())
                await asyncio.sleep(0.2)  # let the stream attach
                for step in UPDATES:
                    await client.update(
                        "org",
                        inserts=step.get("inserts", ()),
                        deletes=step.get("deletes", ()))
                await asyncio.wait_for(task, timeout=30)
                print(f"final maintained answers: {sorted(sub.answers)}")
                await sub.unsubscribe()

    asyncio.run(main())
    service.close()


if __name__ == "__main__":
    embedded_long_poll()
    sse_stream()
