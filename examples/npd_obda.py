"""A realistic OBDA scenario modelled on the NPD FactPages use case the
paper cites in Section 6 (an ontology of depth ~5 over petroleum
exploration data).

End users pose tree-shaped queries in the ontology vocabulary; the
data records only a fraction of the facts, and the ontology fills in
the rest (every production well is a wellbore, every wellbore was
drilled in some field, every field is operated by some company, ...).

Run with::

    python examples/npd_obda.py
"""

import random

from repro import ABox, CQ, OMQ, TBox, answer, rewrite
from repro.complexity import analyse


def build_ontology() -> TBox:
    """A mini petroleum-domain ontology of existential depth 4."""
    return TBox.parse("""
        roles: drilledIn, operatedBy, locatedIn, licensee, produces

        # taxonomy
        ProductionWell <= Wellbore
        ExplorationWell <= Wellbore
        OilField <= Field
        GasField <= Field
        Operator <= Company

        # every wellbore was drilled in some field ...
        Wellbore <= EdrilledIn
        EdrilledIn- <= Field
        # ... every field is operated by some operator ...
        Field <= EoperatedBy
        EoperatedBy- <= Operator
        # ... every operator holds some production licence ...
        Operator <= Elicensee
        Elicensee- <= Licence
        # ... and every licence covers some area
        Licence <= ElocatedIn
        ElocatedIn- <= Area

        # production wells produce something
        ProductionWell <= Eproduces
        Eproduces- <= Petroleum
    """)


def build_data(seed: int = 0) -> ABox:
    """A synthetic extract of the FactPages: most facts are *implicit*
    (the ontology derives them), as in real OBDA deployments."""
    rng = random.Random(seed)
    abox = ABox()
    fields = [f"field{i}" for i in range(6)]
    companies = [f"comp{i}" for i in range(3)]
    for i in range(25):
        well = f"well{i}"
        abox.add("ProductionWell" if rng.random() < 0.5
                 else "ExplorationWell", well)
        if rng.random() < 0.7:  # drilling field known for most wells
            abox.add("drilledIn", well, rng.choice(fields))
    for i, field in enumerate(fields):
        abox.add("OilField" if i % 2 else "GasField", field)
        if i < 3:  # operator known for half the fields only
            abox.add("operatedBy", field, rng.choice(companies))
    for company in companies:
        abox.add("Operator", company)
    return abox


def main() -> None:
    tbox = build_ontology()
    data = build_data()
    print(f"Ontology depth: {tbox.depth()}")
    print(f"Data: {len(data)} atoms over {len(data.individuals)} "
          "individuals\n")

    queries = {
        "wells with a known drilling field":
            CQ.parse("Wellbore(w), drilledIn(w, f)", answer_vars=["w", "f"]),
        "wells drilled in an operated field (field may be implicit)":
            CQ.parse("Wellbore(w), drilledIn(w, f), operatedBy(f, o)",
                     answer_vars=["w"]),
        "production wells whose operator chain reaches a licence":
            CQ.parse("ProductionWell(w), drilledIn(w, f), "
                     "operatedBy(f, o), licensee(o, l)",
                     answer_vars=["w"]),
        "fields with any (possibly inferred) operator":
            CQ.parse("Field(f), operatedBy(f, o)", answer_vars=["f"]),
    }

    for title, query in queries.items():
        omq = OMQ(tbox, query)
        ndl = rewrite(omq, method="auto")
        report = analyse(ndl)
        result = answer(omq, data)
        print(f"{title}")
        print(f"  OMQ class {omq.omq_class()}, rewriting: "
              f"{report.clauses} clauses (linear={report.linear}, "
              f"width={report.width})")
        print(f"  {len(result.answers)} answers, e.g. "
              f"{sorted(result.answers)[:4]}\n")

    # the OBDA payoff: answers that are NOT in the raw data
    query = queries["fields with any (possibly inferred) operator"]
    raw = {(f,) for f, _ in data.binary("operatedBy")}
    certain = answer(OMQ(tbox, query), data).answers
    inferred = sorted(set(certain) - raw)
    print("Fields whose operator is implied by the ontology only: "
          f"{inferred}")


if __name__ == "__main__":
    main()
