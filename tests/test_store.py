"""Durable storage: :mod:`repro.store` and warm restart.

Three layers of guarantees:

* :class:`~repro.store.DatasetStore` round-trips datasets, ontologies
  and subscriptions through per-tenant SQLite files, applies deltas
  idempotently and atomically (a torn write rolls back wholesale);
* a restarted :class:`~repro.service.OMQService` pointed at the same
  ``data_dir`` restores every tenant's state — answers, epochs and
  re-armed standing queries — identically to the pre-restart service;
* crash recovery, property-tested: after killing the store mid-update
  the reopened state answers exactly like a from-scratch load of the
  durable prefix, on every available engine.

The golden fixtures of ``tests/golden`` double as restart oracles:
the post-update snapshots there were blessed from scratch, so a
warm-restarted service must reproduce them byte-for-byte.
"""

import json
import pathlib
import sqlite3

from hypothesis import given, strategies as st

from repro import OMQ, AnswerSession, available_engines
from repro.data import ABox
from repro.queries import chain_cq
from repro.service import OMQService
from repro.store import DatasetStore, StoredSubscription

from .helpers import example11_tbox, hypothesis_settings, random_data

TBOX = example11_tbox()
GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


def _atoms(abox):
    return sorted(abox.atoms())


class TestDatasetStore:
    def test_dataset_round_trip(self, tmp_path):
        with DatasetStore(str(tmp_path)) as store:
            abox = random_data(1)
            store.save_dataset("alice", "demo", abox.atoms(),
                               shards=2, epoch=7)
            snap = store.load_tenant("alice")
        assert sorted(snap.datasets) == ["demo"]
        atoms, shards, epoch = snap.datasets["demo"]
        assert sorted(atoms) == _atoms(abox)
        assert (shards, epoch) == (2, 7)

    def test_save_dataset_replaces_wholesale(self, tmp_path):
        with DatasetStore(str(tmp_path)) as store:
            store.save_dataset("", "d", [("R", ("a", "b"))], epoch=1)
            store.save_dataset("", "d", [("S", ("x", "y"))], epoch=2)
            atoms, _, epoch = store.load_tenant("").datasets["d"]
        assert atoms == [("S", ("x", "y"))] and epoch == 2

    def test_apply_delta_is_idempotent(self, tmp_path):
        with DatasetStore(str(tmp_path)) as store:
            store.save_dataset("", "d", [("R", ("a", "b")),
                                         ("A", ("a",))], epoch=1)
            delta = dict(inserts=[("S", ("a", "b")), ("S", ("a", "b"))],
                         deletes=[("A", ("a",)), ("B", ("zz",))])
            store.apply_delta("", "d", epoch=2, **delta)
            store.apply_delta("", "d", epoch=2, **delta)  # replay
            atoms, _, epoch = store.load_tenant("").datasets["d"]
        assert sorted(atoms) == [("R", ("a", "b")), ("S", ("a", "b"))]
        assert epoch == 2

    def test_unary_and_binary_atoms_are_distinct(self, tmp_path):
        with DatasetStore(str(tmp_path)) as store:
            store.save_dataset("", "d", [("A", ("x",)), ("A", ("x", ""))])
            atoms, _, _ = store.load_tenant("").datasets["d"]
        assert sorted(atoms) == [("A", ("x",)), ("A", ("x", ""))]

    def test_delete_dataset_drops_facts_and_subscriptions(self, tmp_path):
        with DatasetStore(str(tmp_path)) as store:
            store.save_dataset("", "d", [("R", ("a", "b"))])
            store.save_subscription("", StoredSubscription(
                subscription_id="s1", dataset="d", tbox_text="P <= R",
                query="R(x, y)", answer_vars=("x",), options={},
                engine="python", epoch=3))
            store.delete_dataset("", "d")
            snap = store.load_tenant("")
        assert not snap.datasets and not snap.subscriptions

    def test_subscription_round_trip(self, tmp_path):
        stored = StoredSubscription(
            subscription_id="sub-1", dataset="demo",
            tbox_text="roles: P, R, S\nP <= S\nP <= R-",
            query="R(x, y), S(y, z)", answer_vars=("x",),
            options={"method": "tw"}, engine="sql", epoch=5)
        with DatasetStore(str(tmp_path)) as store:
            store.save_tbox("t1", "uni", "P <= R")
            store.save_subscription("t1", stored)
            snap = store.load_tenant("t1")
        assert snap.tboxes == {"uni": "P <= R"}
        assert snap.subscriptions == [stored]

    def test_tenant_files_are_separate(self, tmp_path):
        with DatasetStore(str(tmp_path)) as store:
            store.save_dataset("", "d", [("R", ("a", "b"))])
            store.save_dataset("alice", "d", [("R", ("x", "y"))])
            assert store.tenants() == ["", "alice"]
            assert store.load_tenant("").datasets["d"][0] \
                != store.load_tenant("alice").datasets["d"][0]
        assert (tmp_path / "_default.db").exists()
        assert (tmp_path / "alice.db").exists()

    def test_torn_write_rolls_back(self, tmp_path):
        """A transaction interrupted mid-way (process death) must
        leave the previous consistent state, not half an update."""
        with DatasetStore(str(tmp_path)) as store:
            store.save_dataset("", "d", [("R", ("a", "b"))], epoch=1)
        # a raw connection mutates without committing, then "dies"
        raw = sqlite3.connect(str(tmp_path / "_default.db"))
        raw.execute("BEGIN")
        raw.execute("DELETE FROM facts WHERE dataset = 'd'")
        raw.execute("UPDATE datasets SET epoch = 99 WHERE name = 'd'")
        raw.close()  # no commit: rollback
        with DatasetStore(str(tmp_path)) as store:
            atoms, _, epoch = store.load_tenant("").datasets["d"]
        assert atoms == [("R", ("a", "b"))] and epoch == 1

    def test_checkpoint_and_status(self, tmp_path):
        with DatasetStore(str(tmp_path)) as store:
            store.save_dataset("", "d", [("R", ("a", "b"))], epoch=4)
            summary = store.checkpoint()
            assert summary["datasets"] == 1 and summary["epoch"] == 4
            status = store.status()
        assert status["enabled"] and status["writes"] == 1
        assert status["last_checkpoint_epoch"] == 4


class TestWarmRestart:
    """Kill a service, start a fresh one on the same data dir, and the
    world must come back exactly — the tentpole's core differential."""

    def _populate(self, service):
        service.register_tbox("uni", TBOX, tenant="alice")
        service.register_dataset("demo", random_data(1), tenant="alice")
        service.register_dataset("demo", random_data(2), tenant="bob")
        service.register_dataset("plain", random_data(3))  # default tenant
        sub = service.subscribe("demo", OMQ(TBOX, chain_cq("RS")),
                                tenant="alice")
        service.update("demo", inserts=[("R", ("w1", "w2")),
                                        ("S", ("w2", "w3"))],
                       tenant="alice")
        service.update("plain", deletes=list(random_data(3).atoms())[:3])
        return sub

    def _answers(self, service, dataset, tenant=""):
        result = service.answer(dataset, OMQ(TBOX, chain_cq("RS")),
                                tenant=tenant)
        return sorted(list(row) for row in result.answers)

    def test_restart_restores_answers_epochs_and_subscriptions(
            self, tmp_path):
        service = OMQService(max_workers=2, data_dir=str(tmp_path))
        sub = self._populate(service)
        before = {
            ("demo", "alice"): self._answers(service, "demo", "alice"),
            ("demo", "bob"): self._answers(service, "demo", "bob"),
            ("plain", ""): self._answers(service, "plain"),
        }
        epochs_before = {name: service.stats()["datasets"][name]["epoch"]
                         for name in service.datasets()}
        sub_id, sub_epoch = sub.subscription_id, sub.epoch
        sub_answers = set(sub.answers)
        service.close()

        restarted = OMQService(max_workers=2, data_dir=str(tmp_path))
        counts = restarted.restore()
        try:
            assert counts == {"tenants": 3, "datasets": 3, "tboxes": 1,
                              "subscriptions": 1}
            for (dataset, tenant), answers in before.items():
                assert self._answers(restarted, dataset, tenant) \
                    == answers, (dataset, tenant)
            epochs_after = {
                name: restarted.stats()["datasets"][name]["epoch"]
                for name in restarted.datasets()}
            assert epochs_after == epochs_before
            # the standing query is re-armed under its original id at
            # the persisted epoch, with its maintained answers intact
            restored = restarted.standing.get(sub_id)
            assert restored.epoch == sub_epoch
            assert set(restored.answers) == sub_answers
            # ... and it keeps maintaining: a fresh update yields a
            # delta strictly after the restored watermark
            restarted.update("demo", inserts=[("R", ("z1", "z2")),
                                              ("S", ("z2", "z3"))],
                             tenant="alice")
            polled = restarted.poll(sub_id, since_epoch=sub_epoch,
                                    tenant="alice")
            assert polled["deltas"], polled
            assert all(delta["epoch"] > sub_epoch
                       for delta in polled["deltas"])
        finally:
            restarted.close()

    def test_restart_is_idempotent(self, tmp_path):
        """close() checkpoints; a second restart round-trips the same
        state again (restore → close → restore is a fixed point)."""
        service = OMQService(max_workers=2, data_dir=str(tmp_path))
        self._populate(service)
        expected = self._answers(service, "demo", "alice")
        service.close()
        for _ in range(2):
            service = OMQService(max_workers=2, data_dir=str(tmp_path))
            service.restore()
            assert self._answers(service, "demo", "alice") == expected
            service.close()

    def test_golden_parity_after_restart(self, tmp_path):
        """A warm-restarted service must reproduce the from-scratch
        golden post-update snapshots on every available engine."""
        from .test_golden import _cases, _update_script

        for case, (tbox, abox, queries) in sorted(_cases().items()):
            data_dir = tmp_path / case
            service = OMQService(max_workers=2, data_dir=str(data_dir))
            service.register_dataset("g", abox)
            for step in _update_script(case):
                service.update("g", inserts=step["insert"],
                               deletes=step["delete"])
            service.close()

            golden = json.loads((GOLDEN_DIR / f"{case}.json").read_text())
            restarted = OMQService(max_workers=2, data_dir=str(data_dir))
            restarted.restore()
            try:
                for name, query in sorted(queries.items()):
                    expected = golden["queries"][name]["post_update"]
                    for engine in available_engines():
                        result = restarted.answer(
                            "g", OMQ(tbox, query), engine=engine)
                        produced = sorted(list(row)
                                          for row in result.answers)
                        assert produced == expected, (case, name, engine)
            finally:
                restarted.close()


def _fold(atoms, script):
    atoms = set(atoms)
    for inserts, deletes in script:
        atoms -= set(deletes)
        atoms |= set(inserts)
    return atoms


_atom_strategy = st.tuples(
    st.sampled_from(["P", "R", "S"]),
    st.tuples(st.sampled_from(["n0", "n1", "n2", "n3"]),
              st.sampled_from(["n0", "n1", "n2", "n3"])))

_script_strategy = st.lists(
    st.tuples(st.lists(_atom_strategy, max_size=4),
              st.lists(_atom_strategy, max_size=4)),
    min_size=1, max_size=5)


class TestCrashRecovery:
    @hypothesis_settings(max_examples=25)
    @given(script=_script_strategy, killed=st.booleans())
    def test_restored_answers_equal_from_scratch_load(
            self, tmp_path_factory, script, killed):
        """Apply a random update script; optionally kill the store so
        the last update never becomes durable.  The reopened store must
        answer exactly like a session loaded from scratch with the
        durable prefix, on every available engine."""
        tmp_path = tmp_path_factory.mktemp("crash")
        base = random_data(5)
        # the service mutates the registered ABox in place; capture
        # the baseline before any update touches it
        base_atoms = list(base.atoms())
        service = OMQService(max_workers=1, data_dir=str(tmp_path))
        service.register_dataset("d", base)
        durable = script if not killed else script[:-1]
        for inserts, deletes in durable:
            service.update("d", inserts=inserts, deletes=deletes)
        if killed:
            # the process dies mid-update: the in-memory write happens
            # but nothing of it reaches disk (the store transaction
            # never commits, so recovery sees the previous state)
            def crash(*args, **kwargs):
                raise sqlite3.OperationalError("simulated crash")

            inserts, deletes = script[-1]
            service.store.apply_delta = crash
            service.store.save_dataset = crash
            service.update("d", inserts=inserts, deletes=deletes)
        # abrupt stop: close the pools without checkpointing
        service.store.close()
        service.store = None
        service.close()

        restarted = OMQService(max_workers=1, data_dir=str(tmp_path))
        restarted.restore()
        expected_atoms = _fold(base_atoms, durable)
        omq = OMQ(TBOX, chain_cq("RS"))
        try:
            scratch = ABox()
            for predicate, args in sorted(expected_atoms):
                scratch.add(predicate, *args)
            for engine in available_engines():
                with AnswerSession(scratch, engine=engine) as session:
                    expected = sorted(
                        list(row)
                        for row in session.answer(omq).answers)
                result = restarted.answer("d", omq, engine=engine)
                assert sorted(list(row) for row in result.answers) \
                    == expected, engine
        finally:
            restarted.close()


class TestServiceStorageSurface:
    def test_storage_disabled_by_default(self):
        service = OMQService(max_workers=1)
        try:
            assert service.store is None
            assert service.storage_status() == {"enabled": False}
            assert service.restore() == {"tenants": 0, "datasets": 0,
                                         "tboxes": 0, "subscriptions": 0}
            assert service.snapshot() == {"enabled": False, "datasets": 0}
        finally:
            service.close()

    def test_write_failures_never_fail_requests(self, tmp_path):
        """Durability is best-effort per request: a broken store is
        absorbed (and counted) rather than surfaced to the caller."""
        service = OMQService(max_workers=1, data_dir=str(tmp_path))
        try:
            def boom(*args, **kwargs):
                raise sqlite3.OperationalError("disk on fire")

            service.store.save_dataset = boom
            service.store.apply_delta = boom
            service.register_dataset("d", random_data(1))
            service.update("d", inserts=[("R", ("a", "b"))])
            assert service.storage_status()["write_errors"] >= 2
            result = service.answer("d", OMQ(TBOX, chain_cq("RS")))
            assert result.answers is not None
        finally:
            service.close()

    def test_unregister_removes_durable_state(self, tmp_path):
        service = OMQService(max_workers=1, data_dir=str(tmp_path))
        service.register_dataset("d", random_data(1), tenant="t1")
        service.unregister_dataset("d", tenant="t1")
        service.close()
        restarted = OMQService(max_workers=1, data_dir=str(tmp_path))
        counts = restarted.restore()
        try:
            assert counts["datasets"] == 0
            assert restarted.datasets(tenant="t1") == ()
        finally:
            restarted.close()

    def test_stats_and_health_carry_storage_block(self, tmp_path):
        service = OMQService(max_workers=1, data_dir=str(tmp_path))
        try:
            storage = service.stats()["storage"]
            assert storage["enabled"]
            assert storage["data_dir"] == str(tmp_path)
        finally:
            service.close()
