"""Tests for the public OMQ API (repro.rewriting.api)."""

import math

import pytest

from repro.chase import certain_answers
from repro.queries import CQ, chain_cq
from repro.rewriting import METHODS, OMQ, answer, rewrite

from .helpers import example11_tbox, infinite_tbox, random_data


class TestClassification:
    def test_class_label_finite_tree(self):
        omq = OMQ(example11_tbox(), chain_cq("RSR"))
        assert omq.omq_class() == "OMQ(0, 1, 2)"

    def test_class_label_infinite_tree(self):
        omq = OMQ(infinite_tbox(), chain_cq("RR"))
        assert omq.omq_class() == "OMQ(inf, 1, 2)"

    def test_class_label_cyclic(self):
        omq = OMQ(example11_tbox(), CQ.parse("R(x,y), S(y,z), R(x,z)"))
        assert omq.omq_class() == "OMQ(0, 2, inf)"

    def test_leaves_none_for_cyclic(self):
        omq = OMQ(example11_tbox(), CQ.parse("R(x,y), S(y,z), R(x,z)"))
        assert omq.leaves is None

    def test_depth_property(self):
        assert OMQ(infinite_tbox(), chain_cq("R")).depth is math.inf


class TestDispatch:
    def test_auto_picks_lin_for_finite_trees(self):
        omq = OMQ(example11_tbox(), chain_cq("RSR"))
        from repro.datalog import is_linear

        ndl = rewrite(omq, method="auto")
        assert is_linear(ndl.program)

    def test_auto_picks_tw_for_infinite_depth(self):
        omq = OMQ(infinite_tbox(), chain_cq("RR"))
        ndl = rewrite(omq, method="auto")
        assert ndl.goal.startswith("Q")

    def test_auto_picks_log_for_cyclic(self):
        omq = OMQ(example11_tbox(), CQ.parse("R(x,y), S(y,z), R(x,z)"))
        ndl = rewrite(omq, method="auto")
        assert len(ndl) >= 1

    def test_auto_rejects_hopeless_case(self):
        omq = OMQ(infinite_tbox(), CQ.parse("R(x,y), R(y,z), R(x,z)"))
        with pytest.raises(ValueError):
            rewrite(omq, method="auto")

    def test_unknown_method_rejected(self):
        omq = OMQ(example11_tbox(), chain_cq("R"))
        with pytest.raises(ValueError):
            rewrite(omq, method="nope")

    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods_agree(self, method):
        omq = OMQ(example11_tbox(), chain_cq("RSR"))
        abox = random_data(5, binary=("P", "R", "S"),
                           unary=("A_P", "A_P-"))
        expected = certain_answers(omq.tbox, abox, omq.query)
        assert answer(omq, abox, method=method).answers == expected
