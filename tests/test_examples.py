"""Smoke tests: every shipped example runs to completion.

Each example is executed as a subprocess (as a user would run it) and
must exit 0 without writing to stderr beyond warnings.  These are the
library's living documentation, so breaking one is a release blocker.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))

#: Subprocesses must see ``src/`` whether or not the package is
#: installed (pytest's ``pythonpath`` ini only affects this process).
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = os.pathsep.join(
    [str(EXAMPLES_DIR.parent / "src")]
    + ([_ENV["PYTHONPATH"]] if _ENV.get("PYTHONPATH") else []))


def test_examples_directory_is_populated():
    # the deliverable requires a quickstart plus domain scenarios
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300, env=_ENV)
    assert result.returncode == 0, result.stderr[-2000:]
    # every example prints something meaningful
    assert result.stdout.strip()
