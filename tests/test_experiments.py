"""Tests for the experiment harnesses (Figure 2, Tables 1-5)."""


from repro.experiments import (
    ALGORITHMS,
    SEQUENCES,
    ascii_barchart,
    consistency_check,
    format_table,
    rewriting_sizes,
    run_evaluation_table,
    size_table,
    table2,
    table_rows,
)


class TestFigure2:
    def test_sequences_are_the_papers(self):
        assert SEQUENCES["sequence1"] == "RRSRSRSRRSRRSSR"
        assert SEQUENCES["sequence2"] == "SRRRRRSRSRRRRRR"
        assert SEQUENCES["sequence3"] == "SRRSSRSRSRRSRRS"

    def test_sizes_small_run(self):
        points = rewriting_sizes(max_atoms=5,
                                 algorithms=("tw", "lin", "log", "ucq"))
        assert len(points) == 3 * 5 * 4
        assert all(p.clauses is not None for p in points)

    def test_optimal_rewriters_grow_linearly(self):
        points = rewriting_sizes(max_atoms=9,
                                 algorithms=("tw", "lin", "log"))
        for algorithm in ("tw", "lin", "log"):
            for name in SEQUENCES:
                sizes = [p.clauses for p in points
                         if p.algorithm == algorithm and p.sequence == name]
                # linear-ish: clauses grow at most ~8 per extra atom
                assert all(s <= 8 * (i + 2)
                           for i, s in enumerate(sizes)), (algorithm, name)

    def test_ucq_grows_exponentially_on_sequence1(self):
        points = rewriting_sizes(max_atoms=13, algorithms=("ucq",),
                                 sequences={"sequence1":
                                            SEQUENCES["sequence1"]})
        sizes = [p.clauses for p in points]
        assert sizes[-1] > 8 * sizes[6]

    def test_size_table_layout(self):
        points = rewriting_sizes(max_atoms=3)
        rows = size_table(points, "sequence1")
        assert len(rows) == 3
        assert len(rows[0]) == 1 + len(ALGORITHMS)

    def test_barchart_renders(self):
        points = rewriting_sizes(max_atoms=4,
                                 algorithms=("tw", "lin", "log", "ucq"))
        art = ascii_barchart(points, "sequence1")
        assert "Figure 2" in art and "#" in art


class TestTable2:
    def test_rows_and_datasets(self):
        datasets, rows = table2(scale=0.02, seed=1)
        assert len(rows) == 4
        assert set(datasets) == {"1.ttl", "2.ttl", "3.ttl", "4.ttl"}
        for row in rows:
            assert row[5] > 0  # atoms

    def test_format_table(self):
        _, rows = table2(scale=0.02)
        text = format_table(["d", "V", "p", "q", "deg", "atoms"], rows)
        assert "1.ttl" in text


class TestTables345:
    def test_small_evaluation_run_consistent(self):
        datasets, _ = table2(scale=0.01, seed=3)
        points = run_evaluation_table("sequence1", datasets,
                                      sizes=(1, 3),
                                      algorithms=("tw", "lin", "log",
                                                  "ucq"))
        assert consistency_check(points)
        rows = table_rows(points, "1.ttl")
        assert len(rows) == 2

    def test_all_sequences_supported(self):
        datasets, _ = table2(scale=0.01, seed=4)
        small = {"1.ttl": datasets["1.ttl"]}
        for sequence in SEQUENCES:
            points = run_evaluation_table(sequence, small, sizes=(2,),
                                          algorithms=("tw", "lin"))
            assert consistency_check(points)
