"""Tests for the compiled query pipeline (``repro.rewriting.plan``):
``AnswerOptions`` validation, ``compile -> Plan -> execute`` parity
with the legacy entry points, plan reuse, explain reports and the plan
cache."""

import dataclasses

import pytest

from repro import ABox, OMQ, AnswerOptions, Plan, answer, chain_cq
from repro.engine import available_engines, create_engine
from repro.rewriting import AnswerSession, METHODS
from repro.rewriting.plan import compile_omq, format_explain
from repro.service import OMQService, RewritingCache

from .helpers import example11_tbox, random_data


# -- AnswerOptions ----------------------------------------------------------


class TestAnswerOptions:
    def test_defaults(self):
        options = AnswerOptions()
        assert options.method == "auto"
        assert not options.magic and not options.optimize
        assert options.engine is None and options.timeout is None
        assert options.over == "complete"

    def test_validation(self):
        with pytest.raises(ValueError, match="method"):
            AnswerOptions(method="nope")
        with pytest.raises(ValueError, match="engine"):
            AnswerOptions(engine="nope")
        with pytest.raises(ValueError, match="over"):
            AnswerOptions(over="nope")
        with pytest.raises(ValueError, match="timeout"):
            AnswerOptions(timeout=-1)

    def test_coerce_forms(self):
        from_none = AnswerOptions.coerce(None)
        from_dict = AnswerOptions.coerce({"method": "lin", "magic": True})
        from_self = AnswerOptions.coerce(from_dict)
        assert from_none == AnswerOptions()
        assert from_dict.method == "lin" and from_dict.magic
        assert from_self == from_dict
        with pytest.raises(ValueError, match="unknown answer option"):
            AnswerOptions.coerce({"metod": "lin"})
        with pytest.raises(TypeError):
            AnswerOptions.coerce(42)

    def test_coerce_overrides(self):
        base = AnswerOptions(method="lin")
        merged = AnswerOptions.coerce(base, engine="sql")
        assert merged.method == "lin" and merged.engine == "sql"
        assert base.engine is None  # original untouched

    def test_execution_knobs_not_in_rewrite_fingerprint(self):
        base = AnswerOptions(method="lin")
        assert (base.rewrite_fingerprint()
                == base.replace(engine="sql").rewrite_fingerprint()
                == base.replace(timeout=5.0).rewrite_fingerprint())
        assert (base.rewrite_fingerprint()
                != base.replace(magic=True).rewrite_fingerprint())
        assert (base.rewrite_fingerprint()
                != base.replace(method="log").rewrite_fingerprint())

    def test_data_dependent(self):
        assert AnswerOptions(method="adaptive").data_dependent
        assert AnswerOptions(optimize=True).data_dependent
        assert not AnswerOptions(method="lin", magic=True).data_dependent


# -- OMQ fingerprints -------------------------------------------------------


class TestOMQFingerprint:
    def test_stable_under_variable_renaming(self):
        tbox = example11_tbox()
        first = OMQ(tbox, chain_cq("RSR", prefix="a_"))
        second = OMQ(tbox, chain_cq("RSR", prefix="b_"))
        assert first.fingerprint() == second.fingerprint()

    def test_distinct_queries_differ(self):
        tbox = example11_tbox()
        assert (OMQ(tbox, chain_cq("RS")).fingerprint()
                != OMQ(tbox, chain_cq("SR")).fingerprint())

    def test_cache_key_uses_same_code_path(self):
        # one fingerprint implementation: the cache key components are
        # the same digests OMQ.fingerprint hashes over
        from repro.fingerprint import omq_fingerprint

        omq = OMQ(example11_tbox(), chain_cq("RS"))
        assert omq.fingerprint() == omq_fingerprint(omq)


# -- compile/execute parity -------------------------------------------------


class TestCompileExecuteParity:
    @pytest.fixture(scope="class")
    def setting(self):
        tbox = example11_tbox()
        abox = random_data(7, individuals=8, atoms=30)
        omqs = [OMQ(tbox, chain_cq(labels)) for labels in ("RS", "SRR")]
        return tbox, abox, omqs

    @pytest.mark.parametrize("method", ("auto",) + METHODS)
    def test_matches_legacy_answer_all_engines(self, setting, method):
        _, abox, omqs = setting
        for omq in omqs:
            plan = compile_omq(omq, method=method)
            for engine in available_engines():
                executed = plan.execute(abox, engine=engine)
                legacy = answer(omq, abox, method=method, engine=engine)
                assert executed.answers == legacy.answers
                assert executed.engine == engine

    def test_matches_session_answer_with_flags(self, setting):
        _, abox, omqs = setting
        with AnswerSession(abox) as session:
            for omq in omqs:
                for magic in (False, True):
                    for optimize in (False, True):
                        plan = session.compile(
                            omq, method="log", magic=magic,
                            optimize=optimize)
                        assert (plan.execute(session).answers
                                == session.answer(
                                    omq, method="log", magic=magic,
                                    optimize_program=optimize).answers)

    def test_matches_service_answer(self, setting):
        _, abox, omqs = setting
        with OMQService() as service:
            service.register_dataset("demo", ABox(abox.atoms()))
            for omq in omqs:
                plan = compile_omq(omq, method="tw")
                assert (plan.execute(abox).answers
                        == service.answer("demo", omq,
                                          method="tw").answers)

    def test_adaptive_parity(self, setting):
        _, abox, omqs = setting
        with AnswerSession(abox) as session:
            for omq in omqs:
                plan = session.compile(omq, method="adaptive")
                assert plan.data_bound
                assert plan.method in METHODS
                assert (plan.execute(session).answers
                        == session.answer(omq, method="adaptive").answers)


# -- plan reuse -------------------------------------------------------------


class TestPlanReuse:
    def test_one_plan_many_datasets(self):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RSR"))
        plan = compile_omq(omq, method="tw")
        for seed in (1, 2, 3):
            abox = random_data(seed, individuals=7, atoms=25)
            assert (plan.execute(abox).answers
                    == answer(omq, abox, method="tw").answers)

    def test_one_plan_many_engines_one_session(self):
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        plan = compile_omq(omq)
        abox = random_data(11)
        with AnswerSession(abox) as session:
            results = {engine: plan.execute(session, engine=engine).answers
                       for engine in available_engines()}
        assert len(set(results.values())) == 1

    def test_execute_on_loaded_engine(self):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RS"))
        abox = random_data(13)
        plan = compile_omq(omq, method="lin")
        with create_engine("python", abox.complete(tbox)) as backend:
            assert (plan.execute(backend).answers
                    == answer(omq, abox, method="lin").answers)

    def test_plan_is_frozen(self):
        plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")))
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.method = "log"
        with pytest.raises(TypeError):
            plan.timings["rewrite"] = 0.0

    def test_execute_rejects_unknown_target(self):
        plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")))
        with pytest.raises(TypeError,
                           match="ABox, AnswerSession, ShardedSession"):
            plan.execute({"not": "data"})


# -- explain ----------------------------------------------------------------


class TestExplain:
    def test_report_matches_ndl_stats(self):
        omq = OMQ(example11_tbox(), chain_cq("RSRS"))
        plan = compile_omq(omq, method="log", magic=True)
        report = plan.explain()
        assert report["rules"] == len(plan.ndl)
        assert report["width"] == plan.ndl.width()
        assert report["depth"] == plan.ndl.depth()
        assert report["method"] == "log"
        assert report["magic"] is True
        assert report["omq_class"] == omq.omq_class()
        assert set(report["stages"]) == {"rewrite", "magic"}
        assert report["compile_seconds"] >= 0
        assert report["fingerprint"] == plan.fingerprint

    def test_auto_reports_resolved_method(self):
        plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")))
        report = plan.explain()
        assert report["method_requested"] == "auto"
        assert report["method"] == "lin"  # finite depth, tree-shaped

    def test_report_is_json_serialisable(self):
        import json

        plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")),
                           method="tw", engine="sql", timeout=5.0)
        text = json.dumps(plan.explain())
        assert "tw" in text

    def test_format_explain_renders_all_keys(self):
        plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")))
        text = format_explain(plan.explain())
        assert "method" in text and "rules" in text
        assert "stage rewrite" in text

    def test_service_and_session_explain_agree(self):
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        with OMQService() as service:
            service.register_dataset("demo", random_data(2))
            via_service = service.explain(omq, method="lin")
        direct = compile_omq(omq, method="lin").explain()
        volatile = ("compile_seconds", "stages")
        assert ({k: v for k, v in via_service.items() if k not in volatile}
                == {k: v for k, v in direct.items() if k not in volatile})

    def test_service_explain_data_dependent_needs_dataset(self):
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        with OMQService() as service:
            with pytest.raises(ValueError, match="dataset"):
                service.explain(omq, method="adaptive")
            service.register_dataset("demo", random_data(2))
            report = service.explain(omq, method="adaptive",
                                     dataset="demo")
            assert report["data_bound"] is True
            assert report["method"] in METHODS


# -- fingerprints and the plan cache ----------------------------------------


class TestPlanCache:
    def test_cache_stores_plan_objects(self):
        cache = RewritingCache()
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        first = compile_omq(omq, method="lin", cache=cache)
        second = compile_omq(omq, method="lin", cache=cache)
        assert isinstance(first, Plan)
        assert first is second  # the very same compiled object

    def test_renamed_query_reuses_plan(self):
        cache = RewritingCache()
        tbox = example11_tbox()
        first = compile_omq(OMQ(tbox, chain_cq("RS", prefix="a_")),
                            method="lin", cache=cache)
        second = compile_omq(OMQ(tbox, chain_cq("RS", prefix="b_")),
                             method="lin", cache=cache)
        assert first is second
        assert cache.stats().hits == 1

    def test_engine_does_not_fragment_cache(self):
        cache = RewritingCache()
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        compile_omq(omq, method="lin", engine="python", cache=cache)
        compile_omq(omq, method="lin", engine="sql", cache=cache)
        compile_omq(omq, method="lin", timeout=9.0, cache=cache)
        assert len(cache) == 1
        assert cache.stats().hits == 2

    def test_data_dependent_compiles_bypass_cache(self):
        cache = RewritingCache()
        abox = random_data(5)
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        with AnswerSession(abox, rewriting_cache=cache) as session:
            session.compile(omq, method="adaptive")
            session.compile(omq, method="lin", optimize=True)
        assert len(cache) == 0

    def test_plan_fingerprint_stable_and_discriminating(self):
        tbox = example11_tbox()
        base = compile_omq(OMQ(tbox, chain_cq("RS")), method="lin")
        renamed = compile_omq(OMQ(tbox, chain_cq("RS", prefix="z_")),
                              method="lin")
        other_method = compile_omq(OMQ(tbox, chain_cq("RS")), method="log")
        assert base.fingerprint == renamed.fingerprint
        assert base.fingerprint != other_method.fingerprint


# -- execution knobs never leak out of a shared cache -----------------------


class TestCachedPlanExecutionKnobs:
    def test_first_compilers_engine_does_not_leak(self):
        # cache keys ignore engine, so the plan cached by an
        # engine='sql' request must not drag later default-engine
        # requests onto SQL
        with OMQService() as service:
            service.register_dataset("demo", random_data(4))
            first = service.answer(
                "demo", OMQ(example11_tbox(), chain_cq("RS", prefix="a_")),
                options=AnswerOptions(method="lin", engine="sql"))
            second = service.answer(
                "demo", OMQ(example11_tbox(), chain_cq("RS", prefix="b_")),
                method="lin")
            assert first.engine == "sql"
            assert second.engine == "python"
            assert second.cached_rewriting  # it really was a cache hit
            # the python pool's single session must hold exactly one
            # loaded backend (no stealth SQL engine inside it)
            assert service.stats()["datasets"]["demo"]["sessions"] == {
                "sql": 1, "python": 1}

    def test_first_compilers_timeout_does_not_leak(self):
        cache = RewritingCache()
        abox = random_data(4)
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        with AnswerSession(abox, rewriting_cache=cache) as session:
            session.answer(omq, options=AnswerOptions(method="lin",
                                                      timeout=0.0))
            repeat = session.answer(omq, method="lin")
        assert not repeat.timed_out

    def test_explicit_engine_override_beats_plan_options(self):
        plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")),
                           method="lin", engine="python")
        result = plan.execute(random_data(4), engine="sql")
        assert result.engine == "sql"


# -- timeouts ---------------------------------------------------------------


class TestSoftTimeout:
    def test_zero_budget_flags_timed_out(self):
        plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")),
                           timeout=0.0)
        result = plan.execute(random_data(1))
        assert result.timed_out

    def test_generous_budget_does_not(self):
        plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")),
                           timeout=60.0)
        assert not plan.execute(random_data(1)).timed_out

    def test_timed_out_surfaces_through_the_service(self):
        with OMQService() as service:
            service.register_dataset("demo", random_data(1))
            result = service.answer(
                "demo", OMQ(example11_tbox(), chain_cq("RS")),
                options=AnswerOptions(timeout=0.0))
        assert result.timed_out

    def test_batch_dedup_respects_timeout(self):
        # identical requests that differ only in timeout must not
        # share one result (the flag would be wrong for one of them)
        from repro.service import BatchRequest

        omq = OMQ(example11_tbox(), chain_cq("RS"))
        with OMQService() as service:
            service.register_dataset("demo", random_data(1))
            strict, lax = service.answer_batch([
                BatchRequest("demo", omq,
                             options=AnswerOptions(timeout=0.0)),
                BatchRequest("demo", omq, options=AnswerOptions())])
        assert strict.timed_out
        assert not lax.timed_out
        assert strict.answers == lax.answers


# -- the Answers type -------------------------------------------------------


class TestAnswers:
    def test_container_protocol_and_provenance(self):
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        plan = compile_omq(omq, method="lin")
        result = plan.execute(random_data(7, individuals=8, atoms=30))
        assert len(result) == len(result.answers)
        assert set(result) == set(result.answers)
        for row in result.answers:
            assert row in result
        assert result.sorted() == sorted(result.answers)
        assert result.method == "lin"
        assert result.plan_fingerprint == plan.fingerprint
        assert result.seconds >= 0
