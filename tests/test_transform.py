"""Tests for repro.datalog.transform: the * transformation (Section 2),
the Lemma 3 linear transformation and the Lemma 5 skinny transformation.

Equivalence is checked semantically: the transformed program must give
the same answers over (randomised) data instances.
"""

import random

import pytest

from repro.data import ABox
from repro.datalog import (
    Clause,
    Equality,
    Literal,
    NDLQuery,
    Program,
    evaluate,
    is_linear,
    is_skinny,
    linear_star_transform,
    skinny_transform,
    skinny_depth,
    star_transform,
)
from repro.ontology import TBox


@pytest.fixture
def example11():
    return TBox.parse("roles: P, R, S\nP <= S\nP <= R-")


def clause(head, *body):
    return Clause(head, tuple(body))


def random_data(seed, predicates=("R", "S", "P"), unary=("A_P", "A_P-")):
    rng = random.Random(seed)
    abox = ABox()
    names = [f"n{i}" for i in range(6)]
    for _ in range(15):
        if rng.random() < 0.3:
            abox.add(rng.choice(unary), rng.choice(names))
        else:
            abox.add(rng.choice(predicates), rng.choice(names),
                     rng.choice(names))
    return abox


class TestStarTransform:
    def test_star_answers_entailed_atoms(self, example11):
        base = NDLQuery(Program([clause(Literal("G", ("x", "y")),
                                        Literal("S", ("x", "y")))]),
                        "G", ("x", "y"))
        starred = star_transform(base, example11)
        result = evaluate(starred, ABox.parse("P(a, b)"))
        assert result.answers == {("a", "b")}

    def test_star_unary_via_incoming_role(self, example11):
        base = NDLQuery(Program([clause(Literal("G", ("x",)),
                                        Literal("A_P-", ("x",)))]),
                        "G", ("x",))
        starred = star_transform(base, example11)
        # P(a, b) entails A_P-(b)
        result = evaluate(starred, ABox.parse("P(a, b)"))
        assert result.answers == {("b",)}

    def test_star_equals_completion(self, example11):
        base = NDLQuery(Program([clause(Literal("G", ("x", "y")),
                                        Literal("R", ("x", "y")),
                                        Literal("A_P", ("y",)))]),
                        "G", ("x", "y"))
        starred = star_transform(base, example11)
        for seed in range(5):
            abox = random_data(seed)
            direct = evaluate(base, abox.complete(example11)).answers
            via_star = evaluate(starred, abox).answers
            assert direct == via_star, f"seed {seed}"

    def test_star_handles_reflexivity(self):
        tbox = TBox.parse("roles: P\nrefl(P)")
        base = NDLQuery(Program([clause(Literal("G", ("x",)),
                                        Literal("P", ("x", "x")))]),
                        "G", ("x",))
        starred = star_transform(base, tbox)
        result = evaluate(starred, ABox.parse("A(a)"))
        assert result.answers == {("a",)}


class TestLinearStarTransform:
    def test_preserves_linearity(self, example11):
        base = NDLQuery(Program([
            clause(Literal("G", ("x",)), Literal("Q", ("x", "y")),
                   Literal("S", ("y", "z")), Literal("A_P", ("z",))),
            clause(Literal("Q", ("x", "y")), Literal("R", ("x", "y"))),
        ]), "G", ("x",))
        transformed = linear_star_transform(base, example11)
        assert is_linear(transformed.program)

    def test_equals_completion(self, example11):
        base = NDLQuery(Program([
            clause(Literal("G", ("x",)), Literal("Q", ("x", "y")),
                   Literal("S", ("y", "z")), Literal("A_P", ("z",))),
            clause(Literal("Q", ("x", "y")), Literal("R", ("x", "y"))),
        ]), "G", ("x",))
        transformed = linear_star_transform(base, example11)
        for seed in range(5):
            abox = random_data(seed + 100)
            direct = evaluate(base, abox.complete(example11)).answers
            via = evaluate(transformed, abox).answers
            assert direct == via, f"seed {seed}"

    def test_width_grows_by_at_most_one(self, example11):
        base = NDLQuery(Program([
            clause(Literal("G", ("x",)), Literal("R", ("x", "y")),
                   Literal("S", ("y", "z")))]), "G", ("x",))
        transformed = linear_star_transform(base, example11)
        assert transformed.width() <= base.width() + 1

    def test_rejects_nonlinear(self, example11):
        base = NDLQuery(Program([
            clause(Literal("G", ("x",)), Literal("Q", ("x",)),
                   Literal("Q2", ("x",))),
            clause(Literal("Q", ("x",)), Literal("R", ("x", "y"))),
            clause(Literal("Q2", ("x",)), Literal("S", ("x", "y"))),
        ]), "G", ("x",))
        with pytest.raises(ValueError):
            linear_star_transform(base, example11)

    def test_equalities_preserved(self, example11):
        base = NDLQuery(Program([
            clause(Literal("G", ("x", "y")), Literal("R", ("x", "z")),
                   Equality("z", "y"), Literal("A_P", ("y",)))]),
            "G", ("x", "y"))
        transformed = linear_star_transform(base, example11)
        for seed in range(3):
            abox = random_data(seed + 50)
            direct = evaluate(base, abox.complete(example11)).answers
            via = evaluate(transformed, abox).answers
            assert direct == via


class TestSkinnyTransform:
    def wide_query(self):
        return NDLQuery(Program([
            clause(Literal("G", ("x",)),
                   Literal("R", ("x", "y")), Literal("S", ("y", "z")),
                   Literal("Q1", ("z",)), Literal("Q2", ("z",)),
                   Literal("Q3", ("x",))),
            clause(Literal("Q1", ("x",)), Literal("A_P", ("x",))),
            clause(Literal("Q2", ("x",)), Literal("R", ("x", "y"))),
            clause(Literal("Q3", ("x",)), Literal("S", ("x", "y"))),
        ]), "G", ("x",))

    def test_output_is_skinny(self):
        transformed = skinny_transform(self.wide_query())
        assert is_skinny(transformed.program)

    def test_equivalent_answers(self):
        base = self.wide_query()
        transformed = skinny_transform(base)
        for seed in range(8):
            abox = random_data(seed + 200)
            assert (evaluate(base, abox).answers
                    == evaluate(transformed, abox).answers), f"seed {seed}"

    def test_depth_bounded_by_skinny_depth(self):
        base = self.wide_query()
        transformed = skinny_transform(base)
        assert transformed.depth() <= skinny_depth(base) + 1

    def test_width_not_increased(self):
        base = self.wide_query()
        transformed = skinny_transform(base)
        assert transformed.width() <= base.width()

    def test_equality_clauses_normalised_first(self):
        base = NDLQuery(Program([
            clause(Literal("G", ("x",)), Literal("R", ("x", "y")),
                   Equality("y", "z"), Literal("S", ("z", "w")),
                   Literal("A_P", ("w",)))]), "G", ("x",))
        transformed = skinny_transform(base)
        assert is_skinny(transformed.program)
        for seed in range(4):
            abox = random_data(seed + 300)
            assert (evaluate(base, abox).answers
                    == evaluate(transformed, abox).answers)
