"""Tests for the Tw rewriter (Section 3.4, Theorem 13)."""

import math

import pytest

from repro.chase import certain_answers
from repro.datalog import evaluate
from repro.queries import CQ, chain_cq
from repro.rewriting import splitting_vertex, tw_rewrite

from .helpers import deep_tbox, example11_tbox, infinite_tbox, random_data


class TestSplittingVertex:
    def test_path_centroid(self):
        query = chain_cq("RRRR")  # x0..x4
        assert splitting_vertex(query) == "x2"

    def test_two_vars_prefers_existential(self):
        query = CQ.parse("R(x, y)", answer_vars=["x"])
        assert splitting_vertex(query) == "y"

    def test_balance_bound(self):
        import networkx as nx

        query = CQ.parse("R(c,x1), R(c,x2), R(x2,x3), R(x3,x4), R(x2,x5)")
        split = splitting_vertex(query)
        graph = query.gaifman()
        rest = graph.subgraph(set(query.variables) - {split})
        worst = max(len(c) for c in nx.connected_components(rest))
        assert worst <= -(-len(query.variables) // 2)


class TestStructure:
    def test_logarithmic_depth(self):
        tbox = example11_tbox()
        for n in (4, 8, 16):
            query = chain_cq("RS" * n)
            ndl = tw_rewrite(tbox, query, simplify=False)
            assert ndl.depth() <= math.log2(len(query) + 1) + 3

    def test_width_bound(self):
        # w(Pi, G) <= leaves + 1
        tbox = example11_tbox()
        for labels in ("RSR", "RSRRSRR"):
            query = chain_cq(labels)
            ndl = tw_rewrite(tbox, query, simplify=False)
            assert ndl.width() <= len(query.variables)

    def test_matches_appendix_a64_size(self):
        # the worked example of Appendix A.6.4 has 10 clauses
        ndl = tw_rewrite(example11_tbox(), chain_cq("RSRRSRR"))
        assert len(ndl) == 10

    def test_rejects_non_tree(self):
        with pytest.raises(ValueError):
            tw_rewrite(example11_tbox(),
                       CQ.parse("R(x, y), R(y, z), R(z, x)"))

    def test_infinite_depth_supported(self):
        ndl = tw_rewrite(infinite_tbox(), chain_cq("RR"))
        assert len(ndl) >= 1


class TestCorrectness:
    @pytest.mark.parametrize("labels", ["R", "RS", "RSR", "RRSRS"])
    def test_matches_oracle_example11(self, labels):
        tbox = example11_tbox()
        query = chain_cq(labels)
        ndl = tw_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed, binary=("P", "R", "S"),
                               unary=("A_P", "A_P-", "A_S"))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_infinite_depth_ontology(self):
        tbox = infinite_tbox()
        query = chain_cq("RRR")
        ndl = tw_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed + 50, binary=("P", "R"),
                               unary=("A", "A_P", "A_P-"))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_boolean_anonymous_match(self):
        # B <= EP, EP- <= B: P-chains exist below every B individual
        from repro.ontology import TBox

        tbox = TBox.parse("roles: P\nB <= EP\nEP- <= B")
        query = CQ.parse("P(x, y), P(y, z)")
        ndl = tw_rewrite(tbox, query)
        abox_yes = random_data(1, binary=(), unary=("B",))
        got = evaluate(ndl, abox_yes.complete(tbox)).answers
        assert bool(got) == bool(certain_answers(tbox, abox_yes, query))

    def test_tw_star_inlining_preserves_answers(self):
        tbox = example11_tbox()
        query = chain_cq("RSRRS")
        plain = tw_rewrite(tbox, query)
        inlined = tw_rewrite(tbox, query, inline=True)
        assert len(inlined) <= len(plain)
        for seed in range(5):
            abox = random_data(seed + 90, binary=("P", "R", "S"),
                               unary=("A_P", "A_P-")).complete(tbox)
            assert (evaluate(plain, abox).answers
                    == evaluate(inlined, abox).answers), f"seed {seed}"

    def test_star_query(self):
        tbox = deep_tbox()
        query = CQ.parse("P(c, x), Q(x, y), P(c, z)", answer_vars=["c"])
        ndl = tw_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed + 140)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_unary_only_boolean(self):
        tbox = deep_tbox()
        query = CQ.parse("B(x)")
        ndl = tw_rewrite(tbox, query)
        for seed in range(4):
            abox = random_data(seed + 180)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_arbitrary_instance_form(self):
        tbox = example11_tbox()
        query = chain_cq("RSR")
        ndl = tw_rewrite(tbox, query, over="arbitrary")
        for seed in range(5):
            abox = random_data(seed + 220, binary=("P", "R", "S"),
                               unary=("A_P", "A_P-"))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox).answers
            assert got == expected, f"seed {seed}"
