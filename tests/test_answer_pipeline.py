"""End-to-end tests of the extended ``answer`` pipeline: engines,
optimiser, magic sets and the adaptive method, in every combination.

The invariant: whatever pipeline stages are enabled, the certain
answers must equal the chase-based reference semantics.
"""

import itertools

import pytest

from repro import ABox, CQ, OMQ, answer, certain_answers, chain_cq
from repro.engine import available_engines

from .helpers import example11_tbox


@pytest.fixture(scope="module")
def setting():
    tbox = example11_tbox()
    query = chain_cq("RSRRSRR")
    abox = ABox.parse(
        "R(c0,c1), S(c1,c2), R(c2,c3), R(c3,c4), S(c4,c5), R(c5,c6), "
        "R(c6,c7), A_P-(d0), R(d0,d3), A_P-(d3), R(d3,d6), R(d6,d7)")
    expected = frozenset(certain_answers(tbox, abox, query))
    return tbox, query, abox, expected


class TestPipelineCombinations:
    @pytest.mark.parametrize(
        "engine,optimize_program,magic",
        list(itertools.product(available_engines(), (False, True),
                               (False, True))))
    def test_all_stage_combinations_agree(self, setting, engine,
                                          optimize_program, magic):
        tbox, query, abox, expected = setting
        result = answer(OMQ(tbox, query), abox, method="tw",
                        engine=engine, optimize_program=optimize_program,
                        magic=magic)
        assert result.answers == expected

    @pytest.mark.parametrize("method", ("lin", "log", "tw", "adaptive"))
    def test_methods_with_sql_engine(self, setting, method):
        tbox, query, abox, expected = setting
        result = answer(OMQ(tbox, query), abox, method=method,
                        engine="sql")
        assert result.answers == expected

    def test_adaptive_method(self, setting):
        tbox, query, abox, expected = setting
        result = answer(OMQ(tbox, query), abox, method="adaptive")
        assert result.answers == expected

    def test_adaptive_with_magic(self, setting):
        tbox, query, abox, expected = setting
        result = answer(OMQ(tbox, query), abox, method="adaptive",
                        magic=True)
        assert result.answers == expected

    def test_unknown_engine_is_rejected(self, setting):
        tbox, query, abox, _ = setting
        with pytest.raises(ValueError, match="unknown engine"):
            answer(OMQ(tbox, query), abox, engine="oracle")

    def test_perfectref_still_runs_on_raw_data(self, setting):
        tbox, query, abox, expected = setting
        result = answer(OMQ(tbox, query), abox, method="perfectref")
        assert result.answers == expected


class TestPipelineOnBooleanQueries:
    def test_boolean_query_through_every_engine(self):
        tbox = example11_tbox()
        query = CQ.parse("R(x, y), S(y, z)")
        abox = ABox.parse("R(a, b), A_P(b)")
        for engine in available_engines():
            result = answer(OMQ(tbox, query), abox, engine=engine)
            assert result.answers == {()}

    def test_boolean_no_match(self):
        tbox = example11_tbox()
        query = CQ.parse("S(x, y), S(y, z)")
        abox = ABox.parse("R(a, b)")
        for engine in available_engines():
            result = answer(OMQ(tbox, query), abox, engine=engine,
                            magic=True)
            assert result.answers == frozenset()


class TestPipelineOnAnonymousWitnesses:
    def test_answers_requiring_the_ontology(self):
        # the d-chain only matches thanks to A_P-/A_P surrogates: the
        # anonymous part of the canonical model provides the S edge
        tbox = example11_tbox()
        query = chain_cq("RSR")
        abox = ABox.parse("A_P-(d0), R(d0, d3)")
        for engine in available_engines():
            for magic in (False, True):
                result = answer(OMQ(tbox, query), abox, engine=engine,
                                magic=magic)
                assert ("d0", "d3") in result.answers
