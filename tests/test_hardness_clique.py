"""End-to-end tests for the Theorem 16 partitioned-clique gadget."""

import pytest

from repro.chase import certain_answers
from repro.hardness import (
    PartitionedGraph,
    clique_omq,
    clique_query,
    clique_tbox,
    has_partitioned_clique,
)


class TestSolver:
    def test_positive(self):
        graph = PartitionedGraph.of(4, [[1, 3]], [[1, 2], [3, 4]])
        assert has_partitioned_clique(graph)

    def test_negative(self):
        graph = PartitionedGraph.of(4, [[1, 2]], [[1, 2], [3, 4]])
        assert not has_partitioned_clique(graph)

    def test_triangle_three_parts(self):
        graph = PartitionedGraph.of(
            3, [[1, 2], [2, 3], [1, 3]], [[1], [2], [3]])
        assert has_partitioned_clique(graph)

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            PartitionedGraph.of(3, [], [[1], [2]])  # vertex 3 uncovered
        with pytest.raises(ValueError):
            PartitionedGraph.of(2, [[1, 1]], [[1], [2]])  # self edge


class TestGadgetStructure:
    def test_query_has_p_minus_one_plus_one_leaves(self):
        graph = PartitionedGraph.of(
            3, [[1, 3], [2, 3]], [[1, 2], [3]])
        query = clique_query(graph)
        assert query.is_tree_shaped
        # branches z_1..z_{p-1} plus the starting point y
        assert query.number_of_leaves == len(graph.partition)

    def test_tbox_depth_finite(self):
        import math

        graph = PartitionedGraph.of(2, [[1, 2]], [[1], [2]])
        assert clique_tbox(graph).depth() is not math.inf


class TestReduction:
    @pytest.mark.parametrize("edges,expected", [
        ([[1, 3]], True),
        ([[1, 4]], True),
        ([[2, 3]], True),
        ([[1, 2]], False),
        ([[3, 4]], False),
        ([], False),
    ])
    def test_two_partitions(self, edges, expected):
        graph = PartitionedGraph.of(4, edges, [[1, 2], [3, 4]])
        assert has_partitioned_clique(graph) == expected
        tbox, query, abox = clique_omq(graph)
        got = bool(certain_answers(tbox, abox, query))
        assert got == expected, f"edges={edges}"

    def test_small_graph_with_choice(self):
        # only v2 in V1 is adjacent to a V2 vertex
        graph = PartitionedGraph.of(3, [[2, 3]], [[1, 2], [3]])
        tbox, query, abox = clique_omq(graph)
        assert bool(certain_answers(tbox, abox, query))
