"""Tests for the rewriting cache (``repro.service.cache``): canonical
fingerprints up to variable renaming, LRU behaviour and statistics.
"""

import threading

import pytest

from repro import CQ, OMQ, chain_cq
from repro.rewriting import AnswerSession, rewrite
from repro.service.cache import (
    RewritingCache,
    cq_fingerprint,
    tbox_fingerprint,
)

from .helpers import example11_tbox, random_data


# -- fingerprints -----------------------------------------------------------


class TestCQFingerprint:
    def test_renamed_variables_collide(self):
        original = CQ.parse("R(x,y), S(y,z)", answer_vars=["x"])
        renamed = CQ.parse("R(u,v), S(v,w)", answer_vars=["u"])
        assert cq_fingerprint(original) == cq_fingerprint(renamed)

    def test_atom_order_is_irrelevant(self):
        first = CQ.parse("R(x,y), S(y,z)", answer_vars=["x"])
        second = CQ.parse("S(y,z), R(x,y)", answer_vars=["x"])
        assert cq_fingerprint(first) == cq_fingerprint(second)

    def test_different_shape_distinguished(self):
        chain = CQ.parse("R(x,y), S(y,z)", answer_vars=["x"])
        fork = CQ.parse("R(x,y), S(z,y)", answer_vars=["x"])
        assert cq_fingerprint(chain) != cq_fingerprint(fork)

    def test_answer_variable_position_matters(self):
        head = CQ.parse("R(x,y)", answer_vars=["x"])
        tail = CQ.parse("R(x,y)", answer_vars=["y"])
        both = CQ.parse("R(x,y)", answer_vars=["x", "y"])
        swapped = CQ.parse("R(x,y)", answer_vars=["y", "x"])
        fingerprints = {cq_fingerprint(q)
                        for q in (head, tail, both, swapped)}
        assert len(fingerprints) == 4

    def test_boolean_vs_open_query(self):
        boolean = CQ.parse("R(x,y)")
        open_query = CQ.parse("R(x,y)", answer_vars=["x"])
        assert cq_fingerprint(boolean) != cq_fingerprint(open_query)

    def test_symmetric_query_canonicalised(self):
        # two interchangeable existential branches: any renaming of the
        # branches must reach the same canonical form
        star = CQ.parse("R(x,y), R(x,z)", answer_vars=["x"])
        flipped = CQ.parse("R(x,z), R(x,y)", answer_vars=["x"])
        other_names = CQ.parse("R(x,b), R(x,a)", answer_vars=["x"])
        assert cq_fingerprint(star) == cq_fingerprint(flipped)
        assert cq_fingerprint(star) == cq_fingerprint(other_names)

    def test_self_loop_distinguished_from_edge(self):
        loop = CQ.parse("R(x,x)", answer_vars=["x"])
        edge = CQ.parse("R(x,y)", answer_vars=["x"])
        assert cq_fingerprint(loop) != cq_fingerprint(edge)

    def test_unary_atoms_participate(self):
        plain = CQ.parse("R(x,y)", answer_vars=["x"])
        tagged = CQ.parse("R(x,y), A(y)", answer_vars=["x"])
        assert cq_fingerprint(plain) != cq_fingerprint(tagged)


class TestTBoxFingerprint:
    def test_equal_ontologies_share_fingerprint(self):
        first = example11_tbox()
        second = example11_tbox()
        assert first is not second
        assert tbox_fingerprint(first) == tbox_fingerprint(second)

    def test_axiom_order_is_irrelevant(self):
        from repro import TBox

        forward = TBox.parse("roles: P, R\nP <= R\nA <= EP")
        backward = TBox.parse("roles: P, R\nA <= EP\nP <= R")
        assert tbox_fingerprint(forward) == tbox_fingerprint(backward)

    def test_different_ontologies_differ(self):
        from repro import TBox

        assert (tbox_fingerprint(example11_tbox())
                != tbox_fingerprint(TBox.parse("roles: P\nA <= EP")))


# -- the LRU cache ----------------------------------------------------------


class TestRewritingCache:
    def test_get_or_compute_fills_once(self):
        cache = RewritingCache(maxsize=4)
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        calls = []

        def compute():
            calls.append(1)
            return rewrite(omq, method="lin")

        key = cache.key(omq, method="lin")
        first = cache.get_or_compute(key, compute)
        second = cache.get_or_compute(key, compute)
        assert first is second
        assert len(calls) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)

    def test_renamed_query_hits(self):
        cache = RewritingCache()
        tbox = example11_tbox()
        original = OMQ(tbox, CQ.parse("R(x,y), S(y,z)", answer_vars=["x"]))
        renamed = OMQ(tbox, CQ.parse("R(a,b), S(b,c)", answer_vars=["a"]))
        assert cache.key(original) == cache.key(renamed)

    def test_method_and_magic_partition_keys(self):
        cache = RewritingCache()
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        keys = {cache.key(omq, method="lin"),
                cache.key(omq, method="log"),
                cache.key(omq, method="lin", magic=True)}
        assert len(keys) == 3

    def test_lru_eviction(self):
        cache = RewritingCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1     # refresh "a": "b" is now LRU
        cache.put(("c",), 3)
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 2

    def test_maxsize_validated(self):
        with pytest.raises(ValueError, match="positive"):
            RewritingCache(maxsize=0)

    def test_thread_safety_smoke(self):
        cache = RewritingCache(maxsize=8)
        errors = []

        def worker(worker_id):
            try:
                for i in range(200):
                    key = ("k", (worker_id + i) % 16)
                    cache.get_or_compute(key, lambda: i)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8


# -- session integration ----------------------------------------------------


class TestSessionCacheIntegration:
    def test_session_uses_injected_cache(self):
        cache = RewritingCache()
        tbox = example11_tbox()
        abox = random_data(3)
        with AnswerSession(abox, rewriting_cache=cache) as session:
            baseline = session.answer(OMQ(tbox, chain_cq("RS")))
            again = session.answer(OMQ(tbox, chain_cq("RS")))
        assert baseline.answers == again.answers
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_cached_answers_match_uncached(self):
        cache = RewritingCache()
        tbox = example11_tbox()
        abox = random_data(4)
        omqs = [OMQ(tbox, chain_cq(labels)) for labels in ("RS", "SRR")]
        with AnswerSession(abox) as plain, \
                AnswerSession(abox, rewriting_cache=cache) as cached:
            for omq in omqs:
                for method in ("lin", "log", "tw"):
                    for _ in range(2):
                        assert (cached.answer(omq, method=method).answers
                                == plain.answer(omq, method=method).answers)

    def test_magic_flag_cached_separately(self):
        cache = RewritingCache()
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RS"))
        with AnswerSession(random_data(5), rewriting_cache=cache) as session:
            plain = session.answer(omq, method="lin")
            with_magic = session.answer(omq, method="lin", magic=True)
        assert plain.answers == with_magic.answers
        assert len(cache) == 2

    def test_data_dependent_stages_bypass_cache(self):
        cache = RewritingCache()
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RS"))
        with AnswerSession(random_data(6), rewriting_cache=cache) as session:
            session.answer(omq, method="adaptive")
            session.answer(omq, method="lin", optimize_program=True)
        assert len(cache) == 0
