"""Tests for repro.chase.consistency (the ``bottom`` handling)."""

import pytest

from repro.chase.consistency import BOT, inconsistency_clauses, is_consistent
from repro.data import ABox
from repro.datalog import NDLQuery, Program, evaluate
from repro.ontology import TBox


def bot_fires(tbox, abox) -> bool:
    program = Program(inconsistency_clauses(tbox))
    if BOT not in program.idb_predicates:
        return False
    query = NDLQuery(program, BOT, ())
    return bool(evaluate(query, abox.complete(tbox)).answers)


class TestConceptDisjointness:
    def test_direct_clash(self):
        tbox = TBox.parse("A & B <= bottom")
        assert not is_consistent(tbox, ABox.parse("A(a), B(a)"))
        assert is_consistent(tbox, ABox.parse("A(a), B(b)"))

    def test_clash_through_hierarchy(self):
        tbox = TBox.parse("C <= A\nA & B <= bottom")
        assert not is_consistent(tbox, ABox.parse("C(a), B(a)"))

    def test_clash_through_role(self):
        tbox = TBox.parse("roles: P\nEP <= A\nA & B <= bottom")
        assert not is_consistent(tbox, ABox.parse("P(a, c), B(a)"))
        assert is_consistent(tbox, ABox.parse("P(a, c), B(c)"))


class TestRoleDisjointness:
    def test_direct_clash(self):
        tbox = TBox.parse("roles: P, S\nP & S <= bottom")
        assert not is_consistent(tbox, ABox.parse("P(a, b), S(a, b)"))
        assert is_consistent(tbox, ABox.parse("P(a, b), S(b, a)"))

    def test_clash_through_subrole(self):
        tbox = TBox.parse("roles: P, Q, S\nQ <= P\nP & S <= bottom")
        assert not is_consistent(tbox, ABox.parse("Q(a, b), S(a, b)"))

    def test_irreflexivity(self):
        tbox = TBox.parse("roles: P\nirrefl(P)")
        assert not is_consistent(tbox, ABox.parse("P(a, a)"))
        assert is_consistent(tbox, ABox.parse("P(a, b)"))

    def test_reflexivity_vs_irreflexivity(self):
        tbox = TBox.parse("roles: P, Q\nrefl(P)\nP <= Q\nirrefl(Q)")
        assert not is_consistent(tbox, ABox.parse("A(a)"))


class TestAnonymousPart:
    def test_clash_at_witness(self):
        # the P-witness of any A-individual satisfies both B and C
        tbox = TBox.parse(
            "roles: P\nA <= EP\nEP- <= B\nEP- <= C\nB & C <= bottom")
        assert not is_consistent(tbox, ABox.parse("A(a)"))
        assert is_consistent(tbox, ABox.parse("B(a)"))

    def test_clash_at_deep_witness(self):
        tbox = TBox.parse("roles: P, Q\n"
                          "A <= EP\nEP- <= EQ\nEQ- <= B\nEQ- <= C\n"
                          "B & C <= bottom")
        assert not is_consistent(tbox, ABox.parse("A(a)"))

    def test_role_clash_on_witness_edge(self):
        tbox = TBox.parse("roles: P, Q, S\nA <= EP\nP <= Q\nP <= S\n"
                          "Q & S <= bottom")
        assert not is_consistent(tbox, ABox.parse("A(a)"))

    def test_empty_data_consistent(self):
        tbox = TBox.parse("A & B <= bottom")
        assert is_consistent(tbox, ABox())


class TestInconsistencyClauses:
    @pytest.mark.parametrize("axioms,data,expected", [
        ("A & B <= bottom", "A(a), B(a)", True),
        ("A & B <= bottom", "A(a), B(b)", False),
        ("roles: P, S\nP & S <= bottom", "P(a,b), S(a,b)", True),
        ("roles: P\nirrefl(P)", "P(a,a)", True),
        ("roles: P\nA <= EP\nEP- <= B\nEP- <= C\nB & C <= bottom",
         "A(a)", True),
        ("roles: P\nA <= EP\nEP- <= B\nEP- <= C\nB & C <= bottom",
         "B(a)", False),
    ])
    def test_bot_matches_semantic_check(self, axioms, data, expected):
        tbox = TBox.parse(axioms)
        abox = ABox.parse(data)
        assert bot_fires(tbox, abox) == expected
        assert is_consistent(tbox, abox) == (not expected)
