"""Tests for repro.datalog.evaluate (the bottom-up engine)."""


from repro.data import ABox
from repro.datalog import Clause, Equality, Literal, NDLQuery, Program, evaluate


def clause(head, *body):
    return Clause(head, tuple(body))


def run(clauses, goal, answer_vars, data):
    query = NDLQuery(Program(clauses), goal, tuple(answer_vars))
    return evaluate(query, ABox.parse(data))


class TestBasicEvaluation:
    def test_single_join(self):
        result = run([clause(Literal("G", ("x", "z")),
                             Literal("R", ("x", "y")),
                             Literal("R", ("y", "z")))],
                     "G", ("x", "z"), "R(a,b), R(b,c), R(c,d)")
        assert result.answers == {("a", "c"), ("b", "d")}

    def test_idb_chaining(self):
        result = run([
            clause(Literal("G", ("x",)), Literal("Q", ("x",)),
                   Literal("A", ("x",))),
            clause(Literal("Q", ("x",)), Literal("R", ("x", "y"))),
        ], "G", ("x",), "R(a,b), R(b,c), A(a)")
        assert result.answers == {("a",)}

    def test_union_of_clauses(self):
        result = run([
            clause(Literal("G", ("x",)), Literal("A", ("x",))),
            clause(Literal("G", ("x",)), Literal("B", ("x",))),
        ], "G", ("x",), "A(a), B(b)")
        assert result.answers == {("a",), ("b",)}

    def test_boolean_goal(self):
        result = run([clause(Literal("G", ()), Literal("A", ("x",)))],
                     "G", (), "A(a)")
        assert result.answers == {()}

    def test_boolean_goal_empty(self):
        result = run([clause(Literal("G", ()), Literal("A", ("x",)))],
                     "G", (), "B(a)")
        assert result.answers == frozenset()

    def test_nullary_fact(self):
        result = run([
            clause(Literal("G", ("x",)), Literal("A", ("x",)),
                   Literal("F", ())),
            clause(Literal("F", ())),
        ], "G", ("x",), "A(a)")
        assert result.answers == {("a",)}

    def test_missing_edb_predicate(self):
        result = run([clause(Literal("G", ("x",)),
                             Literal("Zzz", ("x",)))],
                     "G", ("x",), "A(a)")
        assert result.answers == frozenset()


class TestEqualities:
    def test_equality_join(self):
        result = run([clause(Literal("G", ("x",)),
                             Literal("R", ("x", "y")),
                             Equality("x", "y"))],
                     "G", ("x",), "R(a,a), R(a,b)")
        assert result.answers == {("a",)}

    def test_equality_between_atoms(self):
        result = run([clause(Literal("G", ("x", "z")),
                             Literal("A", ("x",)), Equality("x", "z"),
                             Literal("B", ("z",)))],
                     "G", ("x", "z"), "A(a), B(a), B(b)")
        assert result.answers == {("a", "a")}

    def test_repeated_variable_in_atom(self):
        result = run([clause(Literal("G", ("x",)),
                             Literal("R", ("x", "x")))],
                     "G", ("x",), "R(a,a), R(a,b)")
        assert result.answers == {("a",)}


class TestStatistics:
    def test_generated_tuples_counts_idb(self):
        result = run([
            clause(Literal("G", ("x",)), Literal("Q", ("x",))),
            clause(Literal("Q", ("x",)), Literal("R", ("x", "y"))),
        ], "G", ("x",), "R(a,b), R(a,c), R(b,c)")
        # Q = {a, b}, G = {a, b}
        assert result.generated_tuples == 4
        assert result.relation_sizes == {"Q": 2, "G": 2}

    def test_unreachable_predicates_not_evaluated(self):
        result = run([
            clause(Literal("G", ("x",)), Literal("A", ("x",))),
            clause(Literal("Huge", ("x", "y", "z")),
                   Literal("R", ("x", "y")), Literal("R", ("y", "z"))),
        ], "G", ("x",), "A(a), R(a,b)")
        assert "Huge" not in result.relation_sizes


class TestCartesianAndProjection:
    def test_cartesian_product(self):
        result = run([clause(Literal("G", ("x", "y")),
                             Literal("A", ("x",)), Literal("B", ("y",)))],
                     "G", ("x", "y"), "A(a), A(b), B(c)")
        assert result.answers == {("a", "c"), ("b", "c")}

    def test_long_chain_projection(self):
        clauses = [clause(
            Literal("G", ("x0", "x5")),
            *[Literal("R", (f"x{i}", f"x{i+1}")) for i in range(5)])]
        data = ", ".join(f"R(n{i}, n{i+1})" for i in range(5))
        result = run(clauses, "G", ("x0", "x5"), data)
        assert result.answers == {("n0", "n5")}
