"""End-to-end tests for the Theorem 22 hardest-CFL gadget (fixed
ontology T_ddagger with linear CQs)."""

import math

import pytest

from repro.hardness import (
    ddagger_tbox,
    in_b0,
    in_hardest_language,
    is_block_formed,
    tokenize,
    word_omq,
    word_query,
)
from repro.rewriting import OMQ, answer


class TestBaseLanguage:
    @pytest.mark.parametrize("text,expected", [
        ("", True),
        ("a1b1", True),
        ("a2b2", True),
        ("a1a2b2b1", True),
        ("a1b1a2b2", True),
        ("a1b2", False),
        ("a1", False),
        ("b1a1", False),
        ("a1a1b1", False),
    ])
    def test_membership(self, text, expected):
        word = tokenize(text) if text else []
        assert in_b0(word) == expected


class TestBlockStructure:
    @pytest.mark.parametrize("text,expected", [
        ("[a1b1]", True),
        ("[a1#b1]", True),
        ("[#]", True),
        ("[]", False),
        ("[a1b1", False),
        ("a1b1]", False),
        ("[a1][b1]", True),
        ("[a1]x[b1]", False),
        ("[[a1]]", False),
    ])
    def test_block_formed(self, text, expected):
        try:
            word = tokenize(text)
        except ValueError:
            word = list(text)
        assert is_block_formed(word) == expected

    def test_paper_examples(self):
        # equations (12)-(15) of Section 5
        assert not in_hardest_language(tokenize("[a1a2#b2b1]"))
        assert in_hardest_language(tokenize("[a1a2#b2b1][b2b1]"))
        assert not in_hardest_language(tokenize("[a1a2#b2b1][a1b1]"))
        assert in_hardest_language(tokenize("[#a1a2#b2b1][a1b1]"))


class TestGadget:
    def test_ontology_fixed_and_infinite(self):
        assert ddagger_tbox().depth() is math.inf

    def test_query_is_linear(self):
        query = word_query(tokenize("[a1b1]"))
        assert query.is_linear
        assert query.is_boolean

    def test_error_query_for_garbage(self):
        query = word_query(["a1", "b1"])  # not block-formed
        assert any(atom.predicate == "Err" for atom in query.atoms)

    @pytest.mark.parametrize("text", [
        "[a1b1]", "[a1]", "[a1a2#b2b1][b2b1]", "[a1a2#b2b1]", "[#]",
    ])
    def test_tw_rewriting_decides_membership(self, text):
        word = tokenize(text)
        tbox, query, abox = word_omq(word)
        got = bool(answer(OMQ(tbox, query), abox, method="tw").answers)
        assert got == in_hardest_language(word), text
