"""Property-based tests (hypothesis): randomized OMQs, data and
programs checked against the certain-answer oracle and against each
other."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.chase import certain_answers
from repro.data import ABox
from repro.datalog import evaluate, is_skinny, skinny_transform
from repro.ontology import TBox
from repro.ontology.axioms import ConceptInclusion, RoleInclusion
from repro.ontology.terms import Atomic, Exists, Role
from repro.queries import CQ, Atom
from repro.rewriting import lin_rewrite, log_rewrite, tw_rewrite, ucq_rewrite

from .helpers import hypothesis_settings

ROLE_NAMES = ("P", "Q")
CONCEPT_NAMES = ("A", "B")

SETTINGS = hypothesis_settings(25)


@st.composite
def tboxes(draw, allow_infinite=False):
    """A small random OWL 2 QL TBox."""
    roles = [Role(name, inv) for name in ROLE_NAMES
             for inv in (False, True)]
    concepts = ([Atomic(name) for name in CONCEPT_NAMES]
                + [Exists(role) for role in roles])
    axioms = []
    for _ in range(draw(st.integers(1, 5))):
        kind = draw(st.sampled_from(["ci", "ri"]))
        if kind == "ci":
            lhs = draw(st.sampled_from(concepts))
            rhs = draw(st.sampled_from(concepts))
            axioms.append(ConceptInclusion(lhs, rhs))
        else:
            lhs = draw(st.sampled_from(roles))
            rhs = draw(st.sampled_from(roles))
            axioms.append(RoleInclusion(lhs, rhs))
    tbox = TBox(axioms)
    if not allow_infinite and tbox.depth() is math.inf:
        # truncate to the role-inclusion fragment (depth <= 1)
        tbox = TBox([ax for ax in axioms if isinstance(ax, RoleInclusion)])
    return tbox


@st.composite
def tree_queries(draw):
    """A random tree-shaped CQ on 2-5 variables."""
    size = draw(st.integers(2, 5))
    variables = [f"v{i}" for i in range(size)]
    atoms = []
    for i in range(1, size):
        parent = variables[draw(st.integers(0, i - 1))]
        predicate = draw(st.sampled_from(ROLE_NAMES))
        if draw(st.booleans()):
            atoms.append(Atom(predicate, (parent, variables[i])))
        else:
            atoms.append(Atom(predicate, (variables[i], parent)))
    for var in variables:
        if draw(st.integers(0, 3)) == 0:
            atoms.append(Atom(draw(st.sampled_from(CONCEPT_NAMES)), (var,)))
    n_answers = draw(st.integers(0, 2))
    answers = tuple(variables[:n_answers])
    return CQ(atoms, answers)


@st.composite
def aboxes(draw):
    abox = ABox()
    names = [f"c{i}" for i in range(draw(st.integers(2, 4)))]
    for _ in range(draw(st.integers(1, 10))):
        if draw(st.booleans()):
            abox.add(draw(st.sampled_from(CONCEPT_NAMES + ("A_P", "A_Q"))),
                     draw(st.sampled_from(names)))
        else:
            abox.add(draw(st.sampled_from(ROLE_NAMES)),
                     draw(st.sampled_from(names)),
                     draw(st.sampled_from(names)))
    return abox


class TestRewritersAgainstOracle:
    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_lin_matches_oracle(self, tbox, query, abox):
        expected = certain_answers(tbox, abox, query)
        ndl = lin_rewrite(tbox, query)
        assert evaluate(ndl, abox.complete(tbox)).answers == expected

    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_log_matches_oracle(self, tbox, query, abox):
        expected = certain_answers(tbox, abox, query)
        ndl = log_rewrite(tbox, query)
        assert evaluate(ndl, abox.complete(tbox)).answers == expected

    @SETTINGS
    @given(tbox=tboxes(allow_infinite=True), query=tree_queries(),
           abox=aboxes())
    def test_tw_matches_oracle(self, tbox, query, abox):
        expected = certain_answers(tbox, abox, query)
        ndl = tw_rewrite(tbox, query)
        assert evaluate(ndl, abox.complete(tbox)).answers == expected

    @SETTINGS
    @given(tbox=tboxes(allow_infinite=True), query=tree_queries(),
           abox=aboxes())
    def test_ucq_matches_oracle(self, tbox, query, abox):
        expected = certain_answers(tbox, abox, query)
        ndl = ucq_rewrite(tbox, query)
        assert evaluate(ndl, abox.complete(tbox)).answers == expected


class TestStructuralInvariants:
    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries())
    def test_lin_is_linear_with_bounded_width(self, tbox, query):
        from repro.datalog import is_linear

        ndl = lin_rewrite(tbox, query)
        assert is_linear(ndl.program)
        assert ndl.width() <= 2 * max(1, query.number_of_leaves)

    @SETTINGS
    @given(tbox=tboxes(allow_infinite=True), query=tree_queries(),
           abox=aboxes())
    def test_skinny_transform_equivalence(self, tbox, query, abox):
        base = tw_rewrite(tbox, query)
        skinny = skinny_transform(base)
        assert is_skinny(skinny.program)
        completed = abox.complete(tbox)
        assert (evaluate(base, completed).answers
                == evaluate(skinny, completed).answers)

    @SETTINGS
    @given(abox=aboxes(), tbox=tboxes(allow_infinite=True))
    def test_completion_is_idempotent(self, abox, tbox):
        completed = abox.complete(tbox)
        assert completed.is_complete_for(tbox)

    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_answers_are_subsets_of_individual_tuples(self, tbox, query,
                                                      abox):
        answers = certain_answers(tbox, abox, query)
        for row in answers:
            assert len(row) == len(query.answer_vars)
            assert all(constant in abox.individuals for constant in row)
