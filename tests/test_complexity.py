"""Tests for the Figure 1 landscape and the fragment analysis."""

import math

from repro.complexity import (
    LOGCFL,
    NL,
    NP,
    analyse,
    combined_complexity,
    landscape_grid,
    rewriting_size_status,
)
from repro.queries import chain_cq
from repro.rewriting import lin_rewrite, log_rewrite, tw_rewrite

from .helpers import example11_tbox

INF = math.inf


class TestFigure1a:
    def test_tractable_cells(self):
        # the three tractable classes of Section 1
        assert combined_complexity(2, 3, INF) == LOGCFL   # OMQ(d, t, inf)
        assert combined_complexity(2, 1, 4) == NL         # OMQ(d, 1, l)
        assert combined_complexity(INF, 1, 4) == LOGCFL   # OMQ(inf, 1, l)

    def test_bounded_depth_unbounded_leaves_trees(self):
        assert combined_complexity(2, 1, INF) == LOGCFL

    def test_np_cells(self):
        assert combined_complexity(INF, 1, INF) == NP   # trees, unbounded
        assert combined_complexity(INF, 2, INF) == NP
        assert combined_complexity(0, INF, INF) == NP   # CQ evaluation
        assert combined_complexity(INF, INF, INF) == NP

    def test_depth_zero_trees_bounded_leaves(self):
        assert combined_complexity(0, 1, 2) == NL


class TestFigure1b:
    def test_tractable_cells_have_poly_ndl_but_no_poly_pe(self):
        for depth, treewidth, leaves in ((2, 1, 2), (2, 1, INF),
                                         (INF, 1, 2), (2, 2, INF)):
            status = rewriting_size_status(depth, treewidth, leaves)
            assert status.poly_ndl
            assert not status.poly_pe

    def test_np_cells_have_no_poly_ndl(self):
        status = rewriting_size_status(INF, 1, INF)
        assert not status.poly_ndl

    def test_unbounded_treewidth_bounded_depth_has_poly_pe(self):
        # the poly Pi_2/Pi_4/PE column of Figure 1(b)
        for depth in (1, 2, 3):
            status = rewriting_size_status(depth, INF, INF)
            assert status.poly_pe

    def test_fo_condition_strings(self):
        assert "NL/poly" in rewriting_size_status(1, 1, 2).poly_fo
        assert "LOGCFL/poly" in rewriting_size_status(1, 1, INF).poly_fo
        assert "NP/poly" in rewriting_size_status(INF, INF, INF).poly_fo

    def test_grid_has_all_cells(self):
        grid = landscape_grid()
        assert len(grid) == 25
        assert all({"depth", "shape", "combined", "rewritings"} <= set(row)
                   for row in grid)


class TestFragmentReports:
    def test_lin_report_in_nl_fragment(self):
        ndl = lin_rewrite(example11_tbox(), chain_cq("RSRR"))
        report = analyse(ndl)
        assert report.in_nl_fragment
        assert report.width <= 4

    def test_log_report_in_logcfl_fragment(self):
        ndl = log_rewrite(example11_tbox(), chain_cq("RSRRSRRS"),
                          simplify=False)
        report = analyse(ndl)
        assert report.in_logcfl_fragment(8, ndl.program.symbol_size())

    def test_tw_report_in_logcfl_fragment(self):
        ndl = tw_rewrite(example11_tbox(), chain_cq("RSRRSRRS"),
                         simplify=False)
        report = analyse(ndl)
        assert report.in_logcfl_fragment(8, ndl.program.symbol_size())
