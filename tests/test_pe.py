"""Tests for PE-queries (repro.queries.pe) and the Theorem 21/28
construction (repro.hardness.pe_trees)."""

import random

import pytest

from repro.data import ABox
from repro.datalog import evaluate
from repro.hardness.pe_trees import (
    all_three_clauses,
    cnf_minus_alpha,
    pe_query_qm,
)
from repro.hardness.sat import is_satisfiable, tree_abox
from repro.queries.pe import (
    PEAtom,
    PEQuery,
    conj,
    disj,
    evaluate_pe,
    pe_to_ndl,
)


class TestPEBasics:
    def test_atom_evaluation(self):
        query = PEQuery(PEAtom("R", ("x", "y")), ("x",))
        abox = ABox.parse("R(a, b)")
        assert evaluate_pe(query, abox, ("a",))
        assert not evaluate_pe(query, abox, ("b",))

    def test_disjunction(self):
        query = PEQuery(disj(PEAtom("A", ("x",)), PEAtom("B", ("x",))),
                        ("x",))
        abox = ABox.parse("A(a), B(b), C(c)")
        assert evaluate_pe(query, abox, ("a",))
        assert evaluate_pe(query, abox, ("b",))
        assert not evaluate_pe(query, abox, ("c",))

    def test_conjunction_with_existential(self):
        query = PEQuery(conj(PEAtom("R", ("x", "y")),
                             PEAtom("B", ("y",))), ("x",))
        abox = ABox.parse("R(a, b), B(b), R(c, d)")
        assert evaluate_pe(query, abox, ("a",))
        assert not evaluate_pe(query, abox, ("c",))

    def test_nested_formula(self):
        matrix = conj(
            PEAtom("R", ("x", "y")),
            disj(PEAtom("B", ("y",)),
                 conj(PEAtom("R", ("y", "z")), PEAtom("B", ("z",)))))
        query = PEQuery(matrix, ("x",))
        abox = ABox.parse("R(a, b), R(b, c), B(c)")
        assert evaluate_pe(query, abox, ("a",))

    def test_size_measure(self):
        matrix = conj(PEAtom("R", ("x", "y")), PEAtom("B", ("y",)))
        assert PEQuery(matrix, ("x",)).size() == 1 + 3 + 2 + 1


class TestPEToNDL:
    @pytest.mark.parametrize("candidate,expected", [
        (("a",), True), (("b",), False), (("c",), True)])
    def test_matches_direct_evaluation(self, candidate, expected):
        matrix = conj(
            PEAtom("R", ("x", "y")),
            disj(PEAtom("B", ("y",)), PEAtom("C", ("y",))))
        query = PEQuery(matrix, ("x",))
        abox = ABox.parse("R(a, b), B(b), R(c, d), C(d), R(b, e)")
        assert evaluate_pe(query, abox, candidate) == expected
        ndl = pe_to_ndl(query)
        assert (candidate in evaluate(ndl, abox).answers) == expected

    def test_randomised_agreement(self):
        rng = random.Random(2)
        matrix = conj(
            PEAtom("R", ("x", "y")),
            disj(conj(PEAtom("R", ("y", "z")), PEAtom("B", ("z",))),
                 PEAtom("B", ("y",))))
        query = PEQuery(matrix, ("x",))
        for seed in range(6):
            abox = ABox()
            names = ["a", "b", "c", "d"]
            rng = random.Random(seed)
            for _ in range(8):
                if rng.random() < 0.4:
                    abox.add("B", rng.choice(names))
                else:
                    abox.add("R", rng.choice(names), rng.choice(names))
            ndl = pe_to_ndl(query)
            ndl_answers = evaluate(ndl, abox).answers
            for name in names:
                if name in abox.individuals:
                    assert evaluate_pe(query, abox, (name,)) == (
                        (name,) in ndl_answers), (seed, name)


class TestTheorem28:
    def test_phi3_has_eight_clauses(self):
        assert len(all_three_clauses(3)) == 8

    def test_phi_k_is_unsatisfiable(self):
        # all clauses over k variables cannot be jointly satisfied
        assert not is_satisfiable(all_three_clauses(3))

    def test_query_is_polynomial(self):
        query, clauses = pe_query_qm(3)
        assert query.size() < 100 * len(clauses)

    def test_rejects_non_power_of_two(self):
        # k = 5 gives 8 * C(5,3) = 80 clauses - not a power of two
        with pytest.raises(ValueError):
            pe_query_qm(5)

    def test_reduction_on_random_alphas(self):
        query, clauses = pe_query_qm(3)
        ndl = pe_to_ndl(query)
        rng = random.Random(7)
        for _ in range(5):
            alpha = [rng.randint(0, 1) for _ in range(8)]
            abox = tree_abox(alpha)
            expected = is_satisfiable(cnf_minus_alpha(clauses, alpha))
            got = ("t",) in evaluate(ndl, abox).answers
            assert got == expected, alpha

    def test_all_flagged_is_satisfiable(self):
        query, clauses = pe_query_qm(3)
        ndl = pe_to_ndl(query)
        abox = tree_abox([1] * 8)
        assert ("t",) in evaluate(ndl, abox).answers

    def test_none_flagged_is_unsatisfiable(self):
        query, clauses = pe_query_qm(3)
        ndl = pe_to_ndl(query)
        abox = tree_abox([0] * 8)
        assert ("t",) not in evaluate(ndl, abox).answers
