"""Tests for repro.queries.treedecomp."""

import networkx as nx
import pytest

from repro.queries import CQ, chain_cq, tree_decomposition
from repro.queries.treedecomp import subtree_components


class TestTreeDecomposition:
    def test_chain_yields_width_one(self):
        decomposition = tree_decomposition(chain_cq("RSRRSRR"))
        assert decomposition.width == 1
        assert decomposition.tree.number_of_nodes() == 7  # one bag per edge

    def test_chain_bags_are_edges(self):
        query = chain_cq("RS")
        decomposition = tree_decomposition(query)
        bags = set(decomposition.bags.values())
        assert frozenset({"x0", "x1"}) in bags
        assert frozenset({"x1", "x2"}) in bags

    def test_validates_on_tree_query(self):
        query = CQ.parse("R(c, x), R(c, y), S(y, z)")
        decomposition = tree_decomposition(query)
        decomposition.validate(query)
        assert decomposition.width == 1

    def test_cycle_query(self):
        query = CQ.parse("R(x, y), R(y, z), R(z, x)")
        decomposition = tree_decomposition(query)
        decomposition.validate(query)
        assert decomposition.width == 2

    def test_grid_query(self):
        atoms = []
        for i in range(3):
            for j in range(3):
                if i < 2:
                    atoms.append(f"H(v{i}{j}, v{i+1}{j})")
                if j < 2:
                    atoms.append(f"V(v{i}{j}, v{i}{j+1})")
        query = CQ.parse(", ".join(atoms))
        decomposition = tree_decomposition(query)
        decomposition.validate(query)
        assert decomposition.width >= 2

    def test_single_variable_query(self):
        decomposition = tree_decomposition(CQ.parse("A(x)"))
        decomposition.validate(CQ.parse("A(x)"))

    def test_disconnected_query(self):
        query = CQ.parse("R(x, y), S(u, v)")
        decomposition = tree_decomposition(query)
        decomposition.validate(query)

    def test_validate_rejects_uncovered_edge(self):
        query = chain_cq("RS")
        decomposition = tree_decomposition(chain_cq("R"))
        with pytest.raises(ValueError):
            decomposition.validate(query)


class TestSubtreeComponents:
    def test_path_split(self):
        tree = nx.path_graph(5)
        parts = subtree_components(tree, frozenset(range(5)), 2)
        assert sorted(sorted(p) for p in parts) == [[0, 1], [3, 4]]

    def test_split_in_sub_subtree(self):
        tree = nx.path_graph(5)
        parts = subtree_components(tree, frozenset({0, 1, 2}), 1)
        assert sorted(sorted(p) for p in parts) == [[0], [2]]
