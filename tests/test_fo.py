"""Tests for the FO-formula layer (repro.queries.fo) and the Theorem 19
polynomial FO-rewriting (repro.hardness.fo_rewriting)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ABox, CQ
from repro.chase.certain import is_certain_answer
from repro.hardness.fo_rewriting import (
    fo_rewriting,
    holds_single_constant,
    multi_constant_guard,
    phi_star,
)
from repro.hardness.sat import dagger_tbox, is_satisfiable, sat_abox, sat_query
from repro.queries.fo import (
    FOAnd,
    FOAtom,
    FOEq,
    FOExists,
    FOFalse,
    FOForall,
    FONot,
    FOTrue,
    cq_to_fo,
    evaluate_fo,
    fo_and,
    fo_or,
    holds_fo,
)


class TestEvaluation:
    def test_atom(self):
        abox = ABox.parse("A(a)")
        assert holds_fo(FOAtom("A", ("x",)), abox, {"x": "a"})
        assert not holds_fo(FOAtom("A", ("x",)), abox, {"x": "b"})

    def test_equality(self):
        abox = ABox.parse("A(a)")
        assert holds_fo(FOEq("x", "y"), abox, {"x": "a", "y": "a"})
        assert not holds_fo(FOEq("x", "y"), abox, {"x": "a", "y": "b"})

    def test_negation(self):
        abox = ABox.parse("A(a), B(b)")
        formula = FONot(FOAtom("A", ("x",)))
        assert evaluate_fo(formula, abox, ("x",), ("b",))
        assert not evaluate_fo(formula, abox, ("x",), ("a",))

    def test_exists(self):
        abox = ABox.parse("R(a, b)")
        formula = FOExists(("y",), FOAtom("R", ("x", "y")))
        assert evaluate_fo(formula, abox, ("x",), ("a",))
        assert not evaluate_fo(formula, abox, ("x",), ("b",))

    def test_forall(self):
        abox = ABox.parse("A(a), A(b)")
        assert evaluate_fo(FOForall(("x",), FOAtom("A", ("x",))), abox)
        abox.add("B", "c")
        assert not evaluate_fo(FOForall(("x",), FOAtom("A", ("x",))), abox)

    def test_forall_exists_alternation(self):
        # every node has an R-successor
        formula = FOForall(("x",),
                           FOExists(("y",), FOAtom("R", ("x", "y"))))
        cycle = ABox.parse("R(a, b), R(b, a)")
        chain = ABox.parse("R(a, b)")
        assert evaluate_fo(formula, cycle)
        assert not evaluate_fo(formula, chain)

    def test_constants_true_false(self):
        abox = ABox.parse("A(a)")
        assert holds_fo(FOTrue(), abox, {})
        assert not holds_fo(FOFalse(), abox, {})

    def test_unbound_free_variable_is_rejected(self):
        with pytest.raises(ValueError, match="free variables"):
            evaluate_fo(FOAtom("A", ("x",)), ABox.parse("A(a)"))

    def test_candidate_arity_mismatch(self):
        with pytest.raises(ValueError, match="arity"):
            evaluate_fo(FOAtom("A", ("x",)), ABox.parse("A(a)"),
                        ("x",), ())


class TestSmartConstructors:
    def test_and_simplifies_true(self):
        assert fo_and(FOTrue(), FOAtom("A", ("x",))) == FOAtom("A", ("x",))

    def test_and_short_circuits_false(self):
        assert fo_and(FOAtom("A", ("x",)), FOFalse()) == FOFalse()

    def test_or_simplifies_false(self):
        assert fo_or(FOFalse(), FOAtom("A", ("x",))) == FOAtom("A", ("x",))

    def test_or_short_circuits_true(self):
        assert fo_or(FOAtom("A", ("x",)), FOTrue()) == FOTrue()

    def test_empty_and_is_true(self):
        assert fo_and() == FOTrue()

    def test_empty_or_is_false(self):
        assert fo_or() == FOFalse()


class TestSizes:
    def test_size_is_additive(self):
        formula = FOAnd((FOAtom("A", ("x",)), FOEq("x", "y")))
        assert formula.size() == 1 + 2 + 3

    def test_free_variables(self):
        formula = FOExists(("y",), FOAnd((FOAtom("R", ("x", "y")),
                                          FOEq("x", "z"))))
        assert formula.free_variables == {"x", "z"}


class TestCQConversion:
    def test_boolean_cq(self):
        cq = CQ.parse("R(x, y), A(y)")
        formula = cq_to_fo(cq)
        assert evaluate_fo(formula, ABox.parse("R(a, b), A(b)"))
        assert not evaluate_fo(formula, ABox.parse("R(a, b), A(a)"))

    def test_cq_with_answers(self):
        cq = CQ.parse("R(x, y)", answer_vars=["x"])
        formula = cq_to_fo(cq)
        abox = ABox.parse("R(a, b)")
        assert evaluate_fo(formula, abox, ("x",), ("a",))
        assert not evaluate_fo(formula, abox, ("x",), ("b",))

    def test_matches_plain_cq_semantics_on_random_data(self):
        cq = CQ.parse("R(x, y), R(y, z), A(z)")
        abox = ABox.parse("R(a,b), R(b,c), A(c), R(c,a)")
        assert evaluate_fo(cq_to_fo(cq), abox)


#: Small CNFs with known status, DIMACS-style.
SAT_CNFS = (
    [[1]],
    [[1, 2], [-1]],
    [[1, -2], [2, -3], [3, -1]],
    [[1, 2, 3]],
)
UNSAT_CNFS = (
    [[1], [-1]],
    [[1, 2], [-1, 2], [1, -2], [-1, -2]],
    [[1], [-1, 2], [-2]],
)


class TestTheorem19:
    @pytest.mark.parametrize("cnf", SAT_CNFS)
    def test_phi_star_satisfiable(self, cnf):
        assert phi_star(cnf) == FOTrue()

    @pytest.mark.parametrize("cnf", UNSAT_CNFS)
    def test_phi_star_unsatisfiable(self, cnf):
        assert phi_star(cnf) == FOFalse()

    @pytest.mark.parametrize("cnf", SAT_CNFS + UNSAT_CNFS)
    def test_rewriting_equation_on_the_theorem_instance(self, cnf):
        """Equation (2): T_dagger, {A(a)} |= q_phi iff I_{A(a)} |= q'_phi."""
        tbox = dagger_tbox()
        abox = sat_abox()
        left = is_certain_answer(tbox, abox, sat_query(cnf), ())
        right = holds_single_constant(cnf, abox)
        assert left == right == is_satisfiable(cnf)

    @pytest.mark.parametrize("cnf", SAT_CNFS)
    def test_rewriting_is_false_without_the_a_atom(self, cnf):
        # a single constant but no A(a): the OMQ has no match and
        # neither does the rewriting
        abox = ABox.parse("B0(a)")
        assert not holds_single_constant(cnf, abox)

    def test_rewriting_size_is_constant_in_phi(self):
        small = fo_rewriting([[1]])
        large = fo_rewriting([[i, -(i + 1)] for i in range(1, 40)])
        # phi only enters through the one-bit phi*; the sizes agree
        assert small.size() == large.size()

    def test_multi_constant_guard(self):
        assert evaluate_fo(multi_constant_guard(), ABox.parse("A(a), A(b)"))
        assert not evaluate_fo(multi_constant_guard(), ABox.parse("A(a)"))

    def test_default_q_star_is_sound_on_two_constants(self):
        # with q* = false, the rewriting must never claim an answer on
        # multi-constant data (soundness of the default)
        abox = ABox.parse("A(a), A(b)")
        assert not evaluate_fo(fo_rewriting([[1]]), abox)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.lists(st.sampled_from([1, -1, 2, -2, 3, -3]),
                             min_size=1, max_size=3),
                    min_size=1, max_size=4))
    def test_property_equation_two_on_random_cnfs(self, cnf):
        tbox = dagger_tbox()
        abox = sat_abox()
        left = is_certain_answer(tbox, abox, sat_query(cnf), ())
        assert left == holds_single_constant(cnf, abox)
