"""Tests for the homomorphism search (repro.chase.homomorphism)."""

import pytest

from repro.chase import CanonicalModel, find_homomorphism, homomorphisms, individual
from repro.data import ABox
from repro.ontology import TBox
from repro.queries import CQ


@pytest.fixture
def example11():
    return TBox.parse("roles: P, R, S\nP <= S\nP <= R-")


class TestSearch:
    def test_simple_path(self, example11):
        model = CanonicalModel(example11, ABox.parse("R(a,b), R(b,c)"))
        query = CQ.parse("R(x, y), R(y, z)")
        hom = find_homomorphism(model, query)
        assert hom is not None
        assert hom["x"] == individual("a")
        assert hom["z"] == individual("c")

    def test_no_match(self, example11):
        model = CanonicalModel(example11, ABox.parse("R(a,b)"))
        assert find_homomorphism(model, CQ.parse("S(x, y)")) is None

    def test_fixed_assignment_respected(self, example11):
        model = CanonicalModel(example11, ABox.parse("R(a,b), R(c,d)"))
        query = CQ.parse("R(x, y)")
        hom = find_homomorphism(model, query,
                                fixed={"x": individual("c")})
        assert hom is not None and hom["y"] == individual("d")

    def test_fixed_assignment_can_fail(self, example11):
        model = CanonicalModel(example11, ABox.parse("R(a,b)"))
        query = CQ.parse("R(x, y)")
        assert find_homomorphism(model, query,
                                 fixed={"x": individual("b")}) is None

    def test_all_homomorphisms_enumerated(self, example11):
        model = CanonicalModel(example11, ABox.parse("R(a,b), R(a,c)"))
        query = CQ.parse("R(x, y)")
        images = {hom["y"] for hom in homomorphisms(model, query)}
        assert images >= {individual("b"), individual("c")}

    def test_match_into_anonymous_part(self, example11):
        model = CanonicalModel(example11, ABox.parse("A_P(a)"))
        query = CQ.parse("P(x, y), S(x, y), R(y, x)")
        hom = find_homomorphism(model, query)
        assert hom is not None
        assert hom["x"] == individual("a")
        assert hom["y"][1]  # a labelled null

    def test_self_loop_query(self):
        tbox = TBox.parse("roles: W\nrefl(W)")
        model = CanonicalModel(tbox, ABox.parse("A(a)"))
        assert find_homomorphism(model, CQ.parse("W(x, x)")) is not None

    def test_unary_atoms_filter(self, example11):
        model = CanonicalModel(example11, ABox.parse("R(a,b), A_P(b)"))
        query = CQ.parse("R(x, y), A_P(y)")
        hom = find_homomorphism(model, query)
        assert hom is not None and hom["y"] == individual("b")

    def test_disconnected_query(self, example11):
        model = CanonicalModel(example11, ABox.parse("R(a,b), S(c,d)"))
        query = CQ.parse("R(x, y), S(u, v)")
        assert find_homomorphism(model, query) is not None

    def test_cyclic_query(self, example11):
        model = CanonicalModel(example11,
                               ABox.parse("R(a,b), R(b,c), R(c,a)"))
        query = CQ.parse("R(x, y), R(y, z), R(z, x)")
        assert find_homomorphism(model, query) is not None
        model2 = CanonicalModel(example11, ABox.parse("R(a,b), R(b,c)"))
        assert find_homomorphism(model2, query) is None
