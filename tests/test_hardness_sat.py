"""End-to-end tests for the Theorem 17 SAT gadget (fixed ontology
T_dagger) and the Theorem 20 machinery of Appendix C.2."""

import math

import pytest

from repro.chase import certain_answers
from repro.hardness import (
    dagger_tbox,
    dpll,
    is_satisfiable,
    monotone_function,
    sat_omq,
    sat_query,
    sat_query_bar,
    tree_abox,
)
from repro.rewriting import OMQ, answer


class TestDpll:
    @pytest.mark.parametrize("cnf,expected", [
        ([[1]], True),
        ([[1], [-1]], False),
        ([[1, 2], [-1]], True),
        ([[1, 2], [-1, 2], [1, -2], [-1, -2]], False),
        ([[1, 2, 3], [-1, -2], [-2, -3], [-1, -3]], True),
        ([], True),
    ])
    def test_solver(self, cnf, expected):
        assert is_satisfiable(cnf) == expected

    def test_model_satisfies(self):
        cnf = [[1, -2], [2, 3], [-1, -3]]
        model = dpll(cnf)
        assert model is not None
        for clause in cnf:
            assert any(model.get(abs(lit), False) == (lit > 0)
                       for lit in clause)


class TestGadgetStructure:
    def test_dagger_has_infinite_depth(self):
        assert dagger_tbox().depth() is math.inf

    def test_query_is_tree_shaped_star(self):
        query = sat_query([[1, 2], [-1]])
        assert query.is_tree_shaped
        assert query.is_boolean

    def test_fixed_ontology_reused(self):
        # the ontology does not depend on the formula (Theorem 17's point)
        t1, _, _ = sat_omq([[1]])
        t2, _, _ = sat_omq([[1, 2], [-2]])
        assert str(t1) == str(t2)


class TestReduction:
    @pytest.mark.parametrize("cnf", [
        [[1]],
        [[1], [-1]],
        [[1, 2], [-1]],
        [[1, -2], [2]],
        [[1, 2], [-1, 2], [1, -2], [-1, -2]],
    ])
    def test_oracle_equals_sat(self, cnf):
        tbox, query, abox = sat_omq(cnf)
        expected = is_satisfiable(cnf)
        got = bool(certain_answers(tbox, abox, query))
        assert got == expected

    @pytest.mark.parametrize("cnf", [[[1]], [[1], [-1]], [[1, 2], [-1]]])
    def test_tw_rewriting_decides_sat(self, cnf):
        # the Tw rewriter handles OMQ(inf, 1, l), so it decides SAT here
        tbox, query, abox = sat_omq(cnf)
        got = bool(answer(OMQ(tbox, query), abox, method="tw").answers)
        assert got == is_satisfiable(cnf)


class TestTheorem20:
    def test_tree_abox_shape(self):
        abox = tree_abox([1, 0, 0, 1])
        assert len(abox.binary("Pm")) == 3
        assert len(abox.binary("Pp")) == 3
        assert len(abox.unary("B0")) == 2

    def test_tree_abox_requires_power_of_two(self):
        with pytest.raises(ValueError):
            tree_abox([1, 0, 1])

    def test_monotone_function(self):
        cnf = [[1], [-1]]
        assert not monotone_function(cnf, [0, 0])   # both clauses: unsat
        assert monotone_function(cnf, [1, 0])       # drop first: sat
        assert monotone_function(cnf, [0, 1])
        assert monotone_function(cnf, [1, 1])

    def test_lemma26_on_trees(self):
        # T_dagger, A_m^alpha |= q_bar(t) iff f_phi(alpha) = 1
        cnf = [[1], [-1]]
        query = sat_query_bar(cnf)
        tbox = dagger_tbox()
        for alpha in ([0, 0], [1, 0], [0, 1], [1, 1]):
            abox = tree_abox(alpha)
            expected = monotone_function(cnf, alpha)
            got = ("t",) in certain_answers(tbox, abox, query)
            assert got == expected, f"alpha={alpha}"
