"""Update correctness: incremental insert/delete must be observationally
identical to a from-scratch load of the final ABox.

Covers the three layers: :class:`~repro.engine.database.Database` delta
maintenance (indexes, interning, ``__adom__``),
:meth:`AnswerSession.apply_update` (completion deltas, backend
patching), and the property-style random-sequence test over
:class:`OMQService` demanded by the PR issue — random insert/delete
sequences, answers compared against a fresh session on the final ABox,
across all three engines.
"""

import random

import pytest

from repro import ABox, CQ, OMQ, TBox, chain_cq
from repro.datalog.program import ADOM
from repro.engine import Database, available_engines
from repro.rewriting import AnswerSession
from repro.service import OMQService
from repro.service.updates import (
    completed_delete_delta,
    completed_insert_delta,
)

from .helpers import engine_params, example11_tbox, random_data


def _snapshot(abox: ABox) -> ABox:
    return ABox(abox.atoms())


# -- ABox.discard -----------------------------------------------------------


class TestABoxDiscard:
    def test_discard_removes_atom_and_orphaned_individuals(self):
        abox = ABox.parse("R(a,b), A(b)")
        assert abox.discard("R", "a", "b")
        assert ("R", ("a", "b")) not in abox
        assert abox.individuals == frozenset({"b"})

    def test_discard_keeps_shared_individuals(self):
        abox = ABox.parse("R(a,b), A(a)")
        abox.discard("R", "a", "b")
        assert abox.individuals == frozenset({"a"})

    def test_discard_absent_atom_is_noop(self):
        abox = ABox.parse("A(a)")
        assert not abox.discard("A", "b")
        assert not abox.discard("R", "a", "b")
        assert len(abox) == 1

    def test_discarded_abox_equals_fresh_parse(self):
        abox = ABox.parse("R(a,b), R(b,c), A(a)")
        abox.discard("R", "a", "b")
        fresh = ABox.parse("R(b,c), A(a)")
        assert set(abox.atoms()) == set(fresh.atoms())
        assert abox.individuals == fresh.individuals
        assert abox.binary_predicates == fresh.binary_predicates


# -- Database deltas --------------------------------------------------------


class TestDatabaseDeltas:
    def test_insert_maintains_existing_indexes(self):
        db = Database(ABox.parse("R(a,b), R(a,c)"))
        index = db.index("R", (0,))
        assert len(index[db.intern("a")]) == 2
        added = db.insert_facts({"R": [("a", "d"), ("e", "f")]})
        assert added == 2
        # the same index object was extended in place, not rebuilt
        assert db.index("R", (0,)) is index
        assert len(index[db.intern("a")]) == 3
        assert len(index[db.intern("e")]) == 1

    def test_insert_interns_new_constants_into_adom(self):
        db = Database(ABox.parse("A(a)"))
        db.insert_facts({"R": [("a", "b")]})
        assert db.decode_rows(db.relation(ADOM)) == {("a",), ("b",)}
        assert db.decode_rows(db.relation("R")) == {("a", "b")}

    def test_duplicate_insert_ignored(self):
        db = Database(ABox.parse("R(a,b)"))
        assert db.insert_facts({"R": [("a", "b")]}) == 0
        assert len(db.relation("R")) == 1

    def test_delete_invalidates_only_touched_indexes(self):
        db = Database(ABox.parse("R(a,b), S(a,c)"))
        r_index = db.index("R", (0,))
        s_index = db.index("S", (0,))
        removed = db.delete_facts({"R": [("a", "b")]})
        assert removed == 1
        assert db.index("S", (0,)) is s_index
        assert db.index("R", (0,)) is not r_index
        assert db.index("R", (0,)) == {}

    def test_delete_unknown_rows_ignored(self):
        db = Database(ABox.parse("R(a,b)"))
        assert db.delete_facts({"R": [("x", "y")], "T": [("a",)]}) == 0

    def test_delete_removes_constants_from_adom(self):
        db = Database(ABox.parse("R(a,b), A(a)"))
        db.delete_facts({"R": [("a", "b")]}, removed_constants=["b"])
        assert db.decode_rows(db.relation(ADOM)) == {("a",)}

    def test_updated_database_matches_fresh_load(self):
        db = Database(ABox.parse("R(a,b), R(b,c), A(a)"))
        db.index("R", (0,))
        db.index("R", (1,))
        db.delete_facts({"A": [("a",)]})
        db.insert_facts({"R": [("c", "d")], "B": [("d",)]})
        fresh = Database(ABox.parse("R(a,b), R(b,c), R(c,d), B(d)"))
        for predicate in ("R", "A", "B", ADOM):
            assert (db.decode_rows(db.relation(predicate))
                    == fresh.decode_rows(fresh.relation(predicate)))
        # indexes agree after decoding (interning orders differ)
        for positions in ((0,), (1,)):
            mine = {db.decode(key): db.decode_rows(rows)
                    for key, rows in db.index("R", positions).items()}
            theirs = {fresh.decode(key): fresh.decode_rows(rows)
                      for key, rows in fresh.index("R", positions).items()}
            assert mine == theirs


# -- completion deltas ------------------------------------------------------


class TestCompletionDeltas:
    def test_insert_delta_is_completion_of_delta(self):
        tbox = example11_tbox()
        base = ABox.parse("R(a,b)")
        completed = base.complete(tbox)
        inserted = [("P", ("c", "d"))]
        delta = completed_insert_delta(tbox, completed, inserted)
        merged = _snapshot(completed)
        for predicate, args in delta:
            merged.add(predicate, *args)
        expected = ABox.parse("R(a,b), P(c,d)").complete(tbox)
        assert set(merged.atoms()) == set(expected.atoms())

    def test_delete_keeps_rederivable_atoms(self):
        # P <= S: deleting the asserted S(a,b) keeps the entailed copy
        tbox = example11_tbox()
        raw = ABox.parse("P(a,b), S(a,b)")
        completed = raw.complete(tbox)
        raw.discard("S", "a", "b")
        delta = completed_delete_delta(tbox, raw, completed,
                                       [("S", ("a", "b"))])
        assert delta == []

    def test_delete_removes_unsupported_entailments(self):
        tbox = example11_tbox()
        raw = ABox.parse("P(a,b), A(a)")
        completed = raw.complete(tbox)
        assert ("S", ("a", "b")) in completed
        raw.discard("P", "a", "b")
        delta = completed_delete_delta(tbox, raw, completed,
                                       [("P", ("a", "b"))])
        removed = set(delta)
        assert ("S", ("a", "b")) in removed
        assert ("P", ("a", "b")) in removed
        # 'a' is still an individual via A(a); its concept memberships
        # derived from P(a,b) must go, A(a) itself must stay
        assert ("A", ("a",)) not in removed

    def test_reflexive_role_tracks_individuals(self):
        tbox = TBox.parse("roles: P\nrefl(P)")
        raw = ABox.parse("A(a), B(b)")
        completed = raw.complete(tbox)
        assert ("P", ("a", "a")) in completed
        raw.discard("A", "a")
        delta = completed_delete_delta(tbox, raw, completed,
                                       [("A", ("a",))])
        assert ("P", ("a", "a")) in set(delta)
        assert ("P", ("b", "b")) not in set(delta)


# -- AnswerSession.apply_update --------------------------------------------


class TestSessionUpdate:
    @pytest.mark.parametrize("engine", engine_params())
    def test_update_matches_fresh_session(self, engine):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RS"))
        abox = random_data(21)
        with AnswerSession(abox, engine=engine) as session:
            session.answer(omq)          # load before updating
            session.apply_update(
                inserts=[("R", ("fresh0", "fresh1")),
                         ("S", ("fresh1", "fresh2")),
                         ("A_P", ("fresh2",))],
                deletes=list(abox.atoms())[:3])
            updated = session.answer(omq).answers
            perfectref = session.answer(omq, method="perfectref").answers
        with AnswerSession(_snapshot(abox), engine=engine) as fresh:
            assert fresh.answer(omq).answers == updated
            assert (fresh.answer(omq, method="perfectref").answers
                    == perfectref)

    def test_update_before_load_is_fine(self):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RS"))
        abox = random_data(22)
        with AnswerSession(abox) as session:
            result = session.insert_facts([("R", ("u0", "u1")),
                                           ("S", ("u1", "u2"))])
            assert result.backends_updated == 0
            answers = session.answer(omq).answers
        with AnswerSession(_snapshot(abox)) as fresh:
            assert fresh.answer(omq).answers == answers

    def test_extra_relation_constants_stay_in_adom(self):
        from repro.datalog import Clause, Literal, NDLQuery, Program

        abox = ABox.parse("R(a,b)")
        extras = {"X": [("a",)]}
        # G(x) :- X(x), __adom__(x): 'a' must stay answerable after the
        # last ABox atom naming it is deleted (X still references it)
        clauses = [Clause(Literal("G", ("x",)),
                          (Literal("X", ("x",)), Literal(ADOM, ("x",))))]
        goal = NDLQuery(Program(clauses), "G", ("x",))
        with AnswerSession(abox, extra_relations=extras) as session:
            backend = session.backend()
            assert backend.evaluate(goal).answers == {("a",)}
            session.delete_facts([("R", ("a", "b"))])
            assert backend.evaluate(goal).answers == {("a",)}

    def test_delete_then_reinsert_roundtrips(self):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RS"))
        abox = random_data(23)
        atom = next(iter(abox.atoms()))
        with AnswerSession(abox) as session:
            before = session.answer(omq).answers
            session.apply_update(deletes=[atom], inserts=[atom])
            assert session.answer(omq).answers == before


# -- the service-level property test ---------------------------------------


_UNIVERSE = [f"n{i}" for i in range(8)]
_UNARY = ("A", "B", "A_P", "A_P-")
_BINARY = ("P", "R", "S")


def _random_atom(rng):
    if rng.random() < 0.3:
        return (rng.choice(_UNARY), (rng.choice(_UNIVERSE),))
    return (rng.choice(_BINARY),
            (rng.choice(_UNIVERSE), rng.choice(_UNIVERSE)))


class TestServicePropertyUpdates:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_sequences_match_fresh_session(self, seed):
        rng = random.Random(seed)
        tbox = example11_tbox()
        queries = [chain_cq("RS"), chain_cq("SR"),
                   CQ.parse("R(x,y), S(y,z), R(z,w)",
                            answer_vars=["x", "w"]),
                   CQ.parse("S(x,y)", answer_vars=["x"])]
        abox = random_data(seed, individuals=6, atoms=14,
                           unary=_UNARY, binary=_BINARY)
        mirror = _snapshot(abox)
        with OMQService(max_workers=2) as service:
            service.register_dataset("data", abox)
            # touch every engine so all backends are loaded and must be
            # patched (not rebuilt) by the updates below
            for engine in available_engines():
                service.answer("data", OMQ(tbox, queries[0]),
                               engine=engine)
            for _ in range(10):
                atoms = [_random_atom(rng)
                         for _ in range(rng.randint(1, 3))]
                if rng.random() < 0.5:
                    service.insert_facts("data", atoms)
                    for predicate, args in atoms:
                        mirror.add(predicate, *args)
                else:
                    service.delete_facts("data", atoms)
                    for predicate, args in atoms:
                        mirror.discard(predicate, *args)
                # cheap intermediate check on the native engine
                omq = OMQ(tbox, rng.choice(queries))
                with AnswerSession(_snapshot(mirror)) as fresh:
                    assert (service.answer("data", omq).answers
                            == fresh.answer(omq).answers)
            # final ABox: all queries, all engines, plus perfectref
            # over the raw (uncompleted) variant
            with AnswerSession(_snapshot(mirror)) as fresh:
                for query in queries:
                    omq = OMQ(tbox, query)
                    expected = fresh.answer(omq).answers
                    for engine in available_engines():
                        got = service.answer("data", omq, engine=engine)
                        assert got.answers == expected, (
                            f"engine {engine} diverged after updates "
                            f"(seed {seed}) for {query}")
                    assert (service.answer(
                        "data", omq, method="perfectref").answers
                        == fresh.answer(omq, method="perfectref").answers)

    def test_update_counts_reported(self):
        with OMQService() as service:
            service.register_dataset("data", ABox.parse("R(a,b)"))
            service.answer("data",
                           OMQ(example11_tbox(), chain_cq("RS")))
            result = service.insert_facts(
                "data", [("P", ("a", "c")), ("R", ("a", "b"))])
            assert result.inserted == 1          # R(a,b) already present
            assert result.completion_inserted >= 1   # P <= S, P <= R-
            assert result.backends_updated >= 1
            result = service.delete_facts("data", [("P", ("a", "c"))])
            assert result.deleted == 1
