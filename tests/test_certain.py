"""Tests for repro.chase.certain (the certain-answer oracle)."""

import pytest

from repro.chase import certain_answers, is_certain_answer
from repro.data import ABox
from repro.ontology import TBox
from repro.queries import CQ


@pytest.fixture
def example11():
    return TBox.parse("roles: P, R, S\nP <= S\nP <= R-")


class TestAnchoredAnswers:
    def test_direct_match(self, example11):
        abox = ABox.parse("R(a, b)")
        query = CQ.parse("R(x, y)", answer_vars=["x", "y"])
        assert certain_answers(example11, abox, query) == {("a", "b")}

    def test_entailed_match(self, example11):
        abox = ABox.parse("P(a, b)")
        query = CQ.parse("S(x, y)", answer_vars=["x", "y"])
        assert certain_answers(example11, abox, query) == {("a", "b")}

    def test_match_through_witness(self, example11):
        # A_P-(a): some w with P(w, a), so S(w, a) and R(a, w)
        abox = ABox.parse("A_P-(a)")
        query = CQ.parse("R(x, y), S(y, x)", answer_vars=["x"])
        assert certain_answers(example11, abox, query) == {("a",)}

    def test_answer_vars_must_hit_individuals(self, example11):
        abox = ABox.parse("A_P(a)")
        query = CQ.parse("P(x, y)", answer_vars=["x", "y"])
        # the P-successor of a is anonymous: no certain answer for y
        assert certain_answers(example11, abox, query) == frozenset()

    def test_is_certain_answer(self, example11):
        abox = ABox.parse("P(a, b)")
        query = CQ.parse("S(x, y)", answer_vars=["x", "y"])
        assert is_certain_answer(example11, abox, query, ("a", "b"))
        assert not is_certain_answer(example11, abox, query, ("b", "a"))

    def test_unknown_constant_rejected(self, example11):
        abox = ABox.parse("P(a, b)")
        query = CQ.parse("S(x, y)", answer_vars=["x", "y"])
        assert not is_certain_answer(example11, abox, query, ("a", "zz"))

    def test_arity_mismatch_raises(self, example11):
        query = CQ.parse("S(x, y)", answer_vars=["x", "y"])
        with pytest.raises(ValueError):
            is_certain_answer(example11, ABox.parse("P(a, b)"), query,
                              ("a",))


class TestBooleanAnswers:
    def test_boolean_yes(self, example11):
        abox = ABox.parse("P(a, b)")
        query = CQ.parse("S(x, y)")
        assert certain_answers(example11, abox, query) == {()}

    def test_boolean_no(self, example11):
        abox = ABox.parse("R(a, b)")
        query = CQ.parse("P(x, y)")
        assert certain_answers(example11, abox, query) == frozenset()

    def test_anonymous_match_in_infinite_tree(self):
        # B <= EP, EP- <= B: infinitely many anonymous B-nodes
        tbox = TBox.parse("roles: P\nB <= EP\nEP- <= B")
        abox = ABox.parse("B(a)")
        query = CQ.parse("P(x, y), P(y, z)")
        assert certain_answers(tbox, abox, query) == {()}

    def test_anonymous_unary_match_deep(self):
        # the C-node appears only at depth 3 of the anonymous tree
        tbox = TBox.parse(
            "roles: P, Q, W\nA <= EP\nEP- <= EQ\nEQ- <= EW\nEW- <= C")
        abox = ABox.parse("A(a)")
        query = CQ.parse("C(x)")
        assert certain_answers(tbox, abox, query) == {()}

    def test_disconnected_query_combines_components(self, example11):
        abox = ABox.parse("P(a, b), R(c, d)")
        query = CQ.parse("S(x, y), R(u, v)", answer_vars=["x", "u"])
        # u = c from the data and u = b from the entailed R(b, a)
        assert certain_answers(example11, abox, query) == {
            ("a", "c"), ("a", "b")}

    def test_disconnected_boolean_component_fails_all(self, example11):
        abox = ABox.parse("R(a, b)")
        query = CQ.parse("R(x, y), P(u, v)", answer_vars=["x"])
        assert certain_answers(example11, abox, query) == frozenset()

    def test_empty_data_no_answers(self, example11):
        query = CQ.parse("R(x, y)", answer_vars=["x"])
        assert certain_answers(example11, ABox(), query) == frozenset()
