"""Tests for repro.datalog.program."""

import pytest

from repro.datalog import ADOM, Clause, Equality, Literal, NDLQuery, Program


def clause(head, *body):
    return Clause(head, tuple(body))


class TestProgramStructure:
    def test_idb_edb_split(self):
        program = Program([
            clause(Literal("G", ("x",)), Literal("R", ("x", "y")),
                   Literal("Q", ("y",))),
            clause(Literal("Q", ("x",)), Literal("A", ("x",))),
        ])
        assert program.idb_predicates == {"G", "Q"}
        assert program.edb_predicates == {"R", "A"}

    def test_recursion_rejected(self):
        with pytest.raises(ValueError):
            Program([
                clause(Literal("P", ("x",)), Literal("Q", ("x",))),
                clause(Literal("Q", ("x",)), Literal("P", ("x",))),
            ])

    def test_self_recursion_rejected(self):
        with pytest.raises(ValueError):
            Program([clause(Literal("P", ("x",)),
                            Literal("P", ("x",)))])

    def test_topological_order(self):
        program = Program([
            clause(Literal("G", ("x",)), Literal("Q", ("x",))),
            clause(Literal("Q", ("x",)), Literal("P", ("x",))),
            clause(Literal("P", ("x",)), Literal("E", ("x",))),
        ])
        order = program.topological_order()
        assert order.index("P") < order.index("Q") < order.index("G")

    def test_depth(self):
        program = Program([
            clause(Literal("G", ("x",)), Literal("Q", ("x",))),
            clause(Literal("Q", ("x",)), Literal("P", ("x",))),
            clause(Literal("P", ("x",)), Literal("E", ("x",))),
        ])
        assert program.depth("G") == 2
        assert program.depth("P") == 0

    def test_restrict_to_goal(self):
        program = Program([
            clause(Literal("G", ("x",)), Literal("Q", ("x",))),
            clause(Literal("Q", ("x",)), Literal("E", ("x",))),
            clause(Literal("Orphan", ("x",)), Literal("E", ("x",))),
        ])
        restricted = program.restrict_to("G")
        assert restricted.idb_predicates == {"G", "Q"}


class TestRangeRestriction:
    def test_unbound_head_var_gets_adom(self):
        program = Program([clause(Literal("G", ("x", "y")),
                                  Literal("R", ("x", "z")))])
        (emitted,) = program.clauses
        assert Literal(ADOM, ("y",)) in emitted.body_literals

    def test_equality_propagates_boundness(self):
        program = Program([clause(Literal("G", ("x", "y")),
                                  Literal("R", ("x", "z")),
                                  Equality("z", "y"))])
        (emitted,) = program.clauses
        assert Literal(ADOM, ("y",)) not in emitted.body_literals

    def test_pure_equality_clause(self):
        program = Program([clause(Literal("G", ("x", "y")),
                                  Equality("x", "y"))])
        (emitted,) = program.clauses
        assert len(emitted.body_literals) >= 1  # adom added


class TestEqualityNormalisation:
    def test_equalities_removed(self):
        program = Program([clause(Literal("G", ("x", "y")),
                                  Literal("R", ("x", "z")),
                                  Equality("z", "y"))])
        normalised = program.normalize_equalities()
        for emitted in normalised.clauses:
            assert not emitted.body_equalities

    def test_head_variable_preferred(self):
        program = Program([clause(Literal("G", ("x", "y")),
                                  Literal("R", ("x", "z")),
                                  Equality("z", "y"))])
        normalised = program.normalize_equalities()
        (emitted,) = normalised.clauses
        assert emitted.head == Literal("G", ("x", "y"))
        assert Literal("R", ("x", "y")) in emitted.body_literals


class TestNDLQuery:
    def test_width_excludes_parameters(self):
        program = Program([clause(Literal("G", ("x", "p")),
                                  Literal("R", ("x", "y")),
                                  Literal("S", ("y", "p")))])
        query = NDLQuery(program, "G", ("p",))
        assert query.width() == 2  # x and y

    def test_len_is_clause_count(self):
        program = Program([clause(Literal("G", ("x",)),
                                  Literal("R", ("x", "y")))])
        assert len(NDLQuery(program, "G", ("x",))) == 1

    def test_symbol_size_positive(self):
        program = Program([clause(Literal("G", ("x",)),
                                  Literal("R", ("x", "y")))])
        assert program.symbol_size() > 0
