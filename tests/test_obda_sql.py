"""End-to-end virtual OBDA over a relational source on the SQL backend.

The classical OBDA deployment of Section 1: a relational database, a
GAV mapping into the ontology vocabulary, an NDL rewriting unfolded
through the mapping — evaluated directly on the source tables in
SQLite, with no materialisation of ``M(D)``.  Must agree with the
materialise-``M(D)``-then-answer pipeline and with the chase oracle.
"""

import pytest

from repro import CQ, OMQ, TBox, certain_answers, rewrite
from repro.obda.mapping import Database, Mapping
from repro.sql import evaluate_sql


@pytest.fixture(scope="module")
def hr_setting():
    tbox = TBox.parse("""
        roles: worksFor, manages
        manages <= worksFor
        Manager <= Employee
        Manager <= Emanages
        Employee <= EworksFor
    """)
    mapping = Mapping()
    # emp(id, dept, role): one wide source table feeding three targets
    mapping.add("Employee", ["e"], [("emp", ["e", "d", "r"])])
    mapping.add("worksFor", ["e", "d"], [("emp", ["e", "d", "r"])])
    mapping.add("Manager", ["e"], [("mgr", ["e", "d"])])
    mapping.add("manages", ["e", "d"], [("mgr", ["e", "d"])])
    database = Database()
    database.add("emp", "ann", "sales", "rep")
    database.add("emp", "bob", "sales", "rep")
    database.add("mgr", "carla", "sales")
    return tbox, mapping, database


class TestUnfoldedRewritingOnSql:
    def test_source_evaluation_matches_materialised(self, hr_setting):
        tbox, mapping, database = hr_setting
        query = CQ.parse("worksFor(x, d)", answer_vars=["x"])
        ndl = rewrite(OMQ(tbox, query), method="tw", over="arbitrary")
        unfolded = mapping.unfold(ndl)
        extra = {relation: set(database.rows(relation))
                 for relation in database.relations}
        sql_result = evaluate_sql(unfolded, _empty_abox(),
                                  extra_relations=extra)
        materialised = mapping.apply(database)
        expected = frozenset(certain_answers(tbox, materialised, query))
        assert sql_result.answers == expected
        # managers work for their department only via manages <= worksFor
        assert ("carla",) in sql_result.answers

    def test_boolean_query_over_source(self, hr_setting):
        tbox, mapping, database = hr_setting
        query = CQ.parse("manages(x, y), worksFor(z, y)")
        ndl = rewrite(OMQ(tbox, query), method="tw", over="arbitrary")
        unfolded = mapping.unfold(ndl)
        extra = {relation: set(database.rows(relation))
                 for relation in database.relations}
        result = evaluate_sql(unfolded, _empty_abox(),
                              extra_relations=extra)
        assert result.answers == {()}

    def test_empty_source(self, hr_setting):
        tbox, mapping, _ = hr_setting
        query = CQ.parse("worksFor(x, d)", answer_vars=["x"])
        ndl = rewrite(OMQ(tbox, query), method="tw", over="arbitrary")
        unfolded = mapping.unfold(ndl)
        result = evaluate_sql(unfolded, _empty_abox(),
                              extra_relations={"emp": set(), "mgr": set()})
        assert result.answers == frozenset()

    def test_anonymous_witnesses_from_the_source(self, hr_setting):
        # Manager <= Emanages: a manager with no recorded department
        # still certainly worksFor *something*, but that something is
        # anonymous, so it cannot surface as an answer — while the
        # Boolean query must hold
        tbox, mapping, _ = hr_setting
        database = Database()
        database.add("emp", "dana", "it", "rep")
        boolean = CQ.parse("worksFor(x, y)")
        ndl = rewrite(OMQ(tbox, boolean), method="tw", over="arbitrary")
        unfolded = mapping.unfold(ndl)
        extra = {relation: set(database.rows(relation))
                 for relation in database.relations}
        assert evaluate_sql(unfolded, _empty_abox(),
                            extra_relations=extra).answers == {()}


def _empty_abox():
    from repro import ABox

    return ABox()
