"""Tests for the NDL optimiser (repro.datalog.optimize): emptiness
pruning [59], duplicate removal and the generalised Tw* inlining of
Appendix D.4.  Every transformation must preserve answers."""

import pytest
from hypothesis import given, settings

from repro import ABox, OMQ, chain_cq, rewrite
from repro.datalog.evaluate import evaluate
from repro.datalog.optimize import (
    inline_single_definition,
    nonempty_signature,
    optimize,
    prune_empty_predicates,
    remove_duplicate_clauses,
)
from repro.datalog.program import ADOM, Clause, Equality, Literal, NDLQuery, Program

from .helpers import example11_tbox
from .test_sql import _random_abox, _random_query


def _query(clauses, goal, answer_vars=()):
    return NDLQuery(Program(clauses), goal, tuple(answer_vars))


class TestNonemptySignature:
    def test_lists_data_predicates(self):
        abox = ABox.parse("A(a), P(a, b)")
        names = nonempty_signature(abox)
        assert "A" in names and "P" in names

    def test_adom_included_when_data_nonempty(self):
        assert ADOM in nonempty_signature(ABox.parse("A(a)"))

    def test_adom_excluded_for_empty_data(self):
        assert ADOM not in nonempty_signature(ABox())


class TestPruneEmpty:
    def test_clause_over_empty_edb_is_dropped(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("A", ("x",)),)),
             Clause(Literal("G", ("x",)), (Literal("Dead", ("x",)),))],
            "G", ("x",))
        pruned = prune_empty_predicates(query, {"A"})
        assert len(pruned.program) == 1
        assert pruned.program.clauses[0].body_literals[0].predicate == "A"

    def test_emptiness_propagates_through_idbs(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("Q", ("x",)),)),
             Clause(Literal("Q", ("x",)), (Literal("Dead", ("x",)),))],
            "G", ("x",))
        pruned = prune_empty_predicates(query, {"A"})
        assert len(pruned.program) == 0

    def test_goal_can_become_empty(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("Dead", ("x",)),))],
            "G", ("x",))
        pruned = prune_empty_predicates(query, set())
        assert evaluate(pruned, ABox.parse("A(a)")).answers == frozenset()

    def test_answers_preserved_on_matching_signature(self):
        tbox = example11_tbox()
        query = chain_cq("RSR")
        abox = ABox.parse("R(a,b), S(b,c), R(c,d)").complete(tbox)
        ndl = rewrite(OMQ(tbox, query), method="lin")
        pruned = prune_empty_predicates(ndl, nonempty_signature(abox))
        assert evaluate(pruned, abox).answers == evaluate(ndl, abox).answers

    def test_prunes_the_paper_s_empty_s_scenario(self):
        # Appendix D.2: the generated datasets intentionally have no
        # S-edges, which should kill every clause that joins S
        tbox = example11_tbox()
        query = chain_cq("RSR")
        abox = ABox.parse("R(a,b), R(b,c), A_P(b)").complete(tbox)
        ndl = rewrite(OMQ(tbox, query), method="ucq")
        pruned = prune_empty_predicates(ndl, nonempty_signature(abox))
        assert len(pruned.program) < len(ndl.program)
        assert evaluate(pruned, abox).answers == evaluate(ndl, abox).answers


class TestRemoveDuplicates:
    def test_renamed_duplicate_is_removed(self):
        query = _query(
            [Clause(Literal("G", ("x",)),
                    (Literal("R", ("x", "y")), Literal("A", ("y",)))),
             Clause(Literal("G", ("u",)),
                    (Literal("R", ("u", "v")), Literal("A", ("v",))))],
            "G", ("x",))
        deduped = remove_duplicate_clauses(query)
        assert len(deduped.program) == 1

    def test_body_order_is_ignored(self):
        query = _query(
            [Clause(Literal("G", ("x",)),
                    (Literal("A", ("x",)), Literal("B", ("x",)))),
             Clause(Literal("G", ("x",)),
                    (Literal("B", ("x",)), Literal("A", ("x",))))],
            "G", ("x",))
        assert len(remove_duplicate_clauses(query).program) == 1

    def test_different_clauses_are_kept(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("A", ("x",)),)),
             Clause(Literal("G", ("x",)), (Literal("B", ("x",)),))],
            "G", ("x",))
        assert len(remove_duplicate_clauses(query).program) == 2

    def test_equality_duplicates(self):
        query = _query(
            [Clause(Literal("G", ("x",)),
                    (Literal("R", ("x", "y")), Equality("x", "y"))),
             Clause(Literal("G", ("u",)),
                    (Literal("R", ("u", "v")), Equality("v", "u")))],
            "G", ("x",))
        assert len(remove_duplicate_clauses(query).program) == 1

    def test_repeated_variable_not_merged_with_distinct(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("R", ("x", "x")),)),
             Clause(Literal("G", ("x",)), (Literal("R", ("x", "y")),))],
            "G", ("x",))
        assert len(remove_duplicate_clauses(query).program) == 2


class TestInlining:
    def test_single_use_chain_collapses(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("Q1", ("x",)),)),
             Clause(Literal("Q1", ("x",)), (Literal("Q2", ("x",)),)),
             Clause(Literal("Q2", ("x",)), (Literal("A", ("x",)),))],
            "G", ("x",))
        inlined = inline_single_definition(query)
        assert len(inlined.program) == 1
        assert inlined.program.clauses[0].body_literals[0].predicate == "A"

    def test_goal_is_never_inlined(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("A", ("x",)),))],
            "G", ("x",))
        inlined = inline_single_definition(query)
        assert inlined.goal == "G"
        assert len(inlined.program) == 1

    def test_multi_clause_predicates_are_kept(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("Q", ("x",)),)),
             Clause(Literal("Q", ("x",)), (Literal("A", ("x",)),)),
             Clause(Literal("Q", ("x",)), (Literal("B", ("x",)),))],
            "G", ("x",))
        inlined = inline_single_definition(query)
        assert "Q" in inlined.program.idb_predicates

    def test_max_uses_threshold(self):
        clauses = [
            Clause(Literal("G", ("x",)),
                   (Literal("Q", ("x",)), Literal("B", ("x",)))),
            Clause(Literal("G", ("x",)),
                   (Literal("Q", ("x",)), Literal("C", ("x",)))),
            Clause(Literal("H", ("x",)), (Literal("Q", ("x",)),)),
            Clause(Literal("G", ("x",)), (Literal("H", ("x",)),)),
            Clause(Literal("Q", ("x",)), (Literal("A", ("x",)),)),
        ]
        query = _query(clauses, "G", ("x",))
        kept = inline_single_definition(query, max_uses=2)
        assert "Q" in kept.program.idb_predicates
        gone = inline_single_definition(query, max_uses=3)
        assert "Q" not in gone.program.idb_predicates

    def test_local_variables_are_freshened(self):
        query = _query(
            [Clause(Literal("G", ("x", "y")),
                    (Literal("Q", ("x",)), Literal("Q", ("y",)))),
             Clause(Literal("Q", ("x",)), (Literal("R", ("x", "w")),))],
            "G", ("x", "y"))
        inlined = inline_single_definition(query)
        clause = inlined.program.clauses[0]
        body_vars = {v for atom in clause.body_literals for v in atom.args}
        # the two copies of w must not be identified
        witnesses = body_vars - {"x", "y"}
        assert len(witnesses) == 2
        abox = ABox.parse("R(a, b), R(c, d)")
        assert evaluate(inlined, abox).answers == evaluate(query, abox).answers

    def test_answers_preserved_on_rewriter_output(self):
        tbox = example11_tbox()
        query = chain_cq("RSRRSRR")
        abox = ABox.parse(
            "R(a,b), S(b,c), R(c,d), R(d,e), S(e,f), R(f,g), R(g,h), "
            "A_P(c)").complete(tbox)
        ndl = rewrite(OMQ(tbox, query), method="tw")
        inlined = inline_single_definition(ndl)
        assert evaluate(inlined, abox).answers == evaluate(ndl, abox).answers


class TestPipeline:
    @pytest.mark.parametrize("method", ("lin", "log", "tw", "presto"))
    def test_optimize_preserves_answers(self, method):
        tbox = example11_tbox()
        query = chain_cq("RSRRSRR")
        abox = ABox.parse(
            "R(a,b), S(b,c), R(c,d), R(d,e), S(e,f), R(f,g), R(g,h), "
            "A_P(c), A_P-(f)").complete(tbox)
        ndl = rewrite(OMQ(tbox, query), method=method)
        optimized = optimize(ndl, abox)
        assert evaluate(optimized, abox).answers == evaluate(ndl, abox).answers

    def test_optimize_shrinks_on_sparse_data(self):
        tbox = example11_tbox()
        query = chain_cq("RSRRSRR")
        # no S edges at all, as in the paper's generated datasets
        abox = ABox.parse("R(a,b), R(b,c), R(c,d), A_P(b)").complete(tbox)
        ndl = rewrite(OMQ(tbox, query), method="lin")
        optimized = optimize(ndl, abox)
        assert len(optimized.program) < len(ndl.program)
        assert evaluate(optimized, abox).answers == evaluate(ndl, abox).answers

    @settings(max_examples=40, deadline=None)
    @given(query=_random_query(), abox=_random_abox())
    def test_property_optimize_preserves_answers(self, query, abox):
        optimized = optimize(query, abox)
        assert evaluate(optimized, abox).answers == \
            evaluate(query, abox).answers

    @settings(max_examples=40, deadline=None)
    @given(query=_random_query(), abox=_random_abox())
    def test_property_inline_preserves_answers_on_any_data(self, query, abox):
        # inlining (unlike pruning) is data-independent
        inlined = inline_single_definition(query)
        assert evaluate(inlined, abox).answers == \
            evaluate(query, abox).answers
