"""Tests for the Lin rewriter (Section 3.3, Theorem 12)."""

import pytest

from repro.chase import certain_answers
from repro.datalog import evaluate, is_linear
from repro.queries import CQ, chain_cq
from repro.rewriting import lin_rewrite

from .helpers import deep_tbox, example11_tbox, infinite_tbox, random_data


class TestStructure:
    def test_output_is_linear(self):
        ndl = lin_rewrite(example11_tbox(), chain_cq("RSRR"))
        assert is_linear(ndl.program)

    def test_arbitrary_form_is_linear_too(self):
        ndl = lin_rewrite(example11_tbox(), chain_cq("RSR"),
                          over="arbitrary")
        assert is_linear(ndl.program)

    def test_width_bound(self):
        # Theorem 12: width <= 2 * leaves
        tbox = example11_tbox()
        for labels in ("R", "RS", "RSRRS"):
            query = chain_cq(labels)
            ndl = lin_rewrite(tbox, query)
            assert ndl.width() <= 2 * query.number_of_leaves

    def test_width_bound_star_query(self):
        tbox = example11_tbox()
        query = CQ.parse("R(c, x), S(c, y), R(c, z)", answer_vars=["c"])
        ndl = lin_rewrite(tbox, query)
        assert ndl.width() <= 2 * query.number_of_leaves

    def test_size_grows_linearly(self):
        tbox = example11_tbox()
        sizes = [len(lin_rewrite(tbox, chain_cq("RS" * n)))
                 for n in range(1, 6)]
        deltas = [b - a for a, b in zip(sizes, sizes[1:])]
        assert max(deltas) <= max(12, 2 * min(deltas) + 4)

    def test_rejects_non_tree(self):
        with pytest.raises(ValueError):
            lin_rewrite(example11_tbox(),
                        CQ.parse("R(x, y), R(y, z), R(z, x)"))

    def test_rejects_infinite_depth(self):
        with pytest.raises(ValueError):
            lin_rewrite(infinite_tbox(), chain_cq("RR"))


class TestCorrectness:
    @pytest.mark.parametrize("labels", ["R", "RS", "RSR", "RRSRS"])
    def test_matches_oracle_example11(self, labels):
        tbox = example11_tbox()
        query = chain_cq(labels)
        ndl = lin_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed, binary=("P", "R", "S"),
                               unary=("A_P", "A_P-", "A_S"))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    @pytest.mark.parametrize("labels", ["P", "RQ", "RQS"])
    def test_matches_oracle_deep_ontology(self, labels):
        tbox = deep_tbox()
        query = chain_cq(labels)
        ndl = lin_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed + 40)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_star_query(self):
        tbox = deep_tbox()
        query = CQ.parse("R(c, x), S(x, y), R(c, z)", answer_vars=["c"])
        ndl = lin_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed + 80)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_boolean_query(self):
        tbox = deep_tbox()
        query = CQ.parse("P(x, y), Q(y, z)")
        ndl = lin_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed + 120)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_unary_atoms_in_query(self):
        tbox = deep_tbox()
        query = CQ.parse("P(x, y), B(y)", answer_vars=["x"])
        ndl = lin_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed + 160)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_arbitrary_instance_form(self):
        tbox = example11_tbox()
        query = chain_cq("RSR")
        ndl = lin_rewrite(tbox, query, over="arbitrary")
        for seed in range(6):
            abox = random_data(seed + 200, binary=("P", "R", "S"),
                               unary=("A_P", "A_P-"))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox).answers
            assert got == expected, f"seed {seed}"

    def test_root_choice_does_not_matter(self):
        tbox = example11_tbox()
        query = chain_cq("RSR")
        abox = random_data(3, binary=("P", "R", "S"),
                           unary=("A_P", "A_P-")).complete(tbox)
        answers = set()
        for root in query.variables:
            ndl = lin_rewrite(tbox, query, root=root)
            answers.add(frozenset(evaluate(ndl, abox).answers))
        assert len(answers) == 1
