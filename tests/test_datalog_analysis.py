"""Tests for repro.datalog.analysis (Section 3.1 fragment notions)."""


from repro.datalog import (
    Clause,
    Literal,
    NDLQuery,
    Program,
    is_linear,
    is_skinny,
    max_edb_atoms,
    minimal_weight_function,
    skinny_depth,
)


def clause(head, *body):
    return Clause(head, tuple(body))


def example1_program():
    """Example 1 of the paper: linear, width 1."""
    return Program([
        clause(Literal("G", ("x",)), Literal("R", ("x", "y")),
               Literal("Q", ("x",))),
        clause(Literal("Q", ("x",)), Literal("R", ("y", "x"))),
    ])


class TestLinearity:
    def test_example1_is_linear(self):
        assert is_linear(example1_program())

    def test_two_idb_atoms_not_linear(self):
        program = Program([
            clause(Literal("G", ("x",)), Literal("Q", ("x",)),
                   Literal("P", ("x",))),
            clause(Literal("Q", ("x",)), Literal("E", ("x",))),
            clause(Literal("P", ("x",)), Literal("E", ("x",))),
        ])
        assert not is_linear(program)

    def test_example1_width(self):
        query = NDLQuery(example1_program(), "G", ("x",))
        assert query.width() == 1


class TestWeightFunction:
    def test_edb_weight_zero(self):
        nu = minimal_weight_function(example1_program())
        assert nu["R"] == 0

    def test_leaf_idb_weight_one(self):
        nu = minimal_weight_function(example1_program())
        assert nu["Q"] == 1
        assert nu["G"] == 1

    def test_binary_tree_weights_sum(self):
        # the "exponential" dependency pattern of Section 3.1.2
        clauses = []
        for level in range(3):
            clauses.append(clause(
                Literal(f"N{level}", ("x",)),
                Literal(f"N{level + 1}", ("x",)),
                Literal(f"N{level + 1}", ("x",))))
        clauses.append(clause(Literal("N3", ("x",)), Literal("E", ("x",))))
        program = Program(clauses)
        nu = minimal_weight_function(program)
        # each level doubles: nu(N3)=1, nu(N2)=2, nu(N1)=4, nu(N0)=8
        assert nu["N0"] == 8

    def test_weight_function_property(self):
        program = example1_program()
        nu = minimal_weight_function(program)
        for emitted in program.clauses:
            total = sum(nu.get(a.predicate, 0)
                        for a in emitted.body_literals)
            assert nu[emitted.head.predicate] >= total
            assert nu[emitted.head.predicate] >= 1


class TestSkinny:
    def test_skinny_detection(self):
        assert is_skinny(example1_program())

    def test_three_atoms_not_skinny(self):
        program = Program([clause(
            Literal("G", ("x",)), Literal("A", ("x",)),
            Literal("B", ("x",)), Literal("C", ("x",)))])
        assert not is_skinny(program)

    def test_max_edb_atoms(self):
        program = Program([clause(
            Literal("G", ("x",)), Literal("A", ("x",)),
            Literal("B", ("x",)), Literal("C", ("x",)))])
        assert max_edb_atoms(program) == 3

    def test_skinny_depth_formula(self):
        query = NDLQuery(example1_program(), "G", ("x",))
        # d = 1, nu(G) = 1, e_Pi = 1 (each clause has one EDB atom):
        # sd = 2*1 + log2(1) + log2(1) = 2
        assert skinny_depth(query) == 2.0
