"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


@pytest.fixture
def onto_file(tmp_path):
    path = tmp_path / "onto.txt"
    path.write_text("roles: P, R, S\nP <= S\nP <= R-\n")
    return str(path)


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "data.txt"
    path.write_text("A_P-(d0), R(d0, d3)\n")
    return str(path)


class TestRewrite:
    def test_prints_program(self, onto_file, capsys):
        exit_code = main(["rewrite", "--tbox", onto_file,
                          "--query", "R(x,y), S(y,z)", "--answers", "x",
                          "--method", "lin"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "goal G(x)" in out
        assert "clauses=" in out

    def test_method_selection(self, onto_file, capsys):
        for method in ("lin", "log", "tw", "ucq"):
            assert main(["rewrite", "--tbox", onto_file,
                         "--query", "R(x,y)", "--answers", "x",
                         "--method", method]) == 0


class TestAnswer:
    def test_answers_printed(self, onto_file, data_file, capsys):
        exit_code = main(["answer", "--tbox", onto_file,
                          "--data", data_file,
                          "--query", "R(x,y), S(y,x)", "--answers", "x"])
        assert exit_code == 0
        assert "d0" in capsys.readouterr().out

    def test_boolean_query(self, onto_file, data_file, capsys):
        exit_code = main(["answer", "--tbox", onto_file,
                          "--data", data_file, "--query", "R(x,y)"])
        assert exit_code == 0
        assert "true" in capsys.readouterr().out

    def test_inconsistent_data_flagged(self, tmp_path, capsys):
        onto = tmp_path / "o.txt"
        onto.write_text("A & B <= bottom\n")
        data = tmp_path / "d.txt"
        data.write_text("A(a), B(a)\n")
        exit_code = main(["answer", "--tbox", str(onto),
                          "--data", str(data), "--query", "A(x)",
                          "--answers", "x"])
        assert exit_code == 2
        assert "INCONSISTENT" in capsys.readouterr().err


class TestClassify:
    def test_classification_output(self, onto_file, capsys):
        exit_code = main(["classify", "--tbox", onto_file,
                          "--query", "R(x,y), S(y,z)", "--answers", "x"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "OMQ(0, 1, 2)" in out
        assert "combined: NL" in out


class TestLandscape:
    def test_grid_printed(self, capsys):
        assert main(["landscape"]) == 0
        out = capsys.readouterr().out
        assert "LOGCFL" in out and "NP" in out


class TestSqlCommand:
    def test_prints_view_script(self, onto_file, capsys):
        assert main(["sql", "--tbox", onto_file,
                     "--query", "R(x,y), S(y,z)", "--answers", "x",
                     "--method", "tw"]) == 0
        out = capsys.readouterr().out
        assert "CREATE VIEW" in out
        assert "SELECT DISTINCT" in out

    def test_materialised_flag(self, onto_file, capsys):
        assert main(["sql", "--tbox", onto_file,
                     "--query", "R(x,y)", "--answers", "x,y",
                     "--method", "lin", "--materialised"]) == 0
        out = capsys.readouterr().out
        assert "CREATE TABLE" in out


class TestAnswerPipelineFlags:
    def test_sql_engine(self, onto_file, data_file, capsys):
        assert main(["answer", "--tbox", onto_file, "--data", data_file,
                     "--query", "R(x,y), S(y,z), R(z,w)",
                     "--answers", "x,w", "--engine", "sql"]) == 0
        out = capsys.readouterr().out
        assert "d0\td3" in out

    def test_magic_and_optimize(self, onto_file, data_file, capsys):
        assert main(["answer", "--tbox", onto_file, "--data", data_file,
                     "--query", "R(x,y), S(y,z), R(z,w)",
                     "--answers", "x,w", "--magic", "--optimize"]) == 0
        out = capsys.readouterr().out
        assert "d0\td3" in out

    def test_adaptive_method(self, onto_file, data_file, capsys):
        assert main(["answer", "--tbox", onto_file, "--data", data_file,
                     "--query", "R(x,y), S(y,z), R(z,w)",
                     "--answers", "x,w", "--method", "adaptive"]) == 0
        out = capsys.readouterr().out
        assert "d0\td3" in out
