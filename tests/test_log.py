"""Tests for the Log rewriter (Section 3.2, Theorem 9)."""

import math

import pytest

from repro.chase import certain_answers
from repro.datalog import evaluate
from repro.queries import CQ, chain_cq
from repro.rewriting import log_rewrite

from .helpers import deep_tbox, example11_tbox, infinite_tbox, random_data


class TestStructure:
    def test_width_bound_without_simplification(self):
        # the verbatim construction has width <= 3(t+1); t = 1 here
        tbox = example11_tbox()
        for labels in ("R", "RSR", "RSRRSRR"):
            query = chain_cq(labels)
            ndl = log_rewrite(tbox, query, simplify=False)
            assert ndl.width() <= 3 * (query.treewidth() + 1)

    def test_logarithmic_depth(self):
        tbox = example11_tbox()
        for n in (4, 8, 16):
            query = chain_cq("RS" * n)
            ndl = log_rewrite(tbox, query, simplify=False)
            assert ndl.depth() <= 2 * math.log2(len(query)) + 4

    def test_skinny_reducibility_bound(self):
        # Theorem 9: sd(Pi, G) <= 6 log |Q| (we allow slack for the
        # normalisation constant)
        from repro.datalog.analysis import skinny_depth

        tbox = example11_tbox()
        for n in (2, 4, 8):
            query = chain_cq("RS" * n)
            ndl = log_rewrite(tbox, query, simplify=False)
            size = max(2, ndl.program.symbol_size())
            assert skinny_depth(ndl) <= 8 * math.log2(size)

    def test_rejects_infinite_depth(self):
        with pytest.raises(ValueError):
            log_rewrite(infinite_tbox(), chain_cq("RR"))

    def test_size_grows_linearly(self):
        tbox = example11_tbox()
        sizes = [len(log_rewrite(tbox, chain_cq("RS" * n)))
                 for n in range(1, 6)]
        assert sizes[-1] < 40 * sizes[0] + 40


class TestCorrectness:
    @pytest.mark.parametrize("labels", ["R", "RS", "RSR", "RRSRS"])
    def test_matches_oracle_example11(self, labels):
        tbox = example11_tbox()
        query = chain_cq(labels)
        ndl = log_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed, binary=("P", "R", "S"),
                               unary=("A_P", "A_P-", "A_S"))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    @pytest.mark.parametrize("simplify", [True, False])
    def test_simplification_preserves_answers(self, simplify):
        tbox = deep_tbox()
        query = chain_cq("RQS")
        ndl = log_rewrite(tbox, query, simplify=simplify)
        for seed in range(5):
            abox = random_data(seed + 30)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_cyclic_query(self):
        # treewidth 2: beyond the reach of Lin and Tw
        tbox = deep_tbox()
        query = CQ.parse("P(x, y), Q(y, z), R(x, z)", answer_vars=["x"])
        ndl = log_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed + 60)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_triangle_boolean(self):
        tbox = example11_tbox()
        query = CQ.parse("R(x, y), S(y, z), R(z, x)")
        ndl = log_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed + 90, binary=("P", "R", "S"),
                               unary=("A_P", "A_P-"))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_star_query_deep_ontology(self):
        tbox = deep_tbox()
        query = CQ.parse("P(c, x), Q(x, y), P(c, z), B(y)",
                         answer_vars=["c"])
        ndl = log_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed + 130)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_arbitrary_instance_form(self):
        tbox = example11_tbox()
        query = chain_cq("RSR")
        ndl = log_rewrite(tbox, query, over="arbitrary")
        for seed in range(5):
            abox = random_data(seed + 170, binary=("P", "R", "S"),
                               unary=("A_P", "A_P-"))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox).answers
            assert got == expected, f"seed {seed}"

    def test_self_loop_atom(self):
        tbox = TBox_with_reflexive()
        query = CQ.parse("W(x, x), R(x, y)", answer_vars=["x", "y"])
        ndl = log_rewrite(tbox, query)
        for seed in range(4):
            abox = random_data(seed + 210, binary=("R", "W"), unary=("A",))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"


def TBox_with_reflexive():
    from repro.ontology import TBox

    return TBox.parse("roles: R, W\nrefl(W)")
