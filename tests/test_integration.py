"""Integration sweeps: all rewriters agree with each other and the
oracle across OMQs, ontologies and randomized data."""

import pytest

from repro.chase import certain_answers
from repro.datalog import evaluate
from repro.queries import CQ, chain_cq
from repro.rewriting import (
    OMQ,
    answer,
    lin_rewrite,
    log_rewrite,
    presto_rewrite,
    tw_rewrite,
    ucq_rewrite,
)

from .helpers import deep_tbox, example11_tbox, random_data

FINITE_REWRITERS = (lin_rewrite, log_rewrite, tw_rewrite, ucq_rewrite,
                    presto_rewrite)


class TestSequenceSweep:
    """Prefixes of the paper's Sequence 1 over the Example 11 ontology."""

    @pytest.mark.parametrize("atoms", [1, 2, 4, 6, 9])
    def test_all_rewriters_agree(self, atoms):
        tbox = example11_tbox()
        query = chain_cq("RRSRSRSRRSRRSSR"[:atoms])
        abox = random_data(atoms, individuals=8, atoms=25,
                           binary=("P", "R", "S"),
                           unary=("A_P", "A_P-", "A_S", "A_S-"))
        expected = certain_answers(tbox, abox, query)
        completed = abox.complete(tbox)
        for rewriter in FINITE_REWRITERS:
            ndl = rewriter(tbox, query)
            got = evaluate(ndl, completed).answers
            assert got == expected, rewriter.__name__


class TestDeepOntologySweep:
    @pytest.mark.parametrize("body,answers", [
        ("P(x, y), Q(y, z)", ("x",)),
        ("R(x, y), S(y, z), B(z)", ("x",)),
        ("P(x, y), Q(y, z), B(z)", ()),
        ("P(c, x), P(c, y), Q(x, z)", ("c",)),
    ])
    def test_rewriters_agree(self, body, answers):
        tbox = deep_tbox()
        query = CQ.parse(body, answer_vars=answers)
        for seed in (0, 1, 2):
            abox = random_data(seed + 500)
            expected = certain_answers(tbox, abox, query)
            completed = abox.complete(tbox)
            for rewriter in FINITE_REWRITERS:
                ndl = rewriter(tbox, query)
                got = evaluate(ndl, completed).answers
                assert got == expected, (rewriter.__name__, seed)


class TestEmptyAndEdgeCases:
    def test_empty_data(self):
        tbox = example11_tbox()
        query = chain_cq("RS")
        from repro.data import ABox

        for rewriter in FINITE_REWRITERS:
            ndl = rewriter(tbox, query)
            assert evaluate(ndl, ABox()).answers == frozenset()

    def test_single_individual_loop_data(self):
        tbox = example11_tbox()
        query = chain_cq("RR")
        from repro.data import ABox

        abox = ABox.parse("R(a, a)")
        expected = certain_answers(tbox, abox, query)
        assert expected == {("a", "a")}
        completed = abox.complete(tbox)
        for rewriter in FINITE_REWRITERS:
            assert evaluate(rewriter(tbox, query),
                            completed).answers == expected

    def test_answer_through_api(self):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RSR"))
        abox = random_data(9, binary=("P", "R", "S"), unary=("A_P",))
        expected = certain_answers(tbox, abox, omq.query)
        assert answer(omq, abox).answers == expected
