"""Tests for repro.ontology.reasoning (saturation-based entailment)."""

import pytest

from repro.ontology import TBox
from repro.ontology.terms import TOP, Atomic, Exists, Role


@pytest.fixture
def example11():
    return TBox.parse("""
        roles: P, R, S
        P <= S
        P <= R-
    """)


class TestRoleHierarchy:
    def test_stated_inclusion(self, example11):
        assert example11.entails_role(Role("P"), Role("S"))

    def test_inverse_closure(self, example11):
        assert example11.entails_role(Role("P", True), Role("S", True))

    def test_inverted_inclusion(self, example11):
        # P <= R- entails P- <= R
        assert example11.entails_role(Role("P", True), Role("R"))

    def test_reflexive_entailment(self, example11):
        assert example11.entails_role(Role("P"), Role("P"))

    def test_non_entailment(self, example11):
        assert not example11.entails_role(Role("S"), Role("P"))
        assert not example11.entails_role(Role("R"), Role("S"))

    def test_transitive_chain(self):
        tbox = TBox.parse("roles: P, Q, R\nP <= Q\nQ <= R")
        assert tbox.entails_role(Role("P"), Role("R"))


class TestConceptHierarchy:
    def test_exists_follows_role_hierarchy(self, example11):
        assert example11.entails_concept(Exists(Role("P")),
                                         Exists(Role("S")))

    def test_surrogate_equivalence(self, example11):
        assert example11.entails_concept(Exists(Role("P")), Atomic("A_P"))
        assert example11.entails_concept(Atomic("A_P"), Exists(Role("P")))

    def test_surrogate_propagation(self, example11):
        # EP <= ES, so EP <= A_S
        assert example11.entails_concept(Exists(Role("P")), Atomic("A_S"))

    def test_everything_entails_top(self, example11):
        assert example11.entails_concept(Atomic("A_P"), TOP)
        assert example11.entails_concept(Exists(Role("R")), TOP)

    def test_stated_concept_inclusion(self):
        tbox = TBox.parse("roles: P\nA <= B\nB <= EP")
        assert tbox.entails_concept(Atomic("A"), Exists(Role("P")))

    def test_inverse_existential(self, example11):
        # P <= R- entails EP- <= ER:
        # P(x, y) -> R(y, x), so having an incoming P gives an outgoing R
        assert example11.entails_concept(Exists(Role("P", True)),
                                         Exists(Role("R")))


class TestReflexivity:
    def test_stated_reflexivity(self):
        tbox = TBox.parse("roles: P\nrefl(P)")
        assert tbox.is_reflexive(Role("P"))
        assert tbox.is_reflexive(Role("P", True))

    def test_reflexivity_propagates_up(self):
        tbox = TBox.parse("roles: P, Q\nrefl(P)\nP <= Q")
        assert tbox.is_reflexive(Role("Q"))

    def test_reflexivity_gives_top_exists(self):
        tbox = TBox.parse("roles: P\nrefl(P)")
        assert tbox.entails_concept(TOP, Exists(Role("P")))

    def test_no_reflexivity_by_default(self):
        tbox = TBox.parse("roles: P\nA <= EP")
        assert not tbox.is_reflexive(Role("P"))


class TestDisjointness:
    def test_concept_clash(self):
        tbox = TBox.parse("roles: P\nA & B <= bottom\nA <= EP")
        sat = tbox.saturation
        assert sat.concepts_clash({Atomic("A"), Atomic("B")})
        assert not sat.concepts_clash({Atomic("A")})

    def test_role_clash(self):
        tbox = TBox.parse("roles: P, S\nP & S <= bottom")
        sat = tbox.saturation
        assert sat.roles_clash({Role("P"), Role("S")})
        assert not sat.roles_clash({Role("P")})

    def test_irreflexivity_loop_clash(self):
        tbox = TBox.parse("roles: P\nirrefl(P)")
        sat = tbox.saturation
        assert sat.loop_clash({Role("P")})
        assert sat.loop_clash({Role("P", True)})
