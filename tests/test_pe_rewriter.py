"""Tests for the tree-witness PE-rewriter (Figure 1b's PE target)."""

import pytest

from repro.chase import certain_answers
from repro.datalog import evaluate
from repro.queries import CQ, chain_cq
from repro.queries.pe import Or, pe_to_ndl
from repro.rewriting.pe_rewriter import pe_rewrite

from .helpers import deep_tbox, example11_tbox, random_data


class TestStructure:
    def test_factorised_shape_on_running_example(self):
        # the A.6.1 PE formula: two bracketed segment disjunctions
        pe = pe_rewrite(example11_tbox(), chain_cq("RSRRSRR"))
        disjunctions = [child for child in pe.matrix.children
                        if isinstance(child, Or)]
        assert len(disjunctions) == 2
        # three options per RSR segment (no witness, first, second)
        assert all(len(d.children) == 3 for d in disjunctions)

    def test_size_smaller_than_ucq_expansion(self):
        from repro.rewriting import ucq_rewrite

        tbox = example11_tbox()
        query = chain_cq("RSRRSRRRSRRSR")
        pe = pe_rewrite(tbox, query)
        ucq = ucq_rewrite(tbox, query)
        # the PE formula shares segments the UCQ multiplies out
        assert pe.size() < ucq.program.symbol_size()


class TestCorrectness:
    @pytest.mark.parametrize("labels", ["R", "RS", "RSR", "RRSRS"])
    def test_matches_oracle(self, labels):
        tbox = example11_tbox()
        query = chain_cq(labels)
        ndl = pe_to_ndl(pe_rewrite(tbox, query))
        for seed in range(6):
            abox = random_data(seed, binary=("P", "R", "S"),
                               unary=("A_P", "A_P-", "A_S"))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_deep_ontology(self):
        tbox = deep_tbox()
        query = chain_cq("RQ")
        ndl = pe_to_ndl(pe_rewrite(tbox, query))
        for seed in range(6):
            abox = random_data(seed + 60)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_star_query(self):
        tbox = deep_tbox()
        query = CQ.parse("P(c, x), Q(x, y), P(c, z)", answer_vars=["c"])
        ndl = pe_to_ndl(pe_rewrite(tbox, query))
        for seed in range(5):
            abox = random_data(seed + 90)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"
