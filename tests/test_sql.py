"""Tests for the SQL backend (repro.sql): the Section 6 suggestion of
running NDL rewritings as views in a standard DBMS.

The central property is engine interchangeability: for every program
and data instance, ``evaluate_sql`` (both view and materialised modes)
agrees with the native Python engine ``repro.datalog.evaluate``.
"""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ABox, OMQ, chain_cq, rewrite
from repro.datalog.evaluate import evaluate
from repro.datalog.program import ADOM, Clause, Equality, Literal, NDLQuery, Program
from repro.sql import (
    SQLEngine,
    compile_clause,
    compile_query,
    evaluate_sql,
    quote_identifier,
    table_name,
)
from repro.sql.schema import (
    abox_arities,
    merged_arities,
    predicate_arities,
)

from .helpers import example11_tbox


def _query(clauses, goal, answer_vars=()):
    return NDLQuery(Program(clauses), goal, tuple(answer_vars))


class TestIdentifiers:
    def test_plain_name_is_quoted(self):
        assert quote_identifier("G") == '"G"'

    def test_embedded_quote_is_doubled(self):
        assert quote_identifier('a"b') == '"a""b"'

    def test_table_name_has_prefix(self):
        assert table_name("G") == '"p_G"'

    def test_inverse_surrogate_names_are_safe(self):
        # surrogate concepts are called A_P- in the ontology layer
        name = table_name("A_P-")
        connection = sqlite3.connect(":memory:")
        connection.execute(f"CREATE TABLE {name} (c0 TEXT)")
        connection.execute(f"INSERT INTO {name} VALUES ('a')")
        rows = connection.execute(f"SELECT * FROM {name}").fetchall()
        assert rows == [("a",)]


class TestArities:
    def test_program_arities(self):
        query = _query(
            [Clause(Literal("G", ("x",)),
                    (Literal("R", ("x", "y")), Literal("A", ("y",))))],
            "G", ("x",))
        arities = predicate_arities(query)
        assert arities["G"] == 1
        assert arities["R"] == 2
        assert arities["A"] == 1
        assert arities[ADOM] == 1

    def test_conflicting_arity_is_rejected(self):
        query = _query(
            [Clause(Literal("G", ("x",)),
                    (Literal("R", ("x", "y")), Literal("R", ("y",))))],
            "G", ("x",))
        with pytest.raises(ValueError, match="arities"):
            predicate_arities(query)

    def test_abox_arities(self):
        abox = ABox.parse("A(a), P(a, b)")
        assert abox_arities(abox) == {"A": 1, "P": 2}

    def test_merged_conflict_between_program_and_data(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("A", ("x", "y")),))],
            "G", ("x",))
        abox = ABox.parse("A(a)")
        with pytest.raises(ValueError, match="arity"):
            merged_arities(query, abox)


class TestCompileClause:
    def test_single_atom(self):
        clause = Clause(Literal("G", ("x",)), (Literal("A", ("x",)),))
        sql = compile_clause(clause, frozenset())
        assert 'FROM "p_A" AS t0' in sql
        assert sql.startswith("SELECT DISTINCT t0.c0 AS c0")

    def test_join_condition_for_shared_variable(self):
        clause = Clause(Literal("G", ("x", "z")),
                        (Literal("R", ("x", "y")), Literal("S", ("y", "z"))))
        sql = compile_clause(clause, frozenset())
        assert "WHERE t0.c1 = t1.c0" in sql

    def test_repeated_variable_in_one_atom(self):
        clause = Clause(Literal("G", ("x",)), (Literal("R", ("x", "x")),))
        sql = compile_clause(clause, frozenset())
        assert "WHERE t0.c0 = t0.c1" in sql

    def test_equality_binds_head_variable(self):
        clause = Clause(Literal("G", ("y",)),
                        (Equality("y", "z"), Literal("A", ("z",))))
        sql = compile_clause(clause, frozenset())
        # y is renamed to the bound representative; no unbound reference
        assert "c0" in sql
        assert "=" not in sql.split("FROM")[0]  # no equality in SELECT

    def test_nullary_head_emits_marker(self):
        clause = Clause(Literal("G", ()), (Literal("A", ("x",)),))
        sql = compile_clause(clause, frozenset())
        assert sql.startswith("SELECT DISTINCT '1' AS c0")


class TestCompileQuery:
    def test_statements_in_dependence_order(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("Q", ("x",)),)),
             Clause(Literal("Q", ("x",)), (Literal("A", ("x",)),))],
            "G", ("x",))
        compilation = compile_query(query)
        assert list(compilation.idb_order).index("Q") < \
            list(compilation.idb_order).index("G")

    def test_view_vs_table_mode(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("A", ("x",)),))],
            "G", ("x",))
        views = compile_query(query, materialised=False)
        tables = compile_query(query, materialised=True)
        assert views.statements[0].startswith("CREATE VIEW")
        assert tables.statements[0].startswith("CREATE TABLE")

    def test_script_is_runnable(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("A", ("x",)),))],
            "G", ("x",))
        compilation = compile_query(query)
        connection = sqlite3.connect(":memory:")
        connection.execute('CREATE TABLE "p_A" (c0 TEXT)')
        connection.execute('INSERT INTO "p_A" VALUES (\'a\')')
        connection.executescript(
            "\n".join(s + ";" for s in compilation.statements))
        rows = connection.execute(compilation.goal_select).fetchall()
        assert rows == [("a",)]

    def test_cte_query_is_runnable(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("Q", ("x",)),)),
             Clause(Literal("Q", ("x",)), (Literal("A", ("x",)),))],
            "G", ("x",))
        compilation = compile_query(query)
        connection = sqlite3.connect(":memory:")
        connection.execute('CREATE TABLE "p_A" (c0 TEXT)')
        connection.execute('INSERT INTO "p_A" VALUES (\'a\')')
        rows = connection.execute(compilation.cte_query()).fetchall()
        assert rows == [("a",)]

    def test_unreachable_predicates_are_dropped(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("A", ("x",)),)),
             Clause(Literal("Dead", ("x",)), (Literal("B", ("x",)),))],
            "G", ("x",))
        compilation = compile_query(query)
        assert "Dead" not in compilation.idb_order


class TestEvaluateSql:
    def test_simple_join(self):
        query = _query(
            [Clause(Literal("G", ("x", "z")),
                    (Literal("R", ("x", "y")), Literal("S", ("y", "z"))))],
            "G", ("x", "z"))
        abox = ABox.parse("R(a, b), S(b, c), S(b, d), R(e, f)")
        result = evaluate_sql(query, abox)
        assert result.answers == {("a", "c"), ("a", "d")}

    def test_union_of_clauses(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("A", ("x",)),)),
             Clause(Literal("G", ("x",)), (Literal("B", ("x",)),))],
            "G", ("x",))
        abox = ABox.parse("A(a), B(b), A(b)")
        result = evaluate_sql(query, abox)
        assert result.answers == {("a",), ("b",)}

    def test_boolean_query_true_and_false(self):
        query = _query(
            [Clause(Literal("G", ()), (Literal("A", ("x",)),))], "G")
        assert evaluate_sql(query, ABox.parse("A(a)")).answers == {()}
        assert evaluate_sql(query, ABox.parse("B(a)")).answers == frozenset()

    def test_empty_data(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("A", ("x",)),))],
            "G", ("x",))
        assert evaluate_sql(query, ABox()).answers == frozenset()

    def test_adom_atom(self):
        # a clause padded with __adom__ ranges over every individual
        query = _query(
            [Clause(Literal("G", ("x", "y")),
                    (Literal("A", ("x",)), Literal(ADOM, ("y",))))],
            "G", ("x", "y"))
        abox = ABox.parse("A(a), P(b, c)")
        result = evaluate_sql(query, abox)
        assert result.answers == {("a", "a"), ("a", "b"), ("a", "c")}

    def test_extra_relations_of_wide_arity(self):
        query = _query(
            [Clause(Literal("G", ("x",)),
                    (Literal("emp", ("x", "d", "s")),))],
            "G", ("x",))
        extra = {"emp": {("ann", "d1", "10"), ("bob", "d2", "20")}}
        result = evaluate_sql(query, ABox(), extra_relations=extra)
        assert result.answers == {("ann",), ("bob",)}

    def test_generated_tuples_counts_materialised_idbs(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("Q", ("x",)),)),
             Clause(Literal("Q", ("x",)), (Literal("A", ("x",)),))],
            "G", ("x",))
        abox = ABox.parse("A(a), A(b)")
        result = evaluate_sql(query, abox, materialised=True)
        assert result.relation_sizes == {"G": 2, "Q": 2}
        assert result.generated_tuples == 4

    def test_view_mode_counts_only_goal(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("Q", ("x",)),)),
             Clause(Literal("Q", ("x",)), (Literal("A", ("x",)),))],
            "G", ("x",))
        abox = ABox.parse("A(a), A(b)")
        result = evaluate_sql(query, abox, materialised=False)
        assert result.generated_tuples == 2

    def test_goal_is_edb_predicate(self):
        query = NDLQuery(Program([]), "A", ("x",))
        abox = ABox.parse("A(a)")
        assert evaluate_sql(query, abox).answers == {("a",)}


class TestEngineReuse:
    def test_two_queries_share_one_connection(self):
        abox = ABox.parse("A(a), R(a, b)")
        with SQLEngine(abox) as engine:
            first = _query(
                [Clause(Literal("G", ("x",)), (Literal("A", ("x",)),))],
                "G", ("x",))
            second = _query(
                [Clause(Literal("H", ("x", "y")),
                        (Literal("R", ("x", "y")),))],
                "H", ("x", "y"))
            assert engine.evaluate(first).answers == {("a",)}
            assert engine.evaluate(second).answers == {("a", "b")}

    def test_idb_objects_are_dropped_between_queries(self):
        abox = ABox.parse("A(a)")
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("A", ("x",)),))],
            "G", ("x",))
        with SQLEngine(abox) as engine:
            engine.evaluate(query)
            # would raise "table p_G already exists" if not dropped
            engine.evaluate(query)
            engine.evaluate(query, materialised=False)
            engine.evaluate(query, materialised=False)


#: All rewriters exercised by the differential tests.
REWRITERS = ("lin", "log", "tw", "tw_star", "ucq", "presto")


class TestDifferentialAgainstPythonEngine:
    @pytest.fixture(scope="class")
    def setting(self):
        tbox = example11_tbox()
        query = chain_cq("RSRRSRR")
        abox = ABox.parse(
            "R(a,b), S(b,c), R(c,d), R(d,e), S(e,f), R(f,g), R(g,h), "
            "A_P(c), A_P-(d), R(h,a), S(a,a)").complete(tbox)
        return tbox, query, abox

    @pytest.mark.parametrize("method", REWRITERS)
    def test_rewriter_output_agrees(self, setting, method):
        tbox, query, abox = setting
        ndl = rewrite(OMQ(tbox, query), method=method)
        expected = evaluate(ndl, abox).answers
        assert evaluate_sql(ndl, abox).answers == expected
        assert evaluate_sql(ndl, abox, materialised=False).answers == expected

    @pytest.mark.parametrize("method", ("lin", "tw"))
    def test_arbitrary_instance_rewriting_agrees(self, setting, method):
        tbox, query, _ = setting
        abox = ABox.parse("P(a, b), P(b, c), P(c, d)")
        ndl = rewrite(OMQ(tbox, query), method=method, over="arbitrary")
        assert (evaluate_sql(ndl, abox).answers
                == evaluate(ndl, abox).answers)


# -- property-based: random programs agree across engines ----------------

_VARS = ("x", "y", "z", "u")
_EDB_UNARY = ("A", "B")
_EDB_BINARY = ("R", "S")


def _random_body(draw):
    atoms = []
    size = draw(st.integers(min_value=1, max_value=3))
    for _ in range(size):
        if draw(st.booleans()):
            predicate = draw(st.sampled_from(_EDB_UNARY))
            atoms.append(Literal(predicate, (draw(st.sampled_from(_VARS)),)))
        else:
            predicate = draw(st.sampled_from(_EDB_BINARY))
            atoms.append(Literal(predicate,
                                 (draw(st.sampled_from(_VARS)),
                                  draw(st.sampled_from(_VARS)))))
    return atoms


@st.composite
def _random_query(draw):
    # a two-layer NDL program: Q_i over EDBs, G over Q_i and EDBs
    layer = []
    names = []
    for i in range(draw(st.integers(min_value=1, max_value=2))):
        name = f"Q{i}"
        names.append(name)
        body = _random_body(draw)
        head_vars = tuple(sorted({v for a in body for v in a.args}))[:2]
        if not head_vars:
            head_vars = ("x",)
        layer.append(Clause(Literal(name, head_vars), tuple(body)))
    goal_body = _random_body(draw)
    for name in names:
        arity = len(layer[names.index(name)].head.args)
        goal_body.append(Literal(
            name, tuple(draw(st.sampled_from(_VARS)) for _ in range(arity))))
    goal_vars = tuple(sorted({v for a in goal_body for v in a.args}))[:2]
    clauses = layer + [Clause(Literal("G", goal_vars), tuple(goal_body))]
    return NDLQuery(Program(clauses), "G", goal_vars)


@st.composite
def _random_abox(draw):
    abox = ABox()
    constants = ("a", "b", "c")
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        if draw(st.booleans()):
            abox.add(draw(st.sampled_from(_EDB_UNARY)),
                     draw(st.sampled_from(constants)))
        else:
            abox.add(draw(st.sampled_from(_EDB_BINARY)),
                     draw(st.sampled_from(constants)),
                     draw(st.sampled_from(constants)))
    return abox


class TestPropertyEngineEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(query=_random_query(), abox=_random_abox())
    def test_sql_agrees_with_python_engine(self, query, abox):
        expected = evaluate(query, abox).answers
        assert evaluate_sql(query, abox).answers == expected

    @settings(max_examples=25, deadline=None)
    @given(query=_random_query(), abox=_random_abox())
    def test_view_mode_agrees_with_materialised(self, query, abox):
        materialised = evaluate_sql(query, abox, materialised=True).answers
        lazy = evaluate_sql(query, abox, materialised=False).answers
        assert materialised == lazy
