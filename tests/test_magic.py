"""Tests for the magic-sets transformation (repro.datalog.magic).

The key properties: (i) the transformed program is still a valid NDL
program; (ii) evaluation answers are preserved for every goal
adornment; (iii) goal-directed evaluation materialises no more tuples
than full materialisation (and usually far fewer) — the optimisation
Appendix D.4 notes RDFox did not apply.
"""

import pytest
from hypothesis import given, settings

from repro import ABox, OMQ, chain_cq, rewrite
from repro.data.generator import erdos_renyi_abox
from repro.datalog.evaluate import evaluate
from repro.datalog.magic import (
    MAGIC_SEED,
    evaluate_magic,
    is_answer_magic,
    magic_transform,
)
from repro.datalog.program import Clause, Equality, Literal, NDLQuery, Program

from .helpers import example11_tbox
from .test_sql import _random_abox, _random_query


def _query(clauses, goal, answer_vars=()):
    return NDLQuery(Program(clauses), goal, tuple(answer_vars))


def _chain_program():
    return _query(
        [Clause(Literal("G", ("x", "z")),
                (Literal("R", ("x", "y")), Literal("Q", ("y", "z")))),
         Clause(Literal("Q", ("x", "z")),
                (Literal("S", ("x", "y")), Literal("P", ("y", "z")))),
         Clause(Literal("P", ("x", "y")), (Literal("R", ("x", "y")),))],
        "G", ("x", "z"))


class TestTransformStructure:
    def test_result_is_nonrecursive(self):
        transform = magic_transform(_chain_program())
        # Program() raises on recursion, so construction succeeding is
        # the check; assert the goal changed name to its adorned form
        assert transform.query.goal == "G__ff"

    def test_all_free_goal_is_not_seeded(self):
        transform = magic_transform(_chain_program())
        assert not transform.seeded
        predicates = {c.head.predicate
                      for c in transform.query.program.clauses}
        assert "__magic_G__ff" in predicates

    def test_bound_goal_is_seeded(self):
        transform = magic_transform(_chain_program(), "bb")
        assert transform.seeded
        seeds = [c for c in transform.query.program.clauses
                 if c.head.predicate == "__magic_G__bb"]
        assert len(seeds) == 1
        assert seeds[0].body_literals[0].predicate == MAGIC_SEED

    def test_subpredicates_get_bound_adornments(self):
        # in G <- R(x,y) & Q(y,z), the EDB atom binds y, so Q is called
        # with adornment bf
        transform = magic_transform(_chain_program())
        predicates = {c.head.predicate
                      for c in transform.query.program.clauses}
        assert "Q__bf" in predicates
        assert "__magic_Q__bf" in predicates

    def test_magic_rule_passes_edb_bindings(self):
        transform = magic_transform(_chain_program())
        magic_rules = [c for c in transform.query.program.clauses
                       if c.head.predicate == "__magic_Q__bf"]
        assert len(magic_rules) == 1
        body_predicates = [a.predicate
                           for a in magic_rules[0].body_literals]
        assert "R" in body_predicates

    def test_adornment_arity_mismatch_is_rejected(self):
        with pytest.raises(ValueError, match="arity"):
            magic_transform(_chain_program(), "b")

    def test_adornment_alphabet_is_checked(self):
        with pytest.raises(ValueError, match="'b'/'f'"):
            magic_transform(_chain_program(), "bx")

    def test_equality_propagates_binding(self):
        query = _query(
            [Clause(Literal("G", ("x",)),
                    (Literal("A", ("x",)), Equality("x", "y"),
                     Literal("Q", ("y",)))),
             Clause(Literal("Q", ("y",)), (Literal("B", ("y",)),))],
            "G", ("x",))
        transform = magic_transform(query)
        predicates = {c.head.predicate
                      for c in transform.query.program.clauses}
        # y is bound through x = y, so Q must be called bound
        assert "Q__b" in predicates


class TestAnswerPreservation:
    def test_chain_program(self):
        query = _chain_program()
        abox = ABox.parse("R(a,b), S(b,c), R(c,d), R(b,e), S(e,f)")
        assert (evaluate_magic(query, abox).answers
                == evaluate(query, abox).answers)

    def test_boolean_goal(self):
        query = _query(
            [Clause(Literal("G", ()),
                    (Literal("A", ("x",)), Literal("Q", ("x",)))),
             Clause(Literal("Q", ("x",)), (Literal("B", ("x",)),))],
            "G")
        hit = ABox.parse("A(a), B(a)")
        miss = ABox.parse("A(a), B(b)")
        assert evaluate_magic(query, hit).answers == {()}
        assert evaluate_magic(query, miss).answers == frozenset()

    def test_empty_data(self):
        assert evaluate_magic(_chain_program(), ABox()).answers == frozenset()

    @pytest.mark.parametrize("method", ("lin", "log", "tw", "ucq", "presto"))
    def test_rewriter_outputs(self, method):
        tbox = example11_tbox()
        query = chain_cq("RSRRSRR")
        abox = ABox.parse(
            "R(a,b), S(b,c), R(c,d), R(d,e), S(e,f), R(f,g), R(g,h), "
            "A_P(c), A_P-(d)").complete(tbox)
        ndl = rewrite(OMQ(tbox, query), method=method)
        assert (evaluate_magic(ndl, abox).answers
                == evaluate(ndl, abox).answers)

    @settings(max_examples=40, deadline=None)
    @given(query=_random_query(), abox=_random_abox())
    def test_property_equivalence(self, query, abox):
        assert (evaluate_magic(query, abox).answers
                == evaluate(query, abox).answers)


class TestGoalDirectedChecking:
    @pytest.fixture(scope="class")
    def setting(self):
        tbox = example11_tbox()
        query = chain_cq("RSRRSRR")
        abox = erdos_renyi_abox(120, 0.05, 0.05, seed=3).complete(tbox)
        ndl = rewrite(OMQ(tbox, query), method="lin")
        answers = evaluate(ndl, abox).answers
        return ndl, abox, answers

    def test_positive_candidate(self, setting):
        ndl, abox, answers = setting
        candidate = sorted(answers)[0]
        assert is_answer_magic(ndl, abox, candidate)

    def test_negative_candidate(self, setting):
        ndl, abox, answers = setting
        individuals = sorted({c for row in answers for c in row})
        negative = None
        for first in individuals:
            for second in individuals:
                if (first, second) not in answers:
                    negative = (first, second)
                    break
            if negative:
                break
        assert negative is not None
        assert not is_answer_magic(ndl, abox, negative)

    def test_candidate_arity_mismatch(self, setting):
        ndl, abox, _ = setting
        with pytest.raises(ValueError, match="arity"):
            evaluate_magic(ndl, abox, candidate=("a",))

    def test_bound_check_materialises_fewer_tuples(self, setting):
        ndl, abox, answers = setting
        candidate = sorted(answers)[0]
        full = evaluate(ndl, abox)
        bound = evaluate_magic(ndl, abox, candidate=candidate)
        assert bound.generated_tuples < full.generated_tuples


class TestTupleReduction:
    def test_magic_never_materialises_more_on_lin(self):
        # Lin's slice predicates carry every reachable configuration;
        # magic restricts them to configurations reachable from the data
        tbox = example11_tbox()
        query = chain_cq("RSRRSRR")
        abox = erdos_renyi_abox(150, 0.04, 0.05, seed=5).complete(tbox)
        ndl = rewrite(OMQ(tbox, query), method="lin")
        base = evaluate(ndl, abox)
        magic = evaluate_magic(ndl, abox)
        assert magic.answers == base.answers
        assert magic.generated_tuples <= base.generated_tuples


class TestNonrecursivenessRegressions:
    def test_duplicate_idb_atom_in_one_body(self):
        # two calls to the same predicate in one clause used to create
        # a magic_Q <-> Q cycle under full sideways passing
        query = _query(
            [Clause(Literal("G", ("x", "y")),
                    (Literal("Q", ("x",)), Literal("Q", ("y",)),
                     Literal("R", ("x", "y")))),
             Clause(Literal("Q", ("x",)), (Literal("A", ("x",)),))],
            "G", ("x", "y"))
        abox = ABox.parse("A(a), A(b), R(a,b), R(b,c)")
        assert (evaluate_magic(query, abox).answers
                == evaluate(query, abox).answers)

    def test_nullary_idb_atom(self):
        query = _query(
            [Clause(Literal("G", ("x",)),
                    (Literal("Flag", ()), Literal("A", ("x",)))),
             Clause(Literal("Flag", ()), (Literal("B", ("z",)),))],
            "G", ("x",))
        hit = ABox.parse("A(a), B(b)")
        miss = ABox.parse("A(a)")
        assert evaluate_magic(query, hit).answers == {("a",)}
        assert evaluate_magic(query, miss).answers == frozenset()

    def test_idb_to_idb_binding_becomes_free(self):
        # y is bound only by the sibling IDB atom Q1; with EDB-only
        # sideways passing Q2 must be called with a free adornment
        query = _query(
            [Clause(Literal("G", ("x",)),
                    (Literal("Q1", ("x", "y")), Literal("Q2", ("y",)))),
             Clause(Literal("Q1", ("x", "y")), (Literal("R", ("x", "y")),)),
             Clause(Literal("Q2", ("y",)), (Literal("A", ("y",)),))],
            "G", ("x",))
        transform = magic_transform(query)
        predicates = {c.head.predicate
                      for c in transform.query.program.clauses}
        assert "Q2__f" in predicates
        abox = ABox.parse("R(a,b), A(b), A(c)")
        assert (evaluate_magic(query, abox).answers
                == evaluate(query, abox).answers)
