"""Tests for :class:`repro.service.service.OMQService` and the HTTP
front-end: parity with the one-shot pipeline, batch deduplication,
concurrency, per-request TBox interning and the JSON protocol.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import ABox, CQ, OMQ, TBox, answer, chain_cq
from repro.engine import available_engines
from repro.service import BatchRequest, OMQService
from repro.service.serve import build_server

from .helpers import example11_tbox, random_data


@pytest.fixture
def service():
    with OMQService(max_workers=3) as svc:
        svc.register_dataset("demo", random_data(1))
        yield svc


def _snapshot(abox: ABox) -> ABox:
    return ABox(abox.atoms())


class TestAnswering:
    def test_matches_one_shot_answer(self, service):
        tbox = example11_tbox()
        data = _snapshot(service._dataset("demo").abox)
        for labels in ("RS", "RSR"):
            omq = OMQ(tbox, chain_cq(labels))
            for engine in available_engines():
                expected = answer(omq, data, engine=engine).answers
                got = service.answer("demo", omq, engine=engine)
                assert got.answers == expected
                assert got.engine == engine

    def test_repeat_query_hits_cache(self, service):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RS"))
        first = service.answer("demo", omq)
        renamed = OMQ(tbox, chain_cq("RS", prefix="z"))
        second = service.answer("demo", renamed)
        assert not first.cached_rewriting
        assert second.cached_rewriting
        assert first.answers == second.answers
        assert service.cache.stats().hits >= 1

    def test_equal_tboxes_interned(self, service):
        # a fresh (equal) TBox object per request must not recompute
        # the completion: both requests collapse onto one entry
        for _ in range(2):
            service.answer("demo", OMQ(example11_tbox(), chain_cq("RS")))
        assert len(service._dataset("demo").completions) == 1

    def test_unknown_dataset_rejected(self, service):
        with pytest.raises(ValueError, match="unknown dataset"):
            service.answer("nope", OMQ(example11_tbox(), chain_cq("RS")))

    def test_duplicate_registration_rejected(self, service):
        with pytest.raises(ValueError, match="already registered"):
            service.register_dataset("demo", ABox())
        service.register_dataset("demo", random_data(2), replace=True)

    def test_stats_shape(self, service):
        service.answer("demo", OMQ(example11_tbox(), chain_cq("RS")))
        stats = service.stats()
        assert stats["requests"] == 1
        assert stats["cache"]["misses"] >= 1
        assert stats["datasets"]["demo"]["requests"] == 1
        assert stats["datasets"]["demo"]["sessions"] == {"python": 1}


class TestBatch:
    def test_batch_matches_individual_answers(self, service):
        tbox = example11_tbox()
        requests = [BatchRequest("demo", OMQ(tbox, chain_cq(labels)),
                                 engine=engine)
                    for labels in ("RS", "SR")
                    for engine in available_engines()]
        results = service.answer_batch(requests)
        for request, result in zip(requests, results):
            expected = service.answer("demo", request.omq,
                                      engine=request.engine)
            assert result.answers == expected.answers

    def test_batch_deduplicates_renamed_queries(self, service):
        tbox = example11_tbox()
        requests = [BatchRequest("demo", OMQ(tbox, chain_cq("RS",
                                                            prefix=p)))
                    for p in ("x", "y", "z")]
        results = service.answer_batch(requests)
        assert len({id(result) for result in results}) == 1
        assert service.stats()["batch_deduplicated"] == 2

    def test_batch_accepts_dicts(self, service):
        tbox = example11_tbox()
        results = service.answer_batch([
            {"dataset": "demo", "omq": OMQ(tbox, chain_cq("RS"))},
            {"dataset": "demo", "omq": OMQ(tbox, chain_cq("SR")),
             "engine": "sql"}])
        assert len(results) == 2

    def test_concurrent_answers_consistent(self, service):
        tbox = example11_tbox()
        omqs = [OMQ(tbox, chain_cq(labels))
                for labels in ("RS", "SR", "RSR", "SRR")]
        expected = {id(omq): service.answer("demo", omq, engine="sql").answers
                    for omq in omqs}
        errors = []

        def worker(omq):
            try:
                for _ in range(3):
                    got = service.answer("demo", omq, engine="sql")
                    assert got.answers == expected[id(omq)]
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(omq,))
                   for omq in omqs for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestServeHTTP:
    @pytest.fixture
    def server(self):
        service = OMQService(max_workers=2)
        server = build_server(service, port=0, verbose=False)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        service.close()

    @staticmethod
    def _call(server, path, payload=None):
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}{path}"
        if payload is None:
            request = urllib.request.Request(url)
        else:
            request = urllib.request.Request(
                url, json.dumps(payload).encode(),
                {"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    def test_round_trip(self, server):
        health = self._call(server, "/health")
        assert health["status"] == "ok"
        assert health["engines"]  # at least one engine is always available
        assert health["storage"] == {"enabled": False}
        assert health["uptime_seconds"] >= 0
        self._call(server, "/datasets",
                   {"name": "demo", "data": "R(a,b), A_P(b)"})
        self._call(server, "/tboxes",
                   {"name": "uni",
                    "tbox": "roles: P, R, S\nP <= S\nP <= R-"})
        answered = self._call(server, "/answer",
                              {"dataset": "demo", "tbox": "uni",
                               "query": "R(x,y), S(y,z)",
                               "answers": ["x"]})
        assert answered["answers"] == [["a"]]
        expected = answer(
            OMQ(TBox.parse("roles: P, R, S\nP <= S\nP <= R-"),
                CQ.parse("R(x,y), S(y,z)", answer_vars=["x"])),
            ABox.parse("R(a,b), A_P(b)"))
        assert {tuple(row) for row in answered["answers"]} \
            == expected.answers

    def test_inline_tbox_and_cache(self, server):
        self._call(server, "/datasets",
                   {"name": "demo", "data": "R(a,b), A_P(b)"})
        text = "roles: P, R, S\nP <= S\nP <= R-"
        first = self._call(server, "/answer",
                           {"dataset": "demo", "tbox": text,
                            "query": "R(x,y), S(y,z)", "answers": "x"})
        second = self._call(server, "/answer",
                            {"dataset": "demo", "tbox": text,
                             "query": "R(u,v), S(v,w)", "answers": "u"})
        assert not first["cached_rewriting"]
        assert second["cached_rewriting"]
        assert first["answers"] == second["answers"]

    def test_update_and_batch(self, server):
        self._call(server, "/datasets",
                   {"name": "demo", "data": "R(a,b), A_P(b)"})
        self._call(server, "/tboxes",
                   {"name": "uni",
                    "tbox": "roles: P, R, S\nP <= S\nP <= R-"})
        updated = self._call(server, "/update",
                             {"dataset": "demo",
                              "insert": ["R(c,d)", "A_P(d)"],
                              "delete": ["R(a,b)"]})
        assert updated["inserted"] == 2
        assert updated["deleted"] == 1
        batch = self._call(server, "/batch", {"requests": [
            {"dataset": "demo", "tbox": "uni",
             "query": "R(x,y), S(y,z)", "answers": ["x"],
             "engine": engine} for engine in available_engines()]})
        for result in batch["results"]:
            assert result["answers"] == [["c"]]

    def test_wrong_json_types_return_400(self, server):
        self._call(server, "/datasets", {"name": "demo", "data": "R(a,b)"})
        for bad in ({"dataset": "demo", "tbox": "x <= y", "query": 5},
                    {"dataset": "demo", "tbox": "x <= y",
                     "query": "R(x,y)", "answers": 5},
                    {"dataset": "demo", "tbox": 7, "query": "R(x,y)"}):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._call(server, "/answer", bad)
            assert excinfo.value.code == 400
            assert "error" in json.loads(excinfo.value.read())

    def test_explicit_tbox_text_field(self, server):
        self._call(server, "/datasets",
                   {"name": "demo", "data": "R(a,b), A_P(b)"})
        answered = self._call(server, "/answer",
                              {"dataset": "demo",
                               "tbox_text": "roles: P, R, S\n"
                                            "P <= S\nP <= R-",
                               "query": "R(x,y), S(y,z)",
                               "answers": ["x"]})
        assert answered["answers"] == [["a"]]

    def test_errors_are_4xx(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._call(server, "/answer",
                       {"dataset": "missing", "tbox": "uni",
                        "query": "R(x,y)"})
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._call(server, "/nope")
        assert excinfo.value.code == 404

    def test_stats_endpoint(self, server):
        stats = self._call(server, "/stats")
        assert "cache" in stats and "datasets" in stats
