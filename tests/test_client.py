"""Tests for the unified :class:`repro.Client` facade: the embedded
and HTTP transports must expose one surface and agree on answers."""

import threading

import pytest

from repro import ABox, Client, OMQ, answer, chain_cq
from repro.client import abox_to_text, cq_to_text, tbox_to_text
from repro.queries import CQ
from repro.service import OMQService
from repro.service.cache import tbox_fingerprint
from repro.service.serve import build_server

from .helpers import example11_tbox, random_data


@pytest.fixture
def abox():
    return random_data(9, individuals=8, atoms=30)


@pytest.fixture
def omq():
    return OMQ(example11_tbox(), chain_cq("RSR"))


@pytest.fixture
def http_client():
    service = OMQService(max_workers=2)
    server = build_server(service, port=0, verbose=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    with Client.connect(f"http://{host}:{port}") as client:
        yield client
    server.shutdown()
    server.server_close()
    service.close()


# -- serialisation helpers --------------------------------------------------


class TestSerialisation:
    def test_tbox_round_trip(self):
        from repro.ontology import TBox

        tbox = example11_tbox()
        reparsed = TBox.parse(tbox_to_text(tbox))
        assert tbox_fingerprint(reparsed) == tbox_fingerprint(tbox)

    def test_cq_round_trip(self):
        from repro.fingerprint import cq_fingerprint

        cq = CQ.parse("R(x,y), S(y,z), A(x)", answer_vars=["x"])
        reparsed = CQ.parse(cq_to_text(cq), answer_vars=["x"])
        assert cq_fingerprint(reparsed) == cq_fingerprint(cq)

    def test_abox_round_trip(self, abox):
        reparsed = ABox.parse(abox_to_text(abox))
        assert set(reparsed.atoms()) == set(abox.atoms())


# -- one surface, two transports --------------------------------------------


class TestLocalClient:
    def test_answer_matches_one_shot(self, abox, omq):
        with Client.local() as client:
            client.register_dataset("demo", ABox(abox.atoms()))
            got = client.answer("demo", omq, method="tw")
        assert got.answers == answer(omq, abox, method="tw").answers
        assert got.method == "tw"

    def test_wrap_borrows_service(self, abox, omq):
        with OMQService() as service:
            service.register_dataset("demo", ABox(abox.atoms()))
            client = Client.wrap(service)
            expected = service.answer("demo", omq).answers
            assert client.answer("demo", omq).answers == expected
            client.close()
            # borrowed service still alive after the client closes
            assert service.answer("demo", omq).answers == expected

    def test_explain_and_update(self, abox, omq):
        with Client.local() as client:
            client.register_dataset("demo", ABox(abox.atoms()))
            report = client.explain(omq, method="lin")
            assert report["method"] == "lin" and report["rules"] > 0
            before = client.answer("demo", omq).answers
            client.insert_facts("demo", [("R", ("zz1", "zz2")),
                                         ("S", ("zz2", "zz3"))])
            after = client.answer("demo", omq).answers
            assert before <= after
            assert "demo" in client.datasets()
            assert client.stats()["requests"] == 2


class TestHTTPClient:
    def test_answer_matches_local(self, http_client, abox, omq):
        http_client.register_dataset("demo", abox)
        got = http_client.answer("demo", omq, method="tw", engine="sql")
        assert got.answers == answer(omq, abox, method="tw").answers
        assert got.engine == "sql"
        assert got.plan_fingerprint  # provenance survives the wire

    def test_explain_over_http(self, http_client, omq):
        report = http_client.explain(omq, method="log", magic=True)
        assert report["method"] == "log"
        assert report["magic"] is True
        assert report["rules"] > 0

    def test_update_and_stats(self, http_client, abox, omq):
        http_client.register_dataset("demo", abox)
        before = http_client.answer("demo", omq).answers
        http_client.insert_facts("demo", [("R", ("w1", "w2")),
                                          ("S", ("w2", "w3"))])
        after = http_client.answer("demo", omq).answers
        assert before <= after
        assert "demo" in http_client.datasets()
        assert http_client.stats()["requests"] == 2

    def test_error_surfaces_as_value_error(self, http_client, omq):
        with pytest.raises(ValueError, match="unknown dataset"):
            http_client.answer("missing", omq)

    def test_timed_out_survives_the_wire(self, http_client, abox, omq):
        http_client.register_dataset("demo", abox)
        got = http_client.answer("demo", omq, timeout=0.0)
        assert got.timed_out
        assert not http_client.answer("demo", omq).timed_out

    def test_same_surface_same_answers(self, http_client, abox, omq):
        http_client.register_dataset("demo", abox)
        with Client.local() as local:
            local.register_dataset("demo", ABox(abox.atoms()))
            for options in ({"method": "lin"}, {"method": "tw_star"},
                            {"method": "log", "magic": True}):
                assert (http_client.answer("demo", omq, options).answers
                        == local.answer("demo", omq, options).answers)
