"""Tests for the structured SQL IR, the optimizer pass pipeline and
the per-dialect renderers.

The load-bearing property is that every optimizer pass is
answer-preserving: optimized SQL == unoptimized SQL == the python
engine, on hand-built programs, the rewriter outputs, random NDL
programs and under ``apply_delta`` update sequences — across every
available engine.
"""

import sqlite3

import pytest
from hypothesis import given

from repro import ABox, OMQ, chain_cq, rewrite
from repro.cli import build_parser
from repro.datalog.evaluate import evaluate
from repro.datalog.program import Clause, Literal, NDLQuery, Program
from repro.engine import ENGINES, SQL_ENGINES, available_engines
from repro.rewriting import AnswerSession
from repro.rewriting.plan import AnswerOptions, compile_omq, format_explain
from repro.service.protocol import Router
from repro.sql.compile import compile_query, compile_query_ir
from repro.sql.engine import SQLEngine, evaluate_sql
from repro.sql.ir import (
    ColumnRef,
    Comparison,
    Definition,
    Disjunction,
    InList,
    OutputColumn,
    QueryIR,
    Select,
    SQLLiteral,
    TableRef,
    Union,
    get_dialect,
    node_count,
)
from repro.sql.optimize import (
    PASSES,
    dedup_branches,
    elide_distinct,
    hoist_common_subqueries,
    merge_or_chains,
    prune_subsumed,
)

from .helpers import example11_tbox, hypothesis_settings
from .test_sql import _random_abox, _random_query

REWRITERS = ("lin", "log", "tw", "tw_star", "ucq", "presto")


def _query(clauses, goal, answer_vars=()):
    return NDLQuery(Program(clauses), goal, tuple(answer_vars))


def _goal_select(relation="p_G", arity=1):
    columns = tuple(OutputColumn(ColumnRef(None, f"c{i}"), f"c{i}")
                    for i in range(arity))
    return Select(columns=columns,
                  tables=(TableRef(relation, None, arity=arity),))


# -- dialects and rendering -------------------------------------------------

class TestDialects:
    def test_unknown_dialect_is_rejected(self):
        with pytest.raises(ValueError, match="unknown SQL dialect"):
            get_dialect("postgres")

    def test_literal_quotes_are_doubled(self):
        assert get_dialect("sqlite").quote_literal("O'Brien") == "'O''Brien'"

    def test_in_list_rendering_escapes_values(self):
        condition = InList(ColumnRef("t0", "c0"),
                           (SQLLiteral("a"), SQLLiteral("o'x")))
        rendered = get_dialect("sqlite").render_condition(condition)
        assert rendered == "t0.c0 IN ('a', 'o''x')"

    def test_disjunction_rendering(self):
        condition = Disjunction((
            Comparison(ColumnRef("t0", "c0"), "=", SQLLiteral("a")),
            Comparison(ColumnRef("t0", "c0"), "=", ColumnRef("t1", "c1"))))
        rendered = get_dialect("sqlite").render_condition(condition)
        assert rendered == "(t0.c0 = 'a' OR t0.c0 = t1.c1)"

    def test_core_sql_is_dialect_portable(self):
        ndl = rewrite(OMQ(example11_tbox(), chain_cq("RS")), method="ucq")
        sqlite_form = compile_query(ndl, dialect="sqlite")
        duckdb_form = compile_query(ndl, dialect="duckdb")
        assert sqlite_form.script() == duckdb_form.script()
        assert duckdb_form.dialect == "duckdb"


class TestHostileNames:
    """Identifier quoting and literal escaping happen in one place, so
    predicate names chosen to break string surgery stay safe."""

    # the old cte_query split rendered text on this exact substring
    HOSTILE = 'evil" AS\ntable'

    def _hostile_query(self):
        clause = Clause(Literal("G", ("x", "y")),
                        (Literal(self.HOSTILE, ("x", "y")),))
        return _query([clause], "G", ("x", "y"))

    def test_cte_query_survives_as_newline_in_predicate_name(self):
        compilation = compile_query(self._hostile_query())
        from repro.sql.schema import create_schema, table_name

        connection = sqlite3.connect(":memory:")
        create_schema(connection, {self.HOSTILE: 2})
        connection.execute(
            f"INSERT INTO {table_name(self.HOSTILE)} VALUES ('a', 'b')")
        rows = connection.execute(compilation.cte_query()).fetchall()
        assert rows == [("a", "b")]

    @pytest.mark.parametrize("optimize", (False, True))
    def test_full_evaluation_with_hostile_predicate(self, optimize):
        query = self._hostile_query()
        extra = {self.HOSTILE: [("a", "b"), ("b", "c")]}
        result = evaluate_sql(query, ABox(), extra_relations=extra,
                              optimize_sql=optimize)
        assert result.answers == {("a", "b"), ("b", "c")}


# -- individual passes ------------------------------------------------------

class TestDedupBranches:
    def test_identical_clause_selects_collapse(self):
        # different variable names, identical compiled select
        clauses = [Clause(Literal("G", ("x",)), (Literal("A", ("x",)),)),
                   Clause(Literal("G", ("z",)), (Literal("A", ("z",)),))]
        ir = compile_query_ir(_query(clauses, "G", ("x",)))
        assert len(ir.definitions[0].union.selects) == 2
        deduped = dedup_branches(ir)
        assert len(deduped.definitions[0].union.selects) == 1

    def test_dedup_preserves_answers(self):
        clauses = [Clause(Literal("G", ("x",)), (Literal("A", ("x",)),)),
                   Clause(Literal("G", ("z",)), (Literal("A", ("z",)),))]
        query = _query(clauses, "G", ("x",))
        abox = ABox.parse("A(a), A(b)")
        assert evaluate_sql(query, abox, optimize_sql=True).answers \
            == evaluate(query, abox).answers == {("a",), ("b",)}


class TestPruneSubsumed:
    def _two_branch_query(self):
        # the second branch maps homomorphically into... rather: the
        # first branch R(x,y) subsumes the second R(x,y),S(y,z)
        clauses = [
            Clause(Literal("G", ("x",)), (Literal("R", ("x", "y")),)),
            Clause(Literal("G", ("x",)), (Literal("R", ("x", "y")),
                                          Literal("S", ("y", "z")))),
        ]
        return _query(clauses, "G", ("x",))

    def test_subsumed_branch_is_dropped(self):
        ir = compile_query_ir(self._two_branch_query())
        pruned = prune_subsumed(ir)
        union = pruned.definitions[0].union
        assert len(union.selects) == 1
        assert [t.relation for t in union.selects[0].tables] == ["p_R"]

    def test_pruning_preserves_answers(self):
        query = self._two_branch_query()
        abox = ABox.parse("R(a,b), S(b,c), R(c,d)")
        expected = evaluate(query, abox).answers
        assert evaluate_sql(query, abox, optimize_sql=True).answers \
            == expected

    def test_unrelated_branches_survive(self):
        clauses = [
            Clause(Literal("G", ("x",)), (Literal("R", ("x", "y")),)),
            Clause(Literal("G", ("x",)), (Literal("S", ("x", "y")),)),
        ]
        ir = compile_query_ir(_query(clauses, "G", ("x",)))
        assert len(prune_subsumed(ir).definitions[0].union.selects) == 2


class TestMergeOrChains:
    def _branch(self, value):
        return Select(
            columns=(OutputColumn(ColumnRef("t0", "c0"), "c0"),),
            tables=(TableRef("p_R", "t0", arity=2),),
            where=(Comparison(ColumnRef("t0", "c1"), "=",
                              SQLLiteral(value)),))

    def _ir(self, union):
        return QueryIR((Definition("G", "p_G", union),),
                       _goal_select(), False)

    def test_literal_equalities_merge_to_in(self):
        union = Union((self._branch("a"), self._branch("b"),
                       self._branch("c")))
        merged = merge_or_chains(self._ir(union)).definitions[0].union
        assert len(merged.selects) == 1
        (condition,) = merged.selects[0].where
        assert isinstance(condition, InList)
        assert [v.value for v in condition.values] == ["a", "b", "c"]

    def test_non_literal_right_merges_to_disjunction(self):
        other = Select(
            columns=(OutputColumn(ColumnRef("t0", "c0"), "c0"),),
            tables=(TableRef("p_R", "t0", arity=2),),
            where=(Comparison(ColumnRef("t0", "c1"), "=",
                              ColumnRef("t0", "c0")),))
        union = Union((self._branch("a"), other))
        merged = merge_or_chains(self._ir(union)).definitions[0].union
        assert len(merged.selects) == 1
        (condition,) = merged.selects[0].where
        assert isinstance(condition, Disjunction)

    def test_merge_preserves_results_on_data(self):
        union = Union((self._branch("a"), self._branch("b")))
        merged = merge_or_chains(self._ir(union)).definitions[0].union
        dialect = get_dialect("sqlite")
        connection = sqlite3.connect(":memory:")
        connection.execute('CREATE TABLE "p_R" (c0 TEXT, c1 TEXT)')
        connection.executemany('INSERT INTO "p_R" VALUES (?, ?)',
                               [("u", "a"), ("v", "b"), ("w", "c"),
                                ("x", "a")])
        before = set(connection.execute(
            dialect.render_union(union)).fetchall())
        after = set(connection.execute(
            dialect.render_union(merged)).fetchall())
        assert before == after == {("u",), ("v",), ("x",)}

    def test_branches_with_different_joins_do_not_merge(self):
        other = Select(
            columns=(OutputColumn(ColumnRef("t0", "c0"), "c0"),),
            tables=(TableRef("p_S", "t0", arity=2),),
            where=(Comparison(ColumnRef("t0", "c1"), "=",
                              SQLLiteral("b")),))
        union = Union((self._branch("a"), other))
        merged = merge_or_chains(self._ir(union)).definitions[0].union
        assert len(merged.selects) == 2


class TestHoistCommonSubqueries:
    def _shared_join_query(self):
        body = (Literal("R", ("x", "y")), Literal("S", ("y", "z")))
        clauses = [
            Clause(Literal("Q1", ("x", "z")), body),
            Clause(Literal("Q2", ("x", "z")), body),
            Clause(Literal("G", ("x", "z")), (Literal("Q1", ("x", "z")),)),
            Clause(Literal("G", ("x", "z")), (Literal("Q2", ("x", "z")),)),
        ]
        return _query(clauses, "G", ("x", "z"))

    def test_shared_join_becomes_synthetic_definition(self):
        ir = compile_query_ir(self._shared_join_query())
        hoisted = hoist_common_subqueries(ir)
        synthetic = [d for d in hoisted.definitions if d.synthetic]
        assert len(synthetic) == 1
        assert synthetic[0].predicate == "_cse0"
        # both former occurrences now scan the hoisted relation
        scans = [t.relation
                 for d in hoisted.definitions if not d.synthetic
                 for s in d.union.selects for t in s.tables]
        assert scans.count(synthetic[0].relation) == 2

    def test_hoisting_preserves_answers_and_sizes(self):
        query = self._shared_join_query()
        abox = ABox.parse("R(a,b), S(b,c), R(c,d), S(d,e)")
        expected = evaluate(query, abox)
        for materialised in (False, True):
            plain = evaluate_sql(query, abox, materialised=materialised)
            optimized = evaluate_sql(query, abox,
                                     materialised=materialised,
                                     optimize_sql=True)
            assert plain.answers == optimized.answers == expected.answers
            # synthetic relations are excluded from the size metric
            assert set(optimized.relation_sizes) \
                <= set(plain.relation_sizes)


class TestElideDistinct:
    def test_union_branches_lose_inner_distinct(self):
        clauses = [
            Clause(Literal("G", ("x",)), (Literal("A", ("x",)),)),
            Clause(Literal("G", ("x",)), (Literal("B", ("x",)),)),
        ]
        ir = compile_query_ir(_query(clauses, "G", ("x",)))
        elided = elide_distinct(ir)
        assert all(not s.distinct
                   for s in elided.definitions[0].union.selects)

    def test_key_covered_single_branch_loses_distinct(self):
        clause = Clause(Literal("G", ("x", "y")), (Literal("R", ("x", "y")),))
        ir = compile_query_ir(_query([clause], "G", ("x", "y")))
        elided = elide_distinct(ir)
        assert not elided.definitions[0].union.selects[0].distinct
        assert not elided.goal.distinct

    def test_projection_dropping_a_column_keeps_distinct(self):
        clause = Clause(Literal("G", ("x",)), (Literal("R", ("x", "y")),))
        ir = compile_query_ir(_query([clause], "G", ("x",)))
        elided = elide_distinct(ir)
        # y/c1 is not determined by the projection: R may repeat c0
        assert elided.definitions[0].union.selects[0].distinct

    def test_elision_is_safe_on_data(self):
        clause = Clause(Literal("G", ("x",)), (Literal("R", ("x", "y")),))
        query = _query([clause], "G", ("x",))
        abox = ABox.parse("R(a,b), R(a,c), R(b,c)")
        expected = evaluate(query, abox)
        optimized = evaluate_sql(query, abox, optimize_sql=True)
        assert optimized.answers == expected.answers
        assert optimized.generated_tuples == expected.generated_tuples


class TestPassLog:
    def test_one_entry_per_pass_in_order(self):
        ndl = rewrite(OMQ(example11_tbox(), chain_cq("RSR")),
                      method="perfectref")
        compilation = compile_query(ndl, optimize=True)
        assert [entry["pass"] for entry in compilation.passes] \
            == [name for name, _ in PASSES]
        for entry in compilation.passes:
            assert set(entry) == {"pass", "before", "after", "changed"}
            assert entry["after"] <= entry["before"]

    def test_unoptimized_compilation_has_empty_log(self):
        ndl = rewrite(OMQ(example11_tbox(), chain_cq("RS")), method="ucq")
        assert compile_query(ndl).passes == ()

    def test_node_count_counts_ir_nodes(self):
        ir = compile_query_ir(
            _query([Clause(Literal("G", ("x",)), (Literal("A", ("x",)),))],
                   "G", ("x",)))
        assert node_count(ir) == node_count(ir.definitions[0]) \
            + node_count(ir.goal) + 1


# -- plan / options / service threading ------------------------------------

class TestOptionThreading:
    def test_optimize_sql_partitions_the_cache_fingerprint(self):
        plain = AnswerOptions()
        optimized = AnswerOptions(optimize_sql=True)
        assert plain.rewrite_fingerprint() \
            != optimized.rewrite_fingerprint()

    def test_explain_reports_pass_log_on_sql_engines(self):
        omq = OMQ(example11_tbox(), chain_cq("RSR"))
        plan = compile_omq(omq, method="perfectref",
                           engine="sql-views", optimize_sql=True)
        report = plan.explain()
        assert report["optimize_sql"] is True
        sql = report["sql"]
        assert sql["dialect"] == "sqlite"
        assert [e["pass"] for e in sql["passes"]] \
            == [name for name, _ in PASSES]
        assert any(e["changed"] for e in sql["passes"])
        assert sql["statements"]
        text = format_explain(report)
        assert "pass prune-subsumed" in text

    def test_explain_has_no_sql_section_for_python_engine(self):
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        assert "sql" not in compile_omq(omq, engine="python").explain()

    def test_protocol_decodes_flat_optimize_sql_key(self):
        options = Router.decode_options({"optimize_sql": True,
                                         "engine": "sql-views"})
        assert options.optimize_sql is True

    def test_registry_is_open_everywhere(self):
        # every registered engine name must be accepted by the options
        # layer, the wire protocol and both CLI subcommand choices —
        # iterating ENGINES, not a hard-coded list
        parser = build_parser()
        cli_choices = {
            action.dest: action.choices
            for subparser in parser._subparsers._group_actions[0]
            .choices.values()
            for action in subparser._actions
            if action.dest == "engine" and action.choices}
        for name in ENGINES:
            assert AnswerOptions(engine=name).engine == name
            assert Router.decode_options({"engine": name}).engine == name
            assert name in cli_choices["engine"]

    def test_sql_engines_is_a_subset_of_engines(self):
        assert set(SQL_ENGINES) < set(ENGINES)
        assert "python" not in SQL_ENGINES


# -- differential: optimized == unoptimized == python -----------------------

class TestOptimizedDifferential:
    @pytest.fixture(scope="class")
    def setting(self):
        tbox = example11_tbox()
        query = chain_cq("RSRRSRR")
        abox = ABox.parse(
            "R(a,b), S(b,c), R(c,d), R(d,e), S(e,f), R(f,g), R(g,h), "
            "A_P(c), A_P-(d), R(h,a), S(a,a)").complete(tbox)
        return tbox, query, abox

    @pytest.mark.parametrize("method", REWRITERS)
    def test_every_rewriter_survives_optimization(self, setting, method):
        tbox, query, abox = setting
        ndl = rewrite(OMQ(tbox, query), method=method)
        expected = evaluate(ndl, abox)
        for materialised in (False, True):
            plain = evaluate_sql(ndl, abox, materialised=materialised)
            optimized = evaluate_sql(ndl, abox, materialised=materialised,
                                     optimize_sql=True)
            assert optimized.answers == plain.answers == expected.answers

    def test_perfectref_survives_optimization(self, setting):
        # perfectref's UCQ blows past SQLite's compound-SELECT limit on
        # the long chain; a 3-atom chain still exercises the
        # subsumption-heavy unions it produces
        tbox, _, abox = setting
        ndl = rewrite(OMQ(tbox, chain_cq("RSR")), method="perfectref")
        expected = evaluate(ndl, abox)
        for materialised in (False, True):
            optimized = evaluate_sql(ndl, abox, materialised=materialised,
                                     optimize_sql=True)
            assert optimized.answers == expected.answers

    @hypothesis_settings(max_examples=25)
    @given(query=_random_query(), abox=_random_abox())
    def test_random_programs_agree(self, query, abox):
        expected = evaluate(query, abox).answers
        for materialised in (False, True):
            optimized = evaluate_sql(query, abox,
                                     materialised=materialised,
                                     optimize_sql=True)
            assert optimized.answers == expected


class TestDeltaSequences:
    def test_duplicate_insert_keeps_base_tables_sets(self):
        clause = Clause(Literal("G", ("x", "y")),
                        (Literal("R", ("x", "y")),))
        query = _query([clause], "G", ("x", "y"))
        abox = ABox.parse("R(a,b), R(b,c)")
        with SQLEngine(abox) as engine:
            engine.evaluate(query)
            # (a,b) is already present; (c,d) is new
            engine.apply_delta({"R": [("a", "b"), ("c", "d")]}, {})
            abox.add("R", "c", "d")
            plain = engine.evaluate(query, optimize_sql=False)
            optimized = engine.evaluate(query, optimize_sql=True)
            assert plain.answers == optimized.answers \
                == {("a", "b"), ("b", "c"), ("c", "d")}
            # DISTINCT elision would expose duplicate rows here
            assert plain.generated_tuples == optimized.generated_tuples

    def test_update_sequences_agree_across_engines(self):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RS"))
        options = AnswerOptions(optimize_sql=True)
        script = [
            ("insert", [("R", ("a", "e")), ("A_P", ("c",))]),
            ("insert", [("R", ("a", "b")), ("S", ("e", "c"))]),
            ("delete", [("R", ("a", "b"))]),
            ("insert", [("R", ("a", "b")), ("R", ("e", "e"))]),
        ]
        for engine in available_engines():
            state = {("R", ("a", "b")), ("S", ("b", "c")),
                     ("A_P", ("b",))}
            abox = ABox()
            for predicate, args in state:
                abox.add(predicate, *args)
            with AnswerSession(abox, engine=engine) as session:
                plan = session.compile(omq, options)
                for op, atoms in script:
                    if op == "insert":
                        session.insert_facts(atoms)
                        state.update(atoms)
                    else:
                        session.delete_facts(atoms)
                        state.difference_update(atoms)
                    fresh = ABox()
                    for predicate, args in state:
                        fresh.add(predicate, *args)
                    expected = evaluate(
                        rewrite(omq, method="ucq"),
                        fresh.complete(tbox)).answers
                    result = plan.execute(session, engine=engine,
                                          options=options)
                    assert result.answers == expected, \
                        (engine, op, sorted(state))
