"""Tests for the PerfectRef rewriter (our Clipper stand-in)."""

import pytest

from repro.chase import certain_answers
from repro.datalog import evaluate
from repro.ontology import TBox
from repro.queries import CQ, chain_cq
from repro.rewriting import perfectref_rewrite

from .helpers import deep_tbox, example11_tbox, random_data


class TestCorrectness:
    @pytest.mark.parametrize("labels", ["R", "RS", "RSR"])
    def test_matches_oracle_over_raw_data(self, labels):
        tbox = example11_tbox()
        query = chain_cq(labels)
        ndl = perfectref_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed, binary=("P", "R", "S"),
                               unary=("A_P", "A_P-", "A_S"))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox).answers  # NOT completed
            assert got == expected, f"seed {seed}"

    def test_existential_witness_step(self):
        # A <= EP must let P(x, _) rewrite to A(x)
        tbox = TBox.parse("roles: P\nA <= EP")
        query = CQ.parse("P(x, y)", answer_vars=["x"])
        ndl = perfectref_rewrite(tbox, query)
        from repro.data import ABox

        got = evaluate(ndl, ABox.parse("A(a)")).answers
        assert got == {("a",)}

    def test_reduce_step_needed(self):
        # R(x0,x1) & S(x1,x2): unify through P to enable A_P- collapse
        tbox = example11_tbox()
        query = chain_cq("RS")
        ndl = perfectref_rewrite(tbox, query)
        from repro.data import ABox

        # A_P-(b): w with P(w, b): R(b, w) and S(w, b) both entailed,
        # so x0 = x2 = b is an answer with x1 = w
        got = evaluate(ndl, ABox.parse("A_P-(b)")).answers
        assert got == {("b", "b")}

    def test_deep_ontology(self):
        tbox = deep_tbox()
        query = chain_cq("RQ")
        ndl = perfectref_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed + 70)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox).answers
            assert got == expected, f"seed {seed}"

    def test_unary_query(self):
        tbox = deep_tbox()
        query = CQ.parse("B(x)", answer_vars=["x"])
        ndl = perfectref_rewrite(tbox, query)
        for seed in range(4):
            abox = random_data(seed + 100)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox).answers
            assert got == expected, f"seed {seed}"


class TestLimits:
    def test_budget_guard(self):
        tbox = example11_tbox()
        with pytest.raises(RuntimeError):
            perfectref_rewrite(tbox, chain_cq("RSRRSRRSR"), max_cqs=20)

    def test_rejects_reflexivity(self):
        tbox = TBox.parse("roles: P\nrefl(P)")
        with pytest.raises(ValueError):
            perfectref_rewrite(tbox, CQ.parse("P(x, y)"))
