"""Tests for repro.queries.cq (shape classification and helpers)."""

import pytest

from repro.queries import CQ, Atom, binary, chain_cq, unary


class TestConstruction:
    def test_parse(self):
        query = CQ.parse("R(x, y), A(y)", answer_vars=["x"])
        assert Atom("R", ("x", "y")) in query
        assert Atom("A", ("y",)) in query
        assert query.answer_vars == ("x",)

    def test_answer_var_must_occur(self):
        with pytest.raises(ValueError):
            CQ([binary("R", "x", "y")], ("z",))

    def test_atom_arity_check(self):
        with pytest.raises(ValueError):
            Atom("R", ("x", "y", "z"))

    def test_duplicate_atoms_collapse(self):
        query = CQ([binary("R", "x", "y"), binary("R", "x", "y")], ())
        assert len(query) == 1

    def test_equality_ignores_atom_order(self):
        first = CQ([binary("R", "x", "y"), unary("A", "x")], ("x",))
        second = CQ([unary("A", "x"), binary("R", "x", "y")], ("x",))
        assert first == second

    def test_chain_cq(self):
        query = chain_cq("RS")
        assert query.answer_vars == ("x0", "x2")
        assert Atom("R", ("x0", "x1")) in query
        assert Atom("S", ("x1", "x2")) in query


class TestShapes:
    def test_chain_is_linear(self):
        query = chain_cq("RSRR")
        assert query.is_tree_shaped
        assert query.is_linear
        assert query.number_of_leaves == 2
        assert query.treewidth() == 1

    def test_star_is_tree_not_linear(self):
        query = CQ.parse("R(c, x), R(c, y), R(c, z)")
        assert query.is_tree_shaped
        assert not query.is_linear
        assert query.number_of_leaves == 3

    def test_cycle_is_not_tree(self):
        query = CQ.parse("R(x, y), R(y, z), R(z, x)")
        assert not query.is_tree_shaped
        assert query.treewidth() == 2

    def test_single_variable(self):
        query = CQ.parse("A(x)")
        assert query.is_tree_shaped
        assert query.is_connected

    def test_disconnected(self):
        query = CQ.parse("R(x, y), R(u, v)")
        assert not query.is_connected
        assert len(query.connected_components()) == 2

    def test_self_loop_does_not_affect_shape(self):
        query = CQ.parse("R(x, y), P(y, y)")
        assert query.is_tree_shaped

    def test_existential_vars(self):
        query = CQ.parse("R(x, y), S(y, z)", answer_vars=["x"])
        assert query.existential_vars == {"y", "z"}


class TestHelpers:
    def test_distances(self):
        query = chain_cq("RSR")
        distances = query.distances_from("x0")
        assert distances == {"x0": 0, "x1": 1, "x2": 2, "x3": 3}

    def test_atoms_between(self):
        query = CQ.parse("R(x, y), S(y, x), A(x)")
        assert len(query.atoms_between("x", "y")) == 2

    def test_loop_atoms(self):
        query = CQ.parse("P(x, x), R(x, y)")
        assert query.loop_atoms("x") == [Atom("P", ("x", "x"))]

    def test_restrict_to(self):
        query = CQ.parse("R(x, y), S(y, z)", answer_vars=["x"])
        sub = query.restrict_to({"x", "y"}, ("x",))
        assert len(sub) == 1
        assert Atom("R", ("x", "y")) in sub
