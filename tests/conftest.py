"""Suite-wide pytest configuration.

Adds the ``--update-golden`` flag: golden-answer regression tests
(:mod:`tests.test_golden`) normally *compare* against the snapshots in
``tests/golden/*.json``; with the flag they *rewrite* the snapshots
from the current engine output instead (then still verify them, so a
nondeterministic pipeline cannot silently bless itself).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate tests/golden/*.json from current engine output "
             "instead of comparing against it")


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")
