"""Tests for the TBox parsing DSL and normalisation."""

import pytest

from repro.ontology import TBox
from repro.ontology.axioms import (
    ConceptDisjointness,
    ConceptInclusion,
    Irreflexivity,
    Reflexivity,
    RoleDisjointness,
    RoleInclusion,
)
from repro.ontology.terms import Atomic, Exists, Role


class TestParsing:
    def test_concept_inclusion(self):
        tbox = TBox.parse("roles: P\nA <= EP")
        assert ConceptInclusion(Atomic("A"),
                                Exists(Role("P"))) in tbox.user_axioms

    def test_role_inclusion_with_declaration(self):
        tbox = TBox.parse("roles: P, S\nP <= S")
        assert RoleInclusion(Role("P"), Role("S")) in tbox.user_axioms

    def test_role_inclusion_with_inverse(self):
        tbox = TBox.parse("roles: P, R\nP <= R-")
        assert RoleInclusion(Role("P"), Role("R", True)) in tbox.user_axioms

    def test_undeclared_names_become_concepts(self):
        tbox = TBox.parse("A <= B")
        assert ConceptInclusion(Atomic("A"), Atomic("B")) in tbox.user_axioms

    def test_reflexivity(self):
        tbox = TBox.parse("refl(P)")
        assert Reflexivity(Role("P")) in tbox.user_axioms

    def test_irreflexivity(self):
        tbox = TBox.parse("irrefl(P)")
        assert Irreflexivity(Role("P")) in tbox.user_axioms

    def test_concept_disjointness(self):
        tbox = TBox.parse("A & B <= bottom")
        assert ConceptDisjointness(Atomic("A"),
                                   Atomic("B")) in tbox.user_axioms

    def test_role_disjointness(self):
        tbox = TBox.parse("roles: P, S\nP & S <= bottom")
        assert RoleDisjointness(Role("P"), Role("S")) in tbox.user_axioms

    def test_comments_and_semicolons(self):
        tbox = TBox.parse("roles: P  # the only role\nA <= EP; B <= A")
        assert len(tbox.user_axioms) == 2

    def test_unparseable_statement_raises(self):
        with pytest.raises(ValueError):
            TBox.parse("this is not an axiom")


class TestNormalisation:
    def test_surrogates_for_all_roles(self):
        tbox = TBox.parse("roles: P\nA <= EP")
        names = tbox.atomic_concept_names
        assert "A_P" in names and "A_P-" in names

    def test_surrogate_axioms_present(self):
        tbox = TBox.parse("roles: P\nA <= EP")
        role = Role("P")
        assert tbox.entails_concept(tbox.surrogate(role), Exists(role))
        assert tbox.entails_concept(Exists(role), tbox.surrogate(role))

    def test_roles_closed_under_inverse(self):
        tbox = TBox.parse("roles: P, S\nP <= S")
        assert Role("P", True) in tbox.roles
        assert Role("S", True) in tbox.roles

    def test_axioms_include_normalisation(self):
        tbox = TBox.parse("roles: P\nA <= EP")
        assert len(tbox.axioms) == len(tbox.user_axioms) + len(
            tbox.normalisation_axioms)
        # two normalisation axioms per role (P and P-)
        assert len(tbox.normalisation_axioms) == 4
