"""The observability layer: metrics, tracing, logging, export surfaces.

Four contracts:

* the metrics registry's histogram percentile math and Prometheus
  text rendering are correct;
* both HTTP front-ends serve ``GET /metrics`` with an *identical*
  family set (they share the service registry, so this holds by
  construction — the test pins it at the wire level);
* every response echoes ``X-Repro-Trace-Id`` (honoring a sane inbound
  ID), error bodies carry ``trace_id``, and a traced ``/answer``
  returns a span breakdown that reaches through the micro-batch pool
  and the sharded process executor;
* the no-trace fast path is a shared no-op, so instrumentation stays
  out of the way when nobody asked for a trace.
"""

import io
import json
import logging
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import OMQ, Client, ServiceError
from repro.obs import (Observability, configure_logging, get_logger,
                       parse_prometheus_families)
from repro.obs import logs as obs_logs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import _NULL_SPAN, Trace, span, tracing
from repro.queries import chain_cq
from repro.service import OMQService, serve_in_background
from repro.service.serve import build_server

from .helpers import example11_tbox, random_data

TBOX = example11_tbox()

QUERY_PAYLOAD = {
    "dataset": "demo",
    "tbox_text": "roles: P, R, S\nP <= S\nP <= R-",
    "query": "R(x, y), S(y, z)",
    "answers": ["x", "z"],
}


def _http(base, path, payload=None, headers=None):
    """One raw HTTP round trip: ``(status, headers, decoded body)``."""
    all_headers = {"Content-Type": "application/json"}
    all_headers.update(headers or {})
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(base + path, data, all_headers)
    try:
        with urllib.request.urlopen(request) as response:
            raw = response.read()
            status, reply_headers = response.status, dict(response.headers)
    except urllib.error.HTTPError as error:
        raw, status, reply_headers = error.read(), error.code, \
            dict(error.headers)
    content_type = reply_headers.get("Content-Type", "")
    if content_type.startswith("application/json"):
        return status, reply_headers, json.loads(raw)
    return status, reply_headers, raw.decode()


@pytest.fixture
def threaded_url():
    service = OMQService(max_workers=2)
    service.register_dataset("demo", random_data(1))
    server = build_server(service, port=0, verbose=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    service.close()


@pytest.fixture
def async_url():
    service = OMQService(max_workers=2)
    service.register_dataset("demo", random_data(1))
    with serve_in_background(service) as handle:
        yield handle.url, service
    service.close()


# -- histogram math ---------------------------------------------------------


class TestHistogramPercentiles:
    def test_single_observation_is_exact(self):
        hist = MetricsRegistry().histogram("h_seconds", "test")
        hist.observe(0.0421)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["p50"] == pytest.approx(0.0421)
        assert summary["p95"] == pytest.approx(0.0421)
        assert summary["p99"] == pytest.approx(0.0421)

    def test_percentiles_ordered_and_bounded(self):
        hist = MetricsRegistry().histogram("h_seconds", "test")
        values = [0.001 * i for i in range(1, 101)]
        for value in values:
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(sum(values) / 100,
                                                rel=1e-6)
        assert min(values) <= summary["p50"] <= summary["p95"] \
            <= summary["p99"] <= max(values)
        # the median of 1..100 ms is ~50ms; the log buckets put it in
        # [25ms, 50ms], so interpolation must land in that vicinity
        assert 0.02 <= summary["p50"] <= 0.06

    def test_percentiles_clamped_to_observed_range(self):
        hist = MetricsRegistry().histogram("h_seconds", "test")
        for _ in range(50):
            hist.observe(0.003)
        summary = hist.summary()
        assert summary["p99"] == pytest.approx(0.003)

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total", "test")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_registry_rejects_type_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "test")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "test")


class TestPrometheusRendering:
    def test_text_format(self):
        registry = MetricsRegistry()
        counter = registry.counter("demo_total", "A demo counter.",
                                   ("kind",))
        counter.labels(kind="a").inc(3)
        hist = registry.histogram("demo_seconds", "A demo histogram.")
        hist.observe(0.004)
        hist.observe(0.2)
        text = registry.render_prometheus()
        assert "# HELP demo_total A demo counter." in text
        assert "# TYPE demo_total counter" in text
        assert 'demo_total{kind="a"} 3' in text
        assert "# TYPE demo_seconds histogram" in text
        assert 'demo_seconds_bucket{le="+Inf"} 2' in text
        assert "demo_seconds_count 2" in text
        assert "demo_seconds_sum" in text
        # buckets are cumulative: the 0.25s bucket holds both samples
        assert 'demo_seconds_bucket{le="0.25"} 2' in text

    def test_parse_families_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "test")
        registry.gauge("b", "test")
        registry.histogram("c_seconds", "test")
        families = parse_prometheus_families(
            registry.render_prometheus())
        assert families == {"a_total": "counter", "b": "gauge",
                            "c_seconds": "histogram"}


# -- /metrics on both front-ends -------------------------------------------


class TestMetricsEndpoint:
    def test_threaded_metrics(self, threaded_url):
        url, _ = threaded_url
        status, headers, text = _http(url, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        assert "repro_http_requests_total" in text

    def test_family_parity_threaded_vs_async(self, threaded_url,
                                             async_url):
        threaded, _ = threaded_url
        asynced, _ = async_url
        # exercise different routes on each before scraping: families
        # are created eagerly, so the sets must match anyway
        _http(threaded, "/answer", QUERY_PAYLOAD)
        _http(asynced, "/stats")
        _, _, threaded_text = _http(threaded, "/metrics")
        _, _, async_text = _http(asynced, "/metrics")
        threaded_families = parse_prometheus_families(threaded_text)
        async_families = parse_prometheus_families(async_text)
        assert threaded_families == async_families
        assert "repro_answer_seconds" in threaded_families
        assert "repro_async_requests_total" in threaded_families

    def test_http_counters_move(self, async_url):
        url, service = async_url
        before = int(service.obs.http_requests.labels(
            route="/answer", method="POST", status="200").value)
        status, _, _ = _http(url, "/answer", QUERY_PAYLOAD)
        assert status == 200
        # accounting runs in the handler's finally, after the response
        # bytes go out — poll briefly instead of racing it
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            after = int(service.obs.http_requests.labels(
                route="/answer", method="POST", status="200").value)
            if after == before + 1:
                break
            time.sleep(0.01)
        assert after == before + 1
        assert service.obs.http_seconds.labels(
            route="/answer").summary()["count"] >= 1


# -- trace IDs on the wire --------------------------------------------------


class _TraceWireContract:
    """Header echo + error attribution, run against both servers."""

    def test_response_echoes_minted_trace_id(self, server_url):
        url, _ = server_url
        status, headers, _ = _http(url, "/health")
        assert status == 200
        assert headers.get("X-Repro-Trace-Id")

    def test_inbound_trace_id_is_honored(self, server_url):
        url, _ = server_url
        status, headers, _ = _http(
            url, "/answer", QUERY_PAYLOAD,
            headers={"X-Repro-Trace-Id": "req-12345"})
        assert status == 200
        assert headers["X-Repro-Trace-Id"] == "req-12345"

    def test_error_body_carries_trace_id(self, server_url):
        url, _ = server_url
        payload = dict(QUERY_PAYLOAD, dataset="missing")
        status, headers, body = _http(
            url, "/answer", payload,
            headers={"X-Repro-Trace-Id": "err-42"})
        assert status >= 400
        assert body["trace_id"] == "err-42"
        assert headers["X-Repro-Trace-Id"] == "err-42"

    def test_client_surfaces_trace_id(self, server_url):
        url, _ = server_url
        client = Client.connect(url)
        omq = OMQ(TBOX, chain_cq("RS"))
        client.answer("demo", omq)
        assert client.last_trace_id
        with pytest.raises(ServiceError) as info:
            client.answer("missing", omq)
        assert info.value.trace_id == client.last_trace_id

    def test_traced_answer_returns_spans(self, server_url):
        url, _ = server_url
        client = Client.connect(url)
        omq = OMQ(TBOX, chain_cq("RS"))
        client.answer("demo", omq)  # warm the rewriting cache
        result = client.answer("demo", omq, trace=True)
        assert result.trace is not None
        assert result.trace["trace_id"] == client.last_trace_id
        names = {entry["name"] for entry in result.trace["spans"]}
        assert {"decode", "cache-lookup", "execute",
                "encode"} <= names
        untraced = client.answer("demo", omq)
        assert untraced.trace is None


class TestThreadedTraceWire(_TraceWireContract):
    @pytest.fixture
    def server_url(self, threaded_url):
        return threaded_url


class TestAsyncTraceWire(_TraceWireContract):
    @pytest.fixture
    def server_url(self, async_url):
        return async_url


# -- end-to-end through the sharded process executor ------------------------


class TestShardedTrace:
    @pytest.fixture
    def sharded_service(self):
        service = OMQService(max_workers=2, shard_executor="process")
        service.register_dataset(
            "demo", random_data(3, individuals=24, atoms=120), shards=3)
        yield service
        service.close()

    def test_trace_reaches_shard_workers(self, sharded_service):
        omq = OMQ(TBOX, chain_cq("RS"))
        active = Trace(wanted=True)
        with tracing(active):
            sharded_service.answer("demo", omq)
        payload = active.payload()
        execute = [entry for entry in payload["spans"]
                   if entry["name"] == "execute"]
        assert execute, payload
        children = {child["name"]
                    for child in execute[0].get("children", ())}
        shard_spans = {name for name in children
                       if name.startswith("shard-")}
        assert len(shard_spans) >= 2, children
        assert payload["annotations"]["plan_fingerprint"]

    def test_http_trace_covers_wall_time(self, sharded_service):
        server = build_server(sharded_service, port=0, verbose=False)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            _http(url, "/answer", QUERY_PAYLOAD)  # warm plan + workers
            started = time.perf_counter()
            status, headers, body = _http(
                url, "/answer", dict(QUERY_PAYLOAD, trace=True))
            wall = time.perf_counter() - started
            assert status == 200
            trace = body["trace"]
            assert trace["trace_id"] == headers["X-Repro-Trace-Id"]
            names = [entry["name"] for entry in trace["spans"]]
            assert len(set(names)) >= 4, names
            total = sum(entry["seconds"] for entry in trace["spans"])
            # the spans must cover the bulk of the request; the
            # uncovered remainder is connection setup + header
            # parsing, which stays small next to sharded execution
            assert total <= wall * 1.2
            assert total >= wall * 0.5 - 0.005, (total, wall, names)
            assert body["cached_rewriting"] is True
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()


# -- slow-query log ---------------------------------------------------------


class TestSlowQueryLog:
    def test_slow_requests_are_logged_with_trace(self, threaded_url):
        url, service = threaded_url
        service.obs.slow_query_ms = 0.0  # everything is "slow"
        status, headers, _ = _http(
            url, "/answer", QUERY_PAYLOAD,
            headers={"X-Repro-Trace-Id": "slow-1"})
        assert status == 200
        # the request is accounted *after* the response bytes go out,
        # so the log entry can trail the client's read by a beat
        deadline = time.perf_counter() + 5.0
        entries = []
        while not entries and time.perf_counter() < deadline:
            entries = [entry for entry in service.obs.slow_query_log()
                       if entry.get("trace_id") == "slow-1"]
            if not entries:
                time.sleep(0.01)
        service.obs.slow_query_ms = None
        assert entries, service.obs.slow_query_log()
        entry = entries[0]
        assert entry["route"] == "/answer"
        assert entry["plan_fingerprint"]
        assert any(span_entry["name"] == "execute"
                   for span_entry in entry["spans"])
        _, _, stats = _http(url, "/stats")
        obs_stats = stats["observability"]
        assert obs_stats["slow_queries"] >= 1
        assert any(item.get("trace_id") == "slow-1"
                   for item in obs_stats["slow_query_log"])
        assert "/answer" in obs_stats["latency"]


# -- overhead guard ---------------------------------------------------------


class TestOverheadGuard:
    def test_inactive_span_is_shared_noop(self):
        assert span("anything") is _NULL_SPAN
        with span("anything") as entry:
            assert entry is _NULL_SPAN

    def test_inactive_span_is_cheap(self):
        started = time.perf_counter()
        for _ in range(20000):
            with span("x"):
                pass
        # 20k no-op spans in well under a second: the instrumented
        # hot path costs microseconds when no trace is active
        assert time.perf_counter() - started < 1.0

    def test_tracing_overhead_within_noise(self):
        with Client.local(max_workers=1) as client:
            client.register_dataset("demo", random_data(2))
            omq = OMQ(TBOX, chain_cq("RS"))
            client.answer("demo", omq)  # warm cache + session

            def loop(traced: bool) -> float:
                started = time.perf_counter()
                for _ in range(20):
                    client.answer("demo", omq, trace=traced)
                return time.perf_counter() - started

            loop(False)  # fully warm both paths before timing
            loop(True)
            bare = min(loop(False), loop(False))
            traced = min(loop(True), loop(True))
            # tracing records a handful of spans per request — the
            # cost must stay within scheduler noise of the bare loop
            assert traced <= bare * 3 + 0.05, (bare, traced)


# -- logging ----------------------------------------------------------------


class TestLogging:
    def teardown_method(self):
        obs_logs._reset_for_tests()

    def test_json_lines_with_trace_id(self):
        stream = io.StringIO()
        configure_logging("info", json_output=True, stream=stream)
        logger = get_logger("test")
        active = Trace()
        with tracing(active):
            logger.info("hello %s", "world", extra={"route": "/answer"})
        record = json.loads(stream.getvalue().strip())
        assert record["message"] == "hello world"
        assert record["logger"] == "repro.test"
        assert record["level"] == "INFO"
        assert record["trace_id"] == active.trace_id
        assert record["route"] == "/answer"

    def test_plain_format_appends_trace_id(self):
        stream = io.StringIO()
        configure_logging("info", json_output=False, stream=stream)
        active = Trace()
        with tracing(active):
            get_logger("test").warning("careful")
        line = stream.getvalue()
        assert "careful" in line
        assert active.trace_id in line

    def test_level_filtering_and_idempotent_reconfigure(self):
        stream = io.StringIO()
        configure_logging("warning", json_output=True, stream=stream)
        configure_logging("warning", json_output=True, stream=stream)
        logger = get_logger("test")
        logger.info("dropped")
        logger.warning("kept")
        lines = [line for line in stream.getvalue().splitlines() if line]
        assert len(lines) == 1  # one handler, info filtered out
        assert json.loads(lines[0])["message"] == "kept"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("loud")

    def test_repro_loggers_share_hierarchy(self):
        assert get_logger("service").name == "repro.service"
        assert isinstance(get_logger("obs"), logging.Logger)
