"""Tests for repro.data.abox (data instances and completion)."""

import pytest

from repro.data import ABox
from repro.ontology import TBox, Role


@pytest.fixture
def example11():
    return TBox.parse("roles: P, R, S\nP <= S\nP <= R-")


class TestABoxBasics:
    def test_parse_and_contains(self):
        abox = ABox.parse("A(a), P(a, b)")
        assert ("A", ("a",)) in abox
        assert ("P", ("a", "b")) in abox
        assert ("P", ("b", "a")) not in abox

    def test_individuals(self):
        abox = ABox.parse("A(a), P(b, c)")
        assert abox.individuals == {"a", "b", "c"}

    def test_len_counts_atoms(self):
        abox = ABox.parse("A(a), A(b), P(a, b)")
        assert len(abox) == 3

    def test_duplicates_ignored(self):
        abox = ABox()
        abox.add("A", "a")
        abox.add("A", "a")
        assert len(abox) == 1

    def test_arity_check(self):
        abox = ABox()
        with pytest.raises(ValueError):
            abox.add("T", "a", "b", "c")

    def test_role_view_direct(self):
        abox = ABox.parse("P(a, b)")
        assert abox.has_role(Role("P"), "a", "b")
        assert not abox.has_role(Role("P"), "b", "a")

    def test_role_view_inverse(self):
        abox = ABox.parse("P(a, b)")
        assert abox.has_role(Role("P", True), "b", "a")

    def test_role_pairs_inverse(self):
        abox = ABox.parse("P(a, b)")
        assert list(abox.role_pairs(Role("P", True))) == [("b", "a")]

    def test_atoms_iteration_is_sorted(self):
        abox = ABox.parse("B(b), A(a), P(a, b)")
        assert list(abox.atoms()) == [
            ("A", ("a",)), ("B", ("b",)), ("P", ("a", "b"))]


class TestCompletion:
    def test_role_inclusion_materialised(self, example11):
        abox = ABox.parse("P(a, b)")
        completed = abox.complete(example11)
        assert ("S", ("a", "b")) in completed
        assert ("R", ("b", "a")) in completed

    def test_surrogates_materialised(self, example11):
        abox = ABox.parse("P(a, b)")
        completed = abox.complete(example11)
        assert ("A_P", ("a",)) in completed
        assert ("A_P-", ("b",)) in completed
        assert ("A_S", ("a",)) in completed
        assert ("A_R", ("b",)) in completed

    def test_original_atoms_kept(self, example11):
        abox = ABox.parse("P(a, b), X(a)")
        completed = abox.complete(example11)
        assert ("P", ("a", "b")) in completed
        assert ("X", ("a",)) in completed  # predicates outside the TBox

    def test_completion_idempotent(self, example11):
        completed = ABox.parse("P(a, b), A_P(c)").complete(example11)
        assert completed.is_complete_for(example11)
        assert len(completed.complete(example11)) == len(completed)

    def test_reflexive_roles_add_loops(self):
        tbox = TBox.parse("roles: P\nrefl(P)")
        completed = ABox.parse("A(a)").complete(tbox)
        assert ("P", ("a", "a")) in completed

    def test_concept_hierarchy(self):
        tbox = TBox.parse("A <= B\nB <= C")
        completed = ABox.parse("A(a)").complete(tbox)
        assert ("B", ("a",)) in completed
        assert ("C", ("a",)) in completed
