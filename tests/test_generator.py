"""Tests for repro.data.generator."""

from repro.data import (
    TABLE2_SPECS,
    chain_abox,
    erdos_renyi_abox,
    paper_datasets,
    random_abox,
)


class TestErdosRenyi:
    def test_deterministic_for_seed(self):
        first = erdos_renyi_abox(50, 0.1, 0.2, seed=7)
        second = erdos_renyi_abox(50, 0.1, 0.2, seed=7)
        assert list(first.atoms()) == list(second.atoms())

    def test_different_seeds_differ(self):
        first = erdos_renyi_abox(50, 0.1, 0.2, seed=1)
        second = erdos_renyi_abox(50, 0.1, 0.2, seed=2)
        assert list(first.atoms()) != list(second.atoms())

    def test_edge_count_near_expectation(self):
        abox = erdos_renyi_abox(100, 0.05, 0.0, seed=3)
        edges = len(abox.binary("R"))
        expected = 100 * 99 * 0.05
        assert 0.6 * expected < edges < 1.4 * expected

    def test_no_self_loops(self):
        abox = erdos_renyi_abox(30, 0.3, 0.0, seed=4)
        assert all(a != b for a, b in abox.binary("R"))

    def test_marks_generated(self):
        abox = erdos_renyi_abox(200, 0.0, 0.5, seed=5)
        assert abox.unary("A_P")
        assert abox.unary("A_P-")

    def test_zero_probability_edges(self):
        abox = erdos_renyi_abox(20, 0.0, 1.0, seed=6)
        assert not abox.binary_predicates

    def test_probability_one_edges(self):
        abox = erdos_renyi_abox(5, 1.0, 0.0, seed=6)
        assert len(abox.binary("R")) == 5 * 4


class TestPaperDatasets:
    def test_four_datasets(self):
        datasets = paper_datasets(scale=0.02)
        assert set(datasets) == {spec.name for spec in TABLE2_SPECS}

    def test_scaling_preserves_degree(self):
        datasets = paper_datasets(scale=0.05, seed=1)
        # dataset 1: average degree 50 at any scale
        abox = datasets["1.ttl"]
        vertices = max(10, int(1000 * 0.05))
        edges = len(abox.binary("R"))
        assert 0.5 * 50 * vertices < edges < 1.5 * 50 * vertices


class TestOtherGenerators:
    def test_chain(self):
        abox = chain_abox("RSR")
        assert ("R", ("c0", "c1")) in abox
        assert ("S", ("c1", "c2")) in abox
        assert ("R", ("c2", "c3")) in abox

    def test_random_abox_bounded(self):
        abox = random_abox(5, 20, ["A"], ["P"], seed=9)
        assert len(abox.individuals) <= 5
        assert len(abox) <= 20
