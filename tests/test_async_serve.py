"""The asyncio serving front-end, tested differentially.

The contract: ``repro serve --async-io`` must be *invisible* to a
correct client — same JSON protocol, same parsing, same errors, same
answers as the threaded server and the embedded service — while
coalescing identical in-flight requests, micro-batching, and pushing
back with 429 when saturated.

The load test drives ~100 concurrent mixed requests (hot repeats,
renamed-variable repeats, engine variations, cold shapes) through the
async server in phases with incremental updates interleaved, and
compares every single response against an embedded
:class:`~repro.client.Client` answering the same workload over the
same evolving data.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro import OMQ, AsyncClient, Client, ServiceError
from repro.queries import CQ, chain_cq
from repro.service import OMQService, serve_in_background
from repro.service.serve import build_server

from .helpers import example11_tbox, random_data

TBOX = example11_tbox()


def _fresh_data():
    return random_data(1, individuals=8, atoms=30)


@pytest.fixture
def async_stack():
    """A served async stack plus an embedded reference client over
    identical data."""
    service = OMQService(max_workers=4)
    service.register_dataset("demo", _fresh_data())
    reference = Client.local(max_workers=2)
    reference.register_dataset("demo", _fresh_data())
    with serve_in_background(service, batch_window=0.01,
                             max_pending=512) as handle:
        yield handle, reference
    reference.close()
    service.close()


def _phase_requests(phase: int):
    """~34 mixed requests: repeats, renamed repeats, engines, cold."""
    requests = []
    for index in range(12):  # hot, renamed per request -> coalescable
        omq = OMQ(TBOX, chain_cq("RS", prefix=f"p{phase}h{index}_"))
        requests.append((omq, {}))
    for index in range(8):  # second hot shape, on the SQL engine
        omq = OMQ(TBOX, chain_cq("RSR", prefix=f"p{phase}s{index}_"))
        requests.append((omq, {"engine": "sql"}))
    for index in range(6):  # identical objects (not even renamed)
        requests.append((OMQ(TBOX, chain_cq("SR")), {}))
    requests.append((OMQ(TBOX, CQ.parse("A_P(x)", answer_vars=["x"])), {}))
    requests.append((OMQ(TBOX, CQ.parse("R(x, y)", answer_vars=[])), {}))
    requests.append((OMQ(TBOX, chain_cq("RS")), {"method": "tw"}))
    requests.append((OMQ(TBOX, chain_cq("RS")), {"method": "ucq"}))
    for index, labels in enumerate(("RR", "SS", "RSS", "SRR", "RSRS",
                                    "SRSR")):  # cold tail
        omq = OMQ(TBOX, chain_cq(labels, prefix=f"p{phase}c{index}_"))
        requests.append((omq, {}))
    return requests


_UPDATES = (
    {"inserts": [("R", ("u1", "u2")), ("S", ("u2", "u3"))]},
    {"inserts": [("P", ("u3", "u1"))], "deletes": [("R", ("u1", "u2"))]},
)


class TestDifferentialLoad:
    def test_concurrent_mixed_workload_matches_embedded(self, async_stack):
        handle, reference = async_stack
        total = 0

        async def run_phase(client, requests):
            return await asyncio.gather(
                *[client.answer("demo", omq, **overrides)
                  for omq, overrides in requests])

        async def main():
            nonlocal total
            async with AsyncClient.connect(handle.url) as client:
                for phase, update in enumerate(_UPDATES + ({},)):
                    requests = _phase_requests(phase)
                    total += len(requests)
                    got = await run_phase(client, requests)
                    # the reference answers the same workload serially
                    # over its own copy of the (identically updated)
                    # data; every response must match exactly
                    for (omq, overrides), result in zip(requests, got):
                        expected = reference.answer("demo", omq,
                                                    **overrides)
                        assert result.sorted() == expected.sorted(), \
                            (phase, str(omq.query))
                    if update:
                        await client.update("demo", **update)
                        reference.update(
                            "demo", inserts=update.get("inserts", ()),
                            deletes=update.get("deletes", ()))
                return await client.stats()

        stats = asyncio.run(main())
        assert total >= 100
        serving = stats["async_serving"]
        # the repeat-heavy workload must actually coalesce
        assert serving["coalesced"] > 1
        assert serving["requests"] >= total
        assert serving["batches"] >= 1
        assert serving["batched_requests"] >= 1
        assert serving["rejected"] == 0
        assert serving["pending"] == 0

    def test_coalesced_requests_share_one_execution(self, async_stack):
        handle, _ = async_stack
        omqs = [OMQ(TBOX, chain_cq("RS", prefix=f"v{index}_"))
                for index in range(24)]

        async def main():
            async with AsyncClient.connect(handle.url) as client:
                results = await asyncio.gather(
                    *[client.answer("demo", omq) for omq in omqs])
                return results, await client.stats()

        results, stats = asyncio.run(main())
        assert len({result.answers for result in results}) == 1
        serving = stats["async_serving"]
        # 24 in-flight twins; at least one execution was shared (the
        # scheduler decides how many made it in before the first flush)
        assert serving["coalesced"] > 1
        assert serving["batched_requests"] + serving["coalesced"] \
            >= len(omqs)

    def test_bad_request_does_not_poison_batchmates(self, async_stack):
        # a request for an unknown dataset aborts the whole
        # answer_batch call; its batchmates must still be answered
        handle, reference = async_stack
        good = [OMQ(TBOX, chain_cq(labels))
                for labels in ("RS", "RSR", "SR")]
        bad = OMQ(TBOX, chain_cq("RS", prefix="bad_"))

        async def main():
            async with AsyncClient.connect(handle.url) as client:
                return await asyncio.gather(
                    *([client.answer("demo", omq) for omq in good]
                      + [client.answer("typo", bad)]),
                    return_exceptions=True)

        outcomes = asyncio.run(main())
        assert isinstance(outcomes[-1], ServiceError)
        assert "unknown dataset" in str(outcomes[-1])
        for (omq, result) in zip(good, outcomes):
            assert not isinstance(result, Exception)
            expected = reference.answer("demo", omq)
            assert result.answers == expected.answers

    def test_update_invalidates_coalescing(self, async_stack):
        handle, _ = async_stack
        omq = OMQ(TBOX, chain_cq("RS"))

        async def main():
            async with AsyncClient.connect(handle.url) as client:
                before = await client.answer("demo", omq)
                await client.update(
                    "demo", inserts=[("R", ("zz1", "zz2")),
                                     ("S", ("zz2", "zz3"))])
                after = await client.answer("demo", omq)
                return before, after

        before, after = asyncio.run(main())
        assert ("zz1", "zz3") not in before.answers
        assert ("zz1", "zz3") in after.answers


class TestBackpressure:
    def test_429_with_retry_after_when_saturated(self):
        service = OMQService(max_workers=1)
        service.register_dataset("demo", _fresh_data())
        omqs = [OMQ(TBOX, chain_cq(labels))
                for labels in ("RS", "RSR", "SR", "RR", "SS", "RSS")]
        try:
            # a long gathering window parks admitted work in the queue,
            # so the over-limit arrivals deterministically see depth 1
            with serve_in_background(service, batch_window=0.5,
                                     max_pending=1, workers=1) as handle:
                async def main():
                    async with AsyncClient.connect(handle.url) as client:
                        outcomes = await asyncio.gather(
                            *[client.answer("demo", omq) for omq in omqs],
                            return_exceptions=True)
                        return outcomes, await client.stats()

                outcomes, stats = asyncio.run(main())
        finally:
            service.close()
        rejected = [error for error in outcomes
                    if isinstance(error, ServiceError)
                    and error.status == 429]
        served = [result for result in outcomes
                  if not isinstance(result, Exception)]
        assert served and rejected
        assert all(error.error_type == "overloaded" for error in rejected)
        assert all(error.retry_after is not None for error in rejected)
        assert stats["async_serving"]["rejected"] == len(rejected)

    def test_coalesced_join_admitted_when_saturated(self):
        service = OMQService(max_workers=1)
        service.register_dataset("demo", _fresh_data())
        try:
            with serve_in_background(service, batch_window=0.5,
                                     max_pending=1, workers=1) as handle:
                async def main():
                    async with AsyncClient.connect(handle.url) as client:
                        # identical twins: the second joins the first
                        # in-flight execution instead of being rejected
                        omq = OMQ(TBOX, chain_cq("RS"))
                        twin = OMQ(TBOX, chain_cq("RS", prefix="w_"))
                        return await asyncio.gather(
                            client.answer("demo", omq),
                            client.answer("demo", twin))

                first, second = asyncio.run(main())
        finally:
            service.close()
        assert first.answers == second.answers


class TestProtocolParity:
    """Both servers must parse and error identically (shared Router)."""

    @pytest.fixture
    def thread_server(self):
        service = OMQService(max_workers=2)
        service.register_dataset("demo", _fresh_data())
        server = build_server(service, port=0, verbose=False)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        yield server.server_address[:2]
        server.shutdown()
        server.server_close()
        service.close()

    @pytest.fixture
    def async_server(self):
        service = OMQService(max_workers=2)
        service.register_dataset("demo", _fresh_data())
        with serve_in_background(service) as handle:
            yield handle.address
        service.close()

    @pytest.fixture(params=["thread", "async"])
    def address(self, request):
        return request.getfixturevalue(f"{request.param}_server")

    @staticmethod
    def _raw(address, payload: bytes,
             content_length: str = None) -> tuple:
        """POST /answer over a raw socket (to control the headers)."""
        length = (str(len(payload)) if content_length is None
                  else content_length)
        head = (f"POST /answer HTTP/1.1\r\nHost: repro\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {length}\r\nConnection: close\r\n\r\n")
        with socket.create_connection(address, timeout=10) as conn:
            conn.sendall(head.encode() + payload)
            conn.settimeout(10)
            chunks = []
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        raw = b"".join(chunks)
        status_line, _, rest = raw.partition(b"\r\n")
        status = int(status_line.split()[1])
        _, _, body = rest.partition(b"\r\n\r\n")
        return status, json.loads(body)

    def test_malformed_json_is_structured_400(self, address):
        status, body = self._raw(address, b"{not json!")
        assert status == 400
        assert body["error_type"] == "bad_request"
        assert "malformed JSON body" in body["error"]

    def test_non_object_body_is_structured_400(self, address):
        status, body = self._raw(address, b"[1, 2, 3]")
        assert status == 400
        assert body["error_type"] == "bad_request"
        assert "JSON object" in body["error"]

    def test_invalid_utf8_body_is_structured_400(self, address):
        status, body = self._raw(address, b'{"name": "caf\xe9"}')
        assert status == 400
        assert body["error_type"] == "bad_request"
        assert "UTF-8" in body["error"]

    def test_non_integer_content_length_is_structured_400(self, address):
        status, body = self._raw(address, b"", content_length="abc")
        assert status == 400
        assert body["error_type"] == "bad_request"
        assert "Content-Length" in body["error"]

    def test_framing_error_closes_the_connection(self, address):
        # an unreadable body length leaves unknowable bytes on the
        # wire; keeping the connection would parse them as the next
        # request line, so the server must close after the 400
        first = (b"POST /answer HTTP/1.1\r\nHost: repro\r\n"
                 b"Content-Type: application/json\r\n"
                 b"Content-Length: 12abc\r\n\r\n"
                 b'{"dataset": 1}')
        second = b"GET /health HTTP/1.1\r\nHost: repro\r\n\r\n"
        with socket.create_connection(address, timeout=10) as conn:
            conn.sendall(first + second)
            conn.settimeout(10)
            chunks = []
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        raw = b"".join(chunks)
        assert raw.split()[1] == b"400"
        # exactly one response: the pipelined GET must NOT have been
        # served from the desynchronized stream
        assert raw.count(b"HTTP/1.1") == 1
        assert b'"status": "ok"' not in raw

    def test_unknown_path_is_structured_404(self, address):
        host, port = address
        with Client.connect(f"http://{host}:{port}") as client:
            with pytest.raises(ServiceError) as excinfo:
                client._transport._call("/nope", {"x": 1})
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "not_found"

    def test_missing_fields_error_identically(self, address):
        host, port = address
        with Client.connect(f"http://{host}:{port}") as client:
            with pytest.raises(ServiceError, match="missing 'dataset'"):
                client._transport._call(
                    "/answer", {"tbox_text": "P <= S", "query": "S(x,y)",
                                "answers": "x"})


class TestAsyncClientSurface:
    def test_full_surface_round_trip(self):
        service = OMQService(max_workers=2)
        try:
            with serve_in_background(service) as handle:
                async def main():
                    async with AsyncClient.connect(handle.url) as client:
                        await client.register_dataset(
                            "demo", _fresh_data())
                        await client.register_tbox("uni", TBOX)
                        assert await client.datasets() == ("demo",)
                        omq = OMQ(TBOX, chain_cq("RS"))
                        result = await client.answer("demo", omq,
                                                     method="tw")
                        report = await client.explain(omq, method="tw")
                        stats = await client.stats()
                        return result, report, stats

                result, report, stats = asyncio.run(main())
        finally:
            service.close()
        assert result.method == "tw"
        assert report["method"] == "tw"
        assert report["fingerprint"] == result.plan_fingerprint
        assert stats["datasets"]["demo"]["requests"] >= 1

    def test_client_async_bridge_matches_sync(self, async_stack):
        handle, _ = async_stack
        omq = OMQ(TBOX, chain_cq("RS"))
        with Client.connect(handle.url) as client:
            sync_result = client.answer("demo", omq)

            async def main():
                return (await client.answer_async("demo", omq),
                        await client.stats_async())

            async_result, stats = asyncio.run(main())
        assert async_result.answers == sync_result.answers
        assert stats["requests"] >= 2

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError, match="plain http"):
            AsyncClient.connect("https://example.com")


class TestLifecycle:
    def test_stop_with_open_keepalive_connection(self, capsys):
        # an idle keep-alive connection parks its handler task in a
        # readline; stop() must cancel it instead of tearing the loop
        # down under it
        service = OMQService(max_workers=1)
        service.register_dataset("demo", _fresh_data())
        handle = serve_in_background(service)
        conn = socket.create_connection(handle.address, timeout=10)
        try:
            conn.sendall(b"GET /health HTTP/1.1\r\nHost: repro\r\n\r\n")
            conn.settimeout(10)
            assert b"200" in conn.recv(65536)  # served, still open
            handle.stop()
        finally:
            conn.close()
            service.close()
        captured = capsys.readouterr()
        assert "Task was destroyed" not in captured.err
        assert "Event loop is closed" not in captured.err
