"""Tests for the cost-based adaptive rewriter (repro.rewriting.adaptive),
the 'adaptable splitting strategy' proposed in Section 6."""

import math

import pytest

from repro import ABox, OMQ, chain_cq, rewrite
from repro.data.generator import erdos_renyi_abox
from repro.datalog.evaluate import evaluate
from repro.datalog.program import ADOM, Clause, Literal, NDLQuery, Program
from repro.rewriting.adaptive import (
    AdaptiveChoice,
    DataStatistics,
    PredicateStatistics,
    adaptive_rewrite,
    answer_adaptive,
    estimate_cost,
)
from repro.rewriting.api import answer

from .helpers import example11_tbox


def _query(clauses, goal, answer_vars=()):
    return NDLQuery(Program(clauses), goal, tuple(answer_vars))


class TestStatistics:
    def test_from_abox_counts_rows(self):
        abox = ABox.parse("A(a), A(b), P(a, b), P(a, c)")
        stats = DataStatistics.from_abox(abox)
        assert stats.predicate("A").size == 2
        assert stats.predicate("P").size == 2

    def test_distinct_counts_per_column(self):
        abox = ABox.parse("P(a, b), P(a, c)")
        stats = DataStatistics.from_abox(abox)
        assert stats.predicate("P").distinct == (1, 2)

    def test_missing_predicate_is_empty(self):
        stats = DataStatistics.from_abox(ABox.parse("A(a)"))
        assert stats.predicate("Nope").size == 0

    def test_adom_tracks_individuals(self):
        abox = ABox.parse("P(a, b), A(c)")
        stats = DataStatistics.from_abox(abox)
        assert stats.predicate(ADOM).size == 3
        assert stats.domain_size == 3

    def test_key_count_caps_at_size(self):
        info = PredicateStatistics(5, (4, 4))
        assert info.key_count([0, 1]) == 5
        assert info.key_count([0]) == 4
        assert info.key_count([]) == 1


class TestEstimateCost:
    def test_empty_predicate_gives_zero_output(self):
        query = _query(
            [Clause(Literal("G", ("x",)), (Literal("Nope", ("x",)),))],
            "G", ("x",))
        stats = DataStatistics.from_abox(ABox.parse("A(a)"))
        assert estimate_cost(query, stats) == 0.0

    def test_bigger_relations_cost_more(self):
        query = _query(
            [Clause(Literal("G", ("x", "z")),
                    (Literal("R", ("x", "y")), Literal("R", ("y", "z"))))],
            "G", ("x", "z"))
        small = DataStatistics.from_abox(
            ABox.parse("R(a, b), R(b, c)"))
        rows = ", ".join(f"R(a{i}, a{i + 1})" for i in range(30))
        big = DataStatistics.from_abox(ABox.parse(rows))
        assert estimate_cost(query, big) > estimate_cost(query, small)

    def test_equalities_do_not_look_like_cross_products(self):
        from repro.datalog.program import Equality

        joined = _query(
            [Clause(Literal("G", ("x",)),
                    (Literal("A", ("x",)), Literal("B", ("x",))))],
            "G", ("x",))
        equated = _query(
            [Clause(Literal("G", ("x",)),
                    (Literal("A", ("x",)), Equality("x", "y"),
                     Literal("B", ("y",))))],
            "G", ("x",))
        stats = DataStatistics.from_abox(
            ABox.parse("A(a), A(b), B(a), B(c)"))
        assert math.isclose(estimate_cost(joined, stats),
                            estimate_cost(equated, stats))

    def test_cost_is_finite_on_rewriter_outputs(self):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RSR"))
        stats = DataStatistics.from_abox(
            ABox.parse("R(a,b), S(b,c), R(c,d)").complete(tbox))
        for method in ("lin", "log", "tw"):
            cost = estimate_cost(rewrite(omq, method=method), stats)
            assert cost >= 0 and math.isfinite(cost)


class TestAdaptiveRewrite:
    @pytest.fixture(scope="class")
    def omq(self):
        return OMQ(example11_tbox(), chain_cq("RSRRSRR"))

    def test_returns_a_candidate_with_costs(self, omq):
        completed = erdos_renyi_abox(60, 0.05, 0.05, seed=2).complete(
            omq.tbox)
        choice = adaptive_rewrite(omq, completed)
        assert isinstance(choice, AdaptiveChoice)
        assert choice.method in choice.costs
        assert choice.cost == min(choice.costs.values())

    def test_chosen_query_evaluates_correctly(self, omq):
        completed = erdos_renyi_abox(60, 0.05, 0.05, seed=2).complete(
            omq.tbox)
        choice = adaptive_rewrite(omq, completed)
        expected = evaluate(rewrite(omq, method="log"), completed).answers
        assert evaluate(choice.query, completed).answers == expected

    def test_accepts_precomputed_statistics(self, omq):
        completed = erdos_renyi_abox(60, 0.05, 0.05, seed=2).complete(
            omq.tbox)
        stats = DataStatistics.from_abox(completed)
        choice = adaptive_rewrite(omq, stats, optimize_programs=False)
        assert choice.costs

    def test_inapplicable_methods_are_skipped(self):
        # a 4-cycle CQ is not tree-shaped: Lin and Tw must be skipped,
        # Log still applies
        from repro.queries.cq import CQ

        tbox = example11_tbox()
        cycle = CQ.parse("R(x,y), R(y,z), R(z,w), R(w,x)")
        choice = adaptive_rewrite(
            OMQ(tbox, cycle), ABox.parse("R(a,a)").complete(tbox),
            candidates=("lin", "log", "tw"))
        assert choice.method == "log"
        assert "lin" in choice.skipped and "tw" in choice.skipped

    def test_no_applicable_candidate_raises(self, omq):
        completed = ABox.parse("R(a,b)").complete(omq.tbox)
        from repro.queries.cq import CQ

        cycle = CQ.parse("R(x,y), R(y,z), R(z,x)")
        with pytest.raises(ValueError, match="no candidate"):
            adaptive_rewrite(OMQ(omq.tbox, cycle), completed,
                             candidates=("lin", "tw"))

    def test_adaptive_tracks_the_actual_winner(self, omq):
        # on the paper's Erdos-Renyi data (no S edges), the chosen
        # rewriting should materialise no more tuples than the worst
        # fixed strategy, and its estimate ranking should broadly agree
        # with the measured tuple counts
        completed = erdos_renyi_abox(150, 0.05, 0.05, seed=1).complete(
            omq.tbox)
        choice = adaptive_rewrite(omq, completed)
        actual = {}
        for method in choice.costs:
            ndl = rewrite(omq, method=method)
            actual[method] = evaluate(ndl, completed).generated_tuples
        chosen_actual = actual[choice.method]
        assert chosen_actual <= max(actual.values())
        best_actual = min(actual.values())
        # within a small factor of the true optimum
        assert chosen_actual <= 3 * max(best_actual, 1)


class TestAnswerAdaptive:
    def test_agrees_with_fixed_strategy_answer(self):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RSR"))
        abox = ABox.parse("R(a,b), S(b,c), R(c,d), A_P(b)")
        adaptive = answer_adaptive(omq, abox)
        fixed = answer(omq, abox, method="tw")
        assert adaptive.answers == fixed.answers

    def test_empty_data(self):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RSR"))
        assert answer_adaptive(omq, ABox()).answers == frozenset()
