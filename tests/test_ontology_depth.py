"""Tests for repro.ontology.depth (generating words and depth)."""

import math


from repro.ontology import TBox, words
from repro.ontology.depth import (
    chase_depth,
    initial_roles,
    letter_count,
    successor_roles,
)
from repro.ontology.terms import Atomic, Role


class TestDepth:
    def test_depth_zero_without_existentials(self):
        tbox = TBox.parse("roles: P, S\nP <= S\nA <= B")
        assert tbox.depth() == 0

    def test_depth_zero_still_has_length_one_words(self):
        # the footnote of Section 2: normalisation introduces words of
        # length 1 even for depth-0 ontologies
        tbox = TBox.parse("roles: P, S\nP <= S")
        assert tbox.depth() == 0
        assert chase_depth(tbox) == 1

    def test_depth_one(self):
        tbox = TBox.parse("roles: P\nA <= EP")
        assert tbox.depth() == 1

    def test_depth_two_chain(self):
        tbox = TBox.parse("roles: P, Q\nA <= EP\nEP- <= EQ")
        assert tbox.depth() == 2

    def test_infinite_depth(self):
        tbox = TBox.parse("roles: P\nA <= EP\nEP- <= A")
        assert tbox.depth() is math.inf

    def test_infinite_depth_two_cycle(self):
        tbox = TBox.parse("roles: P, Q\nEP- <= EQ\nEQ- <= EP\nA <= EP")
        assert tbox.depth() is math.inf

    def test_role_inclusion_does_not_create_depth_two(self):
        # the witness for EP satisfies ES- via the backward edge, so no
        # second-level null is generated
        tbox = TBox.parse("roles: P, S\nA <= EP\nP <= S")
        assert tbox.depth() == 1


class TestSuccessors:
    def test_successor_requires_entailment(self):
        tbox = TBox.parse("roles: P, Q\nA <= EP\nEP- <= EQ")
        assert Role("Q") in successor_roles(tbox, Role("P"))

    def test_no_successor_via_inverse_shortcut(self):
        # EP- <= EP- always, but P- may not follow P (the null's parent
        # already provides the witness)
        tbox = TBox.parse("roles: P\nA <= EP")
        assert Role("P", True) not in successor_roles(tbox, Role("P"))

    def test_reflexive_roles_are_not_letters(self):
        tbox = TBox.parse("roles: P, Q\nrefl(Q)\nA <= EP\nEP- <= EQ")
        assert Role("Q") not in successor_roles(tbox, Role("P"))
        assert letter_count(tbox) == 2  # P and P-

    def test_initial_roles(self):
        tbox = TBox.parse("roles: P, Q\nA <= EP\nA <= EQ")
        roles = initial_roles(tbox, Atomic("A"))
        assert Role("P") in roles and Role("Q") in roles


class TestWords:
    def test_epsilon_always_present(self):
        tbox = TBox.parse("roles: P\nA <= EP")
        assert () in set(words(tbox, 3))

    def test_word_lengths_bounded(self):
        tbox = TBox.parse("roles: P\nA <= EP\nEP- <= A")
        collected = list(words(tbox, 4))
        assert all(len(word) <= 4 for word in collected)
        assert any(len(word) == 4 for word in collected)

    def test_words_are_unique(self):
        tbox = TBox.parse("roles: P, Q\nA <= EP\nEP- <= EQ\nEQ- <= EP")
        collected = list(words(tbox, 5))
        assert len(collected) == len(set(collected))

    def test_consecutive_letters_satisfy_successor_relation(self):
        tbox = TBox.parse("roles: P, Q\nA <= EP\nEP- <= EQ\nEQ- <= EP")
        for word in words(tbox, 5):
            for first, second in zip(word, word[1:]):
                assert second in successor_roles(tbox, first)
