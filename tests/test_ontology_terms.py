"""Tests for repro.ontology.terms."""

from repro.ontology.terms import TOP, Atomic, Exists, Role, parse_concept


class TestRole:
    def test_inverse_flips(self):
        role = Role("P")
        assert role.inverse() == Role("P", True)

    def test_double_inverse_is_identity(self):
        role = Role("P", True)
        assert role.inverse().inverse() == role

    def test_str_direct(self):
        assert str(Role("P")) == "P"

    def test_str_inverse(self):
        assert str(Role("P", True)) == "P-"

    def test_parse_direct(self):
        assert Role.parse("P") == Role("P")

    def test_parse_inverse(self):
        assert Role.parse("P-") == Role("P", True)

    def test_parse_strips_whitespace(self):
        assert Role.parse("  P- ") == Role("P", True)

    def test_ordering_is_stable(self):
        roles = sorted([Role("S"), Role("P", True), Role("P")])
        assert roles == [Role("P"), Role("P", True), Role("S")]


class TestConcepts:
    def test_atomic_equality(self):
        assert Atomic("A") == Atomic("A")
        assert Atomic("A") != Atomic("B")

    def test_exists_holds_role(self):
        concept = Exists(Role("P", True))
        assert concept.role == Role("P", True)

    def test_parse_atomic(self):
        assert parse_concept("A") == Atomic("A")

    def test_parse_exists(self):
        assert parse_concept("EP") == Exists(Role("P"))

    def test_parse_exists_inverse(self):
        assert parse_concept("EP-") == Exists(Role("P", True))

    def test_parse_top(self):
        assert parse_concept("T") == TOP

    def test_concepts_are_hashable(self):
        assert len({Atomic("A"), Exists(Role("P")), TOP,
                    Atomic("A")}) == 3
