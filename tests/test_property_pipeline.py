"""Property-based differential tests for the optimisation layer.

Random OWL 2 QL TBoxes, tree-shaped CQs and data instances (the
strategies of ``test_property_based``) are pushed through the SQL
backend, magic sets, the optimiser and the adaptive planner; every path
must agree with the chase-based certain-answer oracle.
"""

from hypothesis import given

from repro.chase import certain_answers
from repro.datalog import evaluate
from repro.datalog.magic import evaluate_magic
from repro.datalog.optimize import optimize
from repro.rewriting import OMQ, adaptive_rewrite, answer, tw_rewrite
from repro.sql import evaluate_sql

from .helpers import hypothesis_settings
from .test_property_based import aboxes, tboxes, tree_queries

SETTINGS = hypothesis_settings(20)


def _oracle(tbox, query, abox):
    return frozenset(certain_answers(tbox, abox, query))


class TestSqlBackendAgainstOracle:
    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_sql_tables(self, tbox, query, abox):
        ndl = tw_rewrite(tbox, query)
        completed = abox.complete(tbox)
        assert (evaluate_sql(ndl, completed).answers
                == _oracle(tbox, query, abox))

    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_sql_views(self, tbox, query, abox):
        ndl = tw_rewrite(tbox, query)
        completed = abox.complete(tbox)
        assert (evaluate_sql(ndl, completed, materialised=False).answers
                == _oracle(tbox, query, abox))


class TestMagicAgainstOracle:
    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_magic_all_answers(self, tbox, query, abox):
        ndl = tw_rewrite(tbox, query)
        completed = abox.complete(tbox)
        assert (evaluate_magic(ndl, completed).answers
                == _oracle(tbox, query, abox))

    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_magic_candidate_checks(self, tbox, query, abox):
        if not query.answer_vars:
            return
        ndl = tw_rewrite(tbox, query)
        completed = abox.complete(tbox)
        expected = _oracle(tbox, query, abox)
        individuals = sorted(abox.individuals)
        # check one known answer and one arbitrary candidate
        candidates = list(expected)[:1]
        if individuals:
            candidates.append(tuple(individuals[:1] * len(query.answer_vars)))
        for candidate in candidates:
            result = evaluate_magic(ndl, completed, candidate=candidate)
            assert (candidate in result.answers) == (candidate in expected)


class TestOptimizerAgainstOracle:
    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_optimized_program(self, tbox, query, abox):
        ndl = tw_rewrite(tbox, query)
        completed = abox.complete(tbox)
        optimized = optimize(ndl, completed)
        assert (evaluate(optimized, completed).answers
                == _oracle(tbox, query, abox))


class TestAdaptiveAgainstOracle:
    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_adaptive_choice(self, tbox, query, abox):
        completed = abox.complete(tbox)
        choice = adaptive_rewrite(OMQ(tbox, query), completed)
        assert (evaluate(choice.query, completed).answers
                == _oracle(tbox, query, abox))


class TestFacadeAgainstOracle:
    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_full_pipeline(self, tbox, query, abox):
        result = answer(OMQ(tbox, query), abox, method="tw",
                        engine="sql-views", optimize_program=True,
                        magic=True)
        assert result.answers == _oracle(tbox, query, abox)
