"""Tests for repro.chase.canonical (the canonical model)."""

import pytest

from repro.chase import CanonicalModel, individual
from repro.data import ABox
from repro.ontology import Role, TBox


@pytest.fixture
def example11():
    return TBox.parse("roles: P, R, S\nP <= S\nP <= R-")


class TestIndividualPart:
    def test_data_atoms_hold(self, example11):
        model = CanonicalModel(example11, ABox.parse("P(a, b)"))
        assert model.satisfies_role("P", individual("a"), individual("b"))

    def test_entailed_role_atoms_hold(self, example11):
        model = CanonicalModel(example11, ABox.parse("P(a, b)"))
        assert model.satisfies_role("S", individual("a"), individual("b"))
        assert model.satisfies_role("R", individual("b"), individual("a"))

    def test_entailed_concepts_hold(self, example11):
        model = CanonicalModel(example11, ABox.parse("P(a, b)"))
        assert model.satisfies_concept("A_P", individual("a"))
        assert model.satisfies_concept("A_P-", individual("b"))

    def test_non_entailed_atoms_fail(self, example11):
        model = CanonicalModel(example11, ABox.parse("S(a, b)"))
        assert not model.satisfies_role("P", individual("a"),
                                        individual("b"))


class TestAnonymousPart:
    def test_surrogate_creates_witnesses(self, example11):
        # the paper's canonical model has a witness a.rho for *every*
        # entailed Exists(rho)(a): here P, plus S and R- via P <= S,
        # P <= R-
        model = CanonicalModel(example11, ABox.parse("A_P(a)"))
        children = model.children(individual("a"))
        letters = {child[1][-1] for child in children}
        assert letters == {Role("P"), Role("S"), Role("R", True)}

    def _p_child(self, model):
        return next(child for child in model.children(individual("a"))
                    if child[1][-1] == Role("P"))

    def test_witness_edges(self, example11):
        model = CanonicalModel(example11, ABox.parse("A_P(a)"))
        child = self._p_child(model)
        root = individual("a")
        assert model.satisfies_role("P", root, child)
        assert model.satisfies_role("S", root, child)
        assert model.satisfies_role("R", child, root)
        assert not model.satisfies_role("P", child, root)

    def test_witness_concepts(self, example11):
        model = CanonicalModel(example11, ABox.parse("A_P(a)"))
        child = self._p_child(model)
        assert model.satisfies_concept("A_P-", child)
        assert model.satisfies_concept("A_R", child)
        assert not model.satisfies_concept("A_P", child)

    def test_depth_bound_respected(self):
        tbox = TBox.parse("roles: P\nA <= EP\nEP- <= A")  # infinite depth
        model = CanonicalModel(tbox, ABox.parse("A(a)"), max_depth=3)
        assert all(len(word) <= 3 for _, word in model.elements())

    def test_infinite_depth_requires_bound(self):
        tbox = TBox.parse("roles: P\nA <= EP\nEP- <= A")
        with pytest.raises(ValueError):
            CanonicalModel(tbox, ABox.parse("A(a)"))

    def test_role_neighbours_cover_all_edges(self, example11):
        abox = ABox.parse("P(a, b), A_P(a)")
        model = CanonicalModel(example11, abox)
        neighbours = set(model.role_neighbours("S", individual("a")))
        assert individual("b") in neighbours
        assert any(word for _, word in neighbours)  # the witness child

    def test_reflexive_role_loops(self):
        tbox = TBox.parse("roles: P\nrefl(P)")
        model = CanonicalModel(tbox, ABox.parse("A(a)"))
        assert model.satisfies_role("P", individual("a"), individual("a"))

    def test_elements_enumeration(self, example11):
        model = CanonicalModel(example11, ABox.parse("A_P(a), A_S(b)"))
        elements = list(model.elements())
        assert individual("a") in elements
        assert individual("b") in elements
        # a gets three witnesses (P, S, R- via the hierarchy), b gets one
        assert len(elements) == 6
