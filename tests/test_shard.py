"""Sharded execution parity: ``ShardedSession`` answers must equal
monolithic answers — across engines, shard counts, connected and
disconnected CQs, and arbitrary update sequences (including updates
that merge or split Gaifman components)."""

import dataclasses
import pickle
import random

from hypothesis import given

from repro import (
    OMQ,
    AnswerOptions,
    Client,
    OMQService,
    answer,
    compile_omq,
)
from repro.data import ABox, multi_component_abox, workload_abox
from repro.queries import CQ, Atom, chain_cq
from repro.shard import Partition, ShardedSession
from repro.shard.executor import SerialExecutor

from .helpers import example11_tbox, hypothesis_settings, random_data
from .test_property_based import aboxes, tboxes, tree_queries

SETTINGS = hypothesis_settings(15)

CONNECTED_QUERIES = (
    chain_cq("RS"),
    chain_cq("RSR"),
    CQ.parse("A_P(x)", answer_vars=["x"]),
    CQ.parse("R(x, y)", answer_vars=[]),          # boolean
    CQ.parse("R(x, y), S(y, z), A_P(z)", answer_vars=["x"]),
)

DISCONNECTED_QUERIES = (
    CQ.parse("R(x, y), S(u, v)", answer_vars=["x", "u"]),
    CQ.parse("R(x, y), S(u, v)", answer_vars=["u", "x"]),
    CQ.parse("R(x, y), A_P(u)", answer_vars=["x", "y", "u"]),
    CQ.parse("R(x, y), S(u, v)", answer_vars=[]),  # boolean conjunction
    CQ.parse("A_P(x), A_P-(u), R(a, b)", answer_vars=["x"]),  # filters
)


def sharded(abox, shards=3, **kwargs):
    kwargs.setdefault("executor", "serial")
    return ShardedSession(abox, shards=shards, **kwargs)


class TestPartition:
    def test_components_respect_shards(self):
        abox = multi_component_abox(10, 6, shape="mixed", seed=1)
        partition = Partition.build(abox, 3)
        shard_aboxes = partition.shard_aboxes(abox)
        # every component's constants sit on exactly one shard
        for index in range(10):
            owners = {partition.owner_of(f"g{index}_{j}") for j in range(6)}
            assert len(owners) == 1
        # the shards partition the data: disjoint, union = master
        combined = ABox()
        for shard_abox in shard_aboxes:
            for predicate, args in shard_abox.atoms():
                assert (predicate, args) not in combined
                combined.add(predicate, *args)
        assert set(combined.atoms()) == set(abox.atoms())

    def test_balanced_packing(self):
        abox = multi_component_abox(40, 5, shape="chain", seed=2)
        partition = Partition.build(abox, 4)
        weights = partition.weights
        assert sum(weights) == len(abox)
        # equal-size components pack evenly under LPT
        assert max(weights) - min(weights) <= max(weights) / 4

    def test_deterministic(self):
        abox = multi_component_abox(12, 5, shape="random", seed=3)
        first = Partition.build(abox, 3)
        second = Partition.build(abox, 3)
        assert all(first.owner_of(c) == second.owner_of(c)
                   for c in abox.individuals)

    def test_more_shards_than_components(self):
        abox = ABox([("R", ("a", "b"))])
        partition = Partition.build(abox, 4)
        shard_aboxes = partition.shard_aboxes(abox)
        assert sum(len(a) for a in shard_aboxes) == 1

    def test_insert_merges_components(self):
        abox = ABox([("R", ("a", "b")), ("R", ("c", "d"))])
        partition = Partition.build(abox, 2)
        assert partition.owner_of("a") != partition.owner_of("c")
        inserts, deletes = partition.route_inserts(
            [("S", ("b", "c"))], abox)
        # after the merge every constant lives on one shard, and the
        # moved component's atoms were rehomed delete+insert
        owners = {partition.owner_of(c) for c in "abcd"}
        assert len(owners) == 1
        moved = [atom for atoms in deletes.values() for atom in atoms]
        assert moved  # one of the two components moved
        routed = [atom for atoms in inserts.values() for atom in atoms]
        assert ("S", ("b", "c")) in routed

    def test_bulk_insert_of_new_components_spreads(self):
        partition = Partition.build(ABox([("R", ("a", "b"))]), 4)
        atoms = [("R", (f"n{i}_0", f"n{i}_1")) for i in range(40)]
        inserts, _ = partition.route_inserts(atoms, ABox())
        # 40 fresh components must spread over the shards, not pile on
        # the lightest one as of the start of the round
        assert len(inserts) == 4
        assert max(partition.weights) - min(partition.weights) <= 1

    @staticmethod
    def _replay_matches_fresh_routing(abox, shards, atoms):
        """Routed deltas applied to the pre-round shard ABoxes must
        reproduce a fresh routing of the final data under the updated
        assignment — the invariant every worker relies on."""
        partition = Partition.build(abox, shards)
        shard_aboxes = partition.shard_aboxes(abox)
        inserts, deletes = partition.route_inserts(atoms, abox)
        for shard, routed in deletes.items():
            for predicate, args in routed:
                shard_aboxes[shard].discard(predicate, *args)
        for shard, routed in inserts.items():
            for predicate, args in routed:
                shard_aboxes[shard].add(predicate, *args)
        final = ABox(abox.atoms())
        for predicate, args in atoms:
            final.add(predicate, *args)
        fresh = partition.shard_aboxes(final)
        for shard in range(shards):
            assert (set(shard_aboxes[shard].atoms())
                    == set(fresh[shard].atoms())), shard

    def test_chained_merge_rehomes_late_joiners(self):
        # components sized so LPT fixes the layout: B (5 atoms) on
        # shard 0, A (4 atoms) and C (2 atoms) on shard 1.  The round
        # first bridges A-B (cross-owner, destination = heavier B),
        # then chains C onto the merged group via a same-owner edge:
        # C must follow the group to shard 0, not strand on shard 1
        abox = ABox(
            [("R", (f"b{i}", f"b{i + 1}")) for i in range(5)]
            + [("R", (f"a{i}", f"a{i + 1}")) for i in range(4)]
            + [("R", (f"c{i}", f"c{i + 1}")) for i in range(2)])
        partition = Partition.build(abox, 2)
        assert partition.owner_of("b0") == 0
        assert partition.owner_of("a0") == 1
        assert partition.owner_of("c0") == 1
        atoms = [("S", ("a0", "b0")), ("S", ("a0", "c0"))]
        self._replay_matches_fresh_routing(abox, 2, atoms)

    def test_random_update_rounds_keep_routing_invariant(self):
        rng = random.Random(4)
        for trial in range(15):
            abox = multi_component_abox(
                rng.randint(1, 6), rng.randint(2, 5),
                shape=rng.choice(("chain", "star", "random")),
                seed=trial)
            names = (sorted(abox.individuals)
                     + [f"x{i}" for i in range(4)])
            atoms = [(rng.choice(("R", "S")),
                      (rng.choice(names), rng.choice(names)))
                     for _ in range(rng.randint(1, 6))]
            atoms = [atom for atom in atoms if atom not in abox]
            if atoms:
                self._replay_matches_fresh_routing(
                    abox, rng.randint(2, 4), atoms)


class TestShardedParityAcrossEngines:
    def test_connected_queries_all_engines(self):
        tbox = example11_tbox()
        abox = workload_abox("mixed-small", scale=0.5, seed=4)
        with sharded(abox, shards=3) as session:
            for engine in ("python", "sql", "sql-views"):
                for query in CONNECTED_QUERIES:
                    omq = OMQ(tbox, query)
                    expected = answer(omq, abox, engine=engine).answers
                    got = session.answer(omq, engine=engine)
                    assert got.answers == expected, (engine, str(query))
                    assert got.shards == 3
                    assert set(got.shard_seconds) <= {0, 1, 2}

    def test_disconnected_queries_all_engines(self):
        tbox = example11_tbox()
        abox = random_data(5, individuals=10, atoms=30)
        with sharded(abox, shards=2) as session:
            for engine in ("python", "sql", "sql-views"):
                for query in DISCONNECTED_QUERIES:
                    omq = OMQ(tbox, query)
                    expected = answer(omq, abox, engine=engine).answers
                    got = session.answer(omq, engine=engine)
                    assert got.answers == expected, (engine, str(query))

    def test_shard_counts(self):
        tbox = example11_tbox()
        abox = workload_abox("chain-small", seed=6)
        omq = OMQ(tbox, chain_cq("RS"))
        expected = answer(omq, abox).answers
        for shards in (1, 2, 4, 7):
            with sharded(abox, shards=shards) as session:
                assert session.answer(omq).answers == expected

    def test_methods_and_stages(self):
        tbox = example11_tbox()
        abox = random_data(7, individuals=12, atoms=36)
        omq = OMQ(tbox, chain_cq("RSR"))
        with sharded(abox, shards=3) as session:
            for options in (AnswerOptions(method="lin"),
                            AnswerOptions(method="tw"),
                            AnswerOptions(method="ucq"),
                            AnswerOptions(method="perfectref"),
                            AnswerOptions(method="lin", magic=True),
                            AnswerOptions(method="adaptive"),
                            AnswerOptions(method="log", optimize=True)):
                expected = answer(omq, abox, options=options).answers
                got = session.answer(omq, options=options)
                assert got.answers == expected, options


class TestShardedProperty:
    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_connected_parity(self, tbox, query, abox):
        omq = OMQ(tbox, query)
        expected = answer(omq, abox).answers
        with sharded(abox, shards=3) as session:
            assert session.answer(omq).answers == expected

    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), other=tree_queries(),
           abox=aboxes())
    def test_disconnected_parity(self, tbox, query, other, abox):
        # two variable-disjoint tree CQs joined into one disconnected CQ
        renamed = CQ([Atom(atom.predicate,
                           tuple(f"w_{arg}" for arg in atom.args))
                      for atom in other.atoms],
                     tuple(f"w_{v}" for v in other.answer_vars))
        combined = CQ(tuple(query.atoms) + tuple(renamed.atoms),
                      query.answer_vars + renamed.answer_vars)
        omq = OMQ(tbox, combined)
        expected = answer(omq, abox).answers
        with sharded(abox, shards=2) as session:
            assert session.answer(omq).answers == expected

    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_update_sequence_parity(self, tbox, query, abox):
        rng = random.Random(0)
        omq = OMQ(tbox, query)
        names = [f"c{i}" for i in range(6)] + ["fresh0", "fresh1"]
        with sharded(ABox(abox.atoms()), shards=3) as session:
            for _ in range(4):
                atoms = [(rng.choice(("P", "Q")),
                          (rng.choice(names), rng.choice(names)))
                         for _ in range(rng.randint(1, 3))]
                if rng.random() < 0.4 and len(session.abox):
                    session.delete_facts(
                        [rng.choice(list(session.abox.atoms()))])
                session.insert_facts(atoms)
            # from-scratch load over the final data must agree
            final = ABox(session.abox.atoms())
            assert session.answer(omq).answers == answer(omq, final).answers


class TestShardedUpdates:
    def test_insert_merging_two_shards(self):
        tbox = example11_tbox()
        abox = ABox([("R", ("a", "b")), ("S", ("b", "c")),
                     ("R", ("x", "y")), ("S", ("y", "z"))])
        omq = OMQ(tbox, chain_cq("RS"))
        with sharded(abox, shards=2) as session:
            before = {session.partition.owner_of("a"),
                      session.partition.owner_of("x")}
            assert len(before) == 2  # two components on two shards
            session.insert_facts([("R", ("c", "x"))])  # bridges them
            owners = {session.partition.owner_of(c)
                      for c in ("a", "b", "c", "x", "y", "z")}
            assert len(owners) == 1
            expected = answer(omq, session.abox).answers
            assert session.answer(omq).answers == expected

    def test_delete_splitting_component(self):
        tbox = example11_tbox()
        abox = ABox([("R", ("a", "b")), ("S", ("b", "c")),
                     ("R", ("c", "d"))])
        omq = OMQ(tbox, chain_cq("RS"))
        with sharded(abox, shards=2) as session:
            session.delete_facts([("S", ("b", "c"))])  # splits the chain
            expected = answer(omq, session.abox).answers
            assert session.answer(omq).answers == expected
            # conservative: the pieces stay co-located
            assert (session.partition.owner_of("a")
                    == session.partition.owner_of("d"))

    def test_failed_delta_poisons_session(self):
        tbox = example11_tbox()
        abox = ABox([("R", ("a", "b")), ("S", ("b", "c"))])
        omq = OMQ(tbox, chain_cq("RS"))
        with sharded(abox, shards=2) as session:
            session.answer(omq)

            def broken_deltas(deltas):
                raise RuntimeError("worker rejected the delta")

            session._executor.apply_deltas = broken_deltas
            try:
                session.insert_facts([("R", ("x", "y"))])
                raise AssertionError("expected the update to fail")
            except RuntimeError:
                pass
            # shard data may diverge from the master now: answering
            # must refuse instead of silently returning stale answers
            try:
                session.answer(omq)
                raise AssertionError("expected the session to refuse")
            except RuntimeError as error:
                assert "unusable" in str(error)

    def test_update_result_counts(self):
        abox = ABox([("R", ("a", "b"))])
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        with sharded(abox, shards=2) as session:
            session.answer(omq)  # load the per-shard backends
            result = session.apply_update(
                inserts=[("R", ("a", "b")), ("S", ("m", "n"))],
                deletes=[("R", ("zz", "zz"))])
            assert result.inserted == 1  # R(a,b) already present
            assert result.deleted == 0   # R(zz,zz) absent
            assert result.backends_updated >= 1


class TestProcessExecutor:
    def test_parity_and_updates(self):
        tbox = example11_tbox()
        abox = workload_abox("star-small", scale=0.5, seed=8)
        omq = OMQ(tbox, chain_cq("RS"))
        with ShardedSession(abox, shards=2,
                            executor="process") as session:
            expected = answer(omq, abox).answers
            assert session.answer(omq).answers == expected
            assert session.answer(omq, engine="sql").answers == expected
            session.insert_facts([("R", ("p1", "p2")),
                                  ("S", ("p2", "p3"))])
            session.delete_facts([next(iter(abox.atoms()))])
            expected = answer(omq, session.abox).answers
            assert session.answer(omq).answers == expected

    def test_worker_error_does_not_kill_pool(self):
        abox = ABox([("R", ("a", "b"))])
        with ShardedSession(abox, shards=2,
                            executor="process") as session:
            plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")),
                               method="lin")
            broken = dataclasses.replace(plan, ndl=None)
            try:
                session.execute_plan(broken)
                raise AssertionError("expected the broken plan to fail")
            except (RuntimeError, TypeError, AttributeError):
                pass
            # the workers survive and keep answering
            assert session.execute_plan(plan).answers is not None

    def test_spawn_start_method_works(self):
        # the served path avoids fork in threaded parents; make sure
        # the pickled-worker start methods actually boot and answer
        from repro.shard.executor import ProcessExecutor

        abox = ABox([("R", ("a", "b")), ("S", ("b", "c"))])
        partition = Partition.build(abox, 1)
        executor = ProcessExecutor(partition.shard_aboxes(abox),
                                   start_method="spawn")
        try:
            plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")),
                               method="lin")
            results = executor.execute(plan)
            assert ("a", "c") in results[0].answers
        finally:
            executor.close()

    def test_dead_worker_fails_cleanly(self):
        abox = ABox([("R", ("a", "b")), ("R", ("c", "d"))])
        plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")),
                           method="lin")
        with ShardedSession(abox, shards=2,
                            executor="process") as session:
            executor = session._executor
            executor._processes[0].terminate()
            executor._processes[0].join(timeout=5)
            # the round fails with a clear error, not a raw EOFError...
            try:
                session.execute_plan(plan)
                raise AssertionError("expected the dead worker to fail")
            except RuntimeError as error:
                assert "worker" in str(error)
            # ...and later rounds refuse instead of wedging the pipes
            try:
                session.execute_plan(plan)
                raise AssertionError("expected the broken executor "
                                     "to refuse")
            except RuntimeError as error:
                assert "fresh" in str(error)


class TestMonolithicFallback:
    def test_undecomposable_plan_falls_back(self, caplog):
        tbox = example11_tbox()
        abox = random_data(9, individuals=8, atoms=24)
        # a disconnected CQ with a cyclic component: compiled with log,
        # then the options are forced to lin so the per-component
        # compilation fails and execution routes to the monolithic path
        query = CQ.parse("R(x, y), R(y, z), R(z, x), S(u, v)",
                         answer_vars=["x", "u"])
        omq = OMQ(tbox, query)
        plan = compile_omq(omq, method="log")
        forced = dataclasses.replace(plan,
                                     options=AnswerOptions(method="lin"))
        expected = answer(omq, abox, method="log").answers
        with sharded(abox, shards=2) as session:
            with caplog.at_level("WARNING", logger="repro.shard"):
                got = session.execute_plan(forced)
            assert got.answers == expected
            assert any("monolithic" in record.message
                       for record in caplog.records)


class TestServiceIntegration:
    def test_sharded_dataset_matches_monolithic(self):
        tbox = example11_tbox()
        data = random_data(10, individuals=14, atoms=40)
        omq = OMQ(tbox, chain_cq("RS"))
        with OMQService(shard_executor="serial") as service:
            service.register_dataset("mono", ABox(data.atoms()))
            service.register_dataset("shard", ABox(data.atoms()), shards=3)
            mono = service.answer("mono", omq, method="lin")
            shard = service.answer("shard", omq, method="lin")
            assert shard.answers == mono.answers
            service.update("mono", inserts=[("R", ("u1", "u2"))],
                           deletes=[("R", ("n1", "n2"))])
            service.update("shard", inserts=[("R", ("u1", "u2"))],
                           deletes=[("R", ("n1", "n2"))])
            assert (service.answer("shard", omq, method="lin").answers
                    == service.answer("mono", omq, method="lin").answers)
            stats = service.stats()
            assert stats["datasets"]["shard"]["shards"] == 3
            assert stats["datasets"]["mono"]["shards"] == 0
            assert stats["datasets"]["shard"]["sessions"] == {
                "sharded": 1}

    def test_failed_update_drops_pool_and_recovers(self):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RS"))
        with OMQService(shard_executor="serial") as service:
            service.register_dataset("d", ABox([("R", ("a", "b"))]),
                                     shards=2)
            service.answer("d", omq)
            session = service._datasets["d"].all_sessions()[0]

            def broken_deltas(deltas):
                raise RuntimeError("worker rejected the delta")

            session._executor.apply_deltas = broken_deltas
            try:
                service.update("d", inserts=[("S", ("b", "c"))])
                raise AssertionError("expected the update to fail")
            except RuntimeError:
                pass
            # the master kept the update and the next answer serves it
            # from a freshly built session instead of staying bricked
            assert ("a", "c") in service.answer("d", omq).answers

    def test_sharded_explain_does_not_boot_workers(self):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RS"))
        with OMQService(shard_executor="serial") as service:
            service.register_dataset("d", ABox([("R", ("a", "b"))]),
                                     shards=2)
            report = service.explain(omq, method="adaptive", dataset="d")
            assert report["data_bound"]
            # compile-only: no ShardedSession (and no executor) built
            assert service._datasets["d"].all_sessions() == []

    def test_update_before_first_answer(self):
        tbox = example11_tbox()
        with OMQService(shard_executor="serial") as service:
            service.register_dataset("d", ABox([("R", ("a", "b"))]),
                                     shards=2)
            service.update("d", inserts=[("S", ("b", "c"))])
            omq = OMQ(tbox, chain_cq("RS"))
            assert ("a", "c") in service.answer("d", omq).answers

    def test_client_shards_passthrough(self):
        tbox = example11_tbox()
        omq = OMQ(tbox, chain_cq("RS"))
        data = random_data(11)
        with Client.local(shard_executor="serial") as client:
            client.register_dataset("d", ABox(data.atoms()), shards=2)
            result = client.answer("d", omq)
            assert result.answers == answer(omq, data).answers
            assert result.shards == 2  # provenance survives the facade


class TestPlanIntegration:
    def test_shards_knob_on_abox(self):
        tbox = example11_tbox()
        abox = random_data(12, individuals=12, atoms=30)
        omq = OMQ(tbox, chain_cq("RS"))
        plan = compile_omq(omq, method="lin")
        mono = plan.execute(abox)
        sharded_result = plan.execute(
            abox, options=AnswerOptions(shards=3))
        assert sharded_result.answers == mono.answers
        assert sharded_result.shards == 3
        assert mono.shards == 0

    def test_execute_on_sharded_session(self):
        tbox = example11_tbox()
        abox = random_data(13)
        omq = OMQ(tbox, chain_cq("RS"))
        plan = compile_omq(omq, method="lin")
        with sharded(abox, shards=2) as session:
            assert (plan.execute(session).answers
                    == plan.execute(abox).answers)

    def test_disconnected_subplans_memoised(self):
        tbox = example11_tbox()
        abox = random_data(15, individuals=10, atoms=30)
        query = CQ.parse("R(x, y), S(u, v)", answer_vars=["x", "u"])
        omq = OMQ(tbox, query)
        plan = compile_omq(omq, method="log")
        with sharded(abox, shards=2) as session:
            first = session.execute_plan(plan)
            memo = session._sub_plans
            assert len(memo) == 1
            cached = next(iter(memo.values()))
            session.execute_plan(plan)
            assert next(iter(memo.values())) is cached  # reused, not rebuilt
            session.insert_facts([("R", ("m1", "m2"))])
            assert not memo  # updates invalidate the memo
            second = session.execute_plan(plan)
            assert second.answers == answer(omq, session.abox,
                                            method="log").answers
            assert first.answers <= second.answers

    def test_plan_pickle_roundtrip(self):
        plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")),
                           method="lin")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.fingerprint == plan.fingerprint
        assert dict(clone.timings) == dict(plan.timings)
        abox = random_data(14)
        assert clone.execute(abox).answers == plan.execute(abox).answers

    def test_options_validation(self):
        assert AnswerOptions(shards=4).shards == 4
        try:
            AnswerOptions(shards=-1)
            raise AssertionError("negative shards must be rejected")
        except ValueError:
            pass
        # shards never partitions the plan cache
        assert (AnswerOptions(shards=4).rewrite_fingerprint()
                == AnswerOptions().rewrite_fingerprint())


class TestWorkloadPresets:
    def test_deterministic_and_scaled(self):
        first = workload_abox("chain-small", seed=5)
        second = workload_abox("chain-small", seed=5)
        assert set(first.atoms()) == set(second.atoms())
        assert set(first.atoms()) != set(
            workload_abox("chain-small", seed=6).atoms())
        small = workload_abox("chain-large", scale=0.1, seed=5)
        assert len(small) < len(workload_abox("chain-large", seed=5))

    def test_component_structure(self):
        abox = multi_component_abox(8, 5, shape="star", seed=1)
        partition = Partition.build(abox, 8)
        assert partition.component_count() == 8
        chain = multi_component_abox(3, 4, shape="chain", seed=1,
                                     mark_probability=0.0)
        # a chain of n vertices has n-1 edges
        assert len(chain) == 3 * 3

    def test_unknown_preset(self):
        try:
            workload_abox("nope")
            raise AssertionError("unknown preset must raise")
        except ValueError as error:
            assert "nope" in str(error)


class TestSerialExecutorContract:
    def test_shard_results_carry_provenance(self):
        abox = multi_component_abox(4, 4, shape="chain", seed=2)
        partition = Partition.build(abox, 2)
        executor = SerialExecutor(partition.shard_aboxes(abox))
        try:
            plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")),
                               method="lin")
            results = executor.execute(plan)
            assert [result.shard for result in results] == [0, 1]
            assert all(result.seconds >= 0 for result in results)
        finally:
            executor.close()


class TestExecutorGuards:
    """Regression coverage for satellite fixes: out-of-range shard
    selection must raise, closed executors must refuse clearly, and
    ``create_executor`` must honour ``start_method``/``transport``."""

    def test_selected_rejects_out_of_range(self):
        abox = multi_component_abox(4, 4, shape="chain", seed=2)
        partition = Partition.build(abox, 2)
        executor = SerialExecutor(partition.shard_aboxes(abox))
        try:
            plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")),
                               method="lin")
            for bad in ([2], [-1], [0, 5]):
                try:
                    executor.execute(plan, shards=bad)
                    raise AssertionError(f"{bad} must be rejected")
                except ValueError as error:
                    assert "out of range" in str(error)
            # in-range restriction still works
            assert len(executor.execute(plan, shards=[1])) == 1
        finally:
            executor.close()

    def test_closed_serial_executor_refuses(self):
        executor = SerialExecutor([ABox([("R", ("a", "b"))])])
        plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")),
                           method="lin")
        executor.close()
        for call in (lambda: executor.execute(plan),
                     lambda: executor.apply_deltas({})):
            try:
                call()
                raise AssertionError("closed executor must refuse")
            except RuntimeError as error:
                assert "closed" in str(error)

    def test_closed_process_executor_refuses(self):
        from repro.shard.executor import ProcessExecutor

        executor = ProcessExecutor([ABox([("R", ("a", "b"))])])
        plan = compile_omq(OMQ(example11_tbox(), chain_cq("RS")),
                           method="lin")
        executor.close()
        executor.close()  # idempotent
        try:
            executor.execute(plan)
            raise AssertionError("closed executor must refuse")
        except RuntimeError as error:
            assert "closed" in str(error)

    def test_create_executor_start_method_passthrough(self):
        from repro.shard.executor import create_executor

        aboxes = [ABox([("R", ("a", "b"))])]
        executor = create_executor("process", aboxes,
                                   start_method="spawn")
        try:
            assert executor.start_method == "spawn"
            assert executor.transport == "shm"
        finally:
            executor.close()
        executor = create_executor("process", aboxes,
                                   start_method="fork")
        try:
            assert executor.start_method == "fork"
            assert executor.transport == "pickle"  # fork inherits free
        finally:
            executor.close()

    def test_create_executor_rejects_https(self):
        from repro.shard.executor import create_executor

        try:
            create_executor("https://worker", [ABox()])
            raise AssertionError("https URLs must be rejected")
        except ValueError as error:
            assert "http" in str(error)

    def test_session_start_method_reaches_executor(self):
        abox = ABox([("R", ("a", "b")), ("R", ("c", "d"))])
        with ShardedSession(abox, shards=2, executor="process",
                            start_method="forkserver") as session:
            assert session._executor.start_method == "forkserver"
            assert session.stats()["transport"] == "shm"


class TestShmTransport:
    def test_fact_array_roundtrip(self):
        from repro.shard.transport import (decode_fact_arrays,
                                           encode_fact_arrays)

        abox = random_data(31, individuals=12, atoms=40)
        abox.add("Solo", "☃ unicode name")
        clone = ABox.from_fact_arrays(
            decode_fact_arrays(encode_fact_arrays(abox.to_fact_arrays())))
        assert set(clone.atoms()) == set(abox.atoms())

    def test_empty_abox_roundtrip(self):
        from repro.shard.transport import SharedABox, attach_abox

        shared = SharedABox(ABox())
        try:
            assert len(attach_abox(shared.descriptor)) == 0
        finally:
            shared.close()
            shared.close()  # idempotent

    def test_shared_segment_attach_parity(self):
        from repro.shard.transport import SharedABox, attach_abox

        abox = random_data(32, individuals=10, atoms=30)
        shared = SharedABox(abox)
        try:
            clone = attach_abox(shared.descriptor)
            assert set(clone.atoms()) == set(abox.atoms())
        finally:
            shared.close()

    def test_database_from_arrays_parity(self):
        from repro.engine.database import Database

        abox = random_data(33, individuals=10, atoms=30)
        fresh = Database(abox)
        adopted = Database.from_arrays(abox.to_fact_arrays())
        assert set(adopted.predicates) == set(fresh.predicates)
        for predicate in fresh.predicates:
            assert (adopted.decode_rows(adopted.relation(predicate))
                    == fresh.decode_rows(fresh.relation(predicate)))


class TestShmParity:
    """The tentpole invariant: shm transport == pickle transport ==
    monolithic, for random data and after random update sequences."""

    @SETTINGS
    @given(tbox=tboxes(), query=tree_queries(), abox=aboxes())
    def test_transports_agree_with_monolithic(self, tbox, query, abox):
        rng = random.Random(1)
        omq = OMQ(tbox, query)
        names = [f"c{i}" for i in range(6)] + ["fresh0", "fresh1"]
        sessions = [
            ShardedSession(ABox(abox.atoms()), shards=2,
                           executor="process", start_method="fork",
                           transport=transport)
            for transport in ("shm", "pickle")]
        try:
            expected = answer(omq, abox).answers
            for session in sessions:
                assert session.answer(omq).answers == expected
            inserts = [(rng.choice(("P", "Q")),
                        (rng.choice(names), rng.choice(names)))
                       for _ in range(3)]
            deletes = ([rng.choice(list(abox.atoms()))]
                       if len(abox) else [])
            for session in sessions:
                session.apply_update(inserts=inserts, deletes=deletes)
            final = ABox(sessions[0].abox.atoms())
            expected = answer(omq, final).answers
            for session in sessions:
                assert set(session.abox.atoms()) == set(final.atoms())
                assert session.answer(omq).answers == expected
        finally:
            for session in sessions:
                session.close()

    def test_engines_agree_under_shm(self):
        tbox = example11_tbox()
        abox = workload_abox("mixed-small", scale=0.5, seed=34)
        omq = OMQ(tbox, chain_cq("RS"))
        with ShardedSession(abox, shards=3, executor="process",
                            start_method="fork",
                            transport="shm") as session:
            for engine in ("python", "sql"):
                expected = answer(omq, abox, engine=engine).answers
                assert (session.answer(omq, engine=engine).answers
                        == expected), engine


class TestAutoShards:
    def test_auto_shards_uses_cpu_and_weight_floor(self):
        from repro.shard.partition import auto_shards

        # 4 equal components x 128 atoms: the 256-atom weight floor
        # caps the count at 2 even with 4 CPUs and 4 components
        abox = multi_component_abox(4, 129, shape="chain", seed=1,
                                    mark_probability=0.0)
        assert auto_shards(abox, available=4) == 2
        assert auto_shards(abox, available=1) == 1

    def test_auto_shards_backs_off_on_skew(self):
        from repro.shard.partition import auto_shards

        # one dominant component: any K >= 2 is hopelessly imbalanced
        abox = multi_component_abox(1, 600, shape="chain", seed=2,
                                    mark_probability=0.0)
        for index in range(3):
            abox.add("R", f"t{index}_0", f"t{index}_1")
        assert auto_shards(abox, available=8) == 1

    def test_auto_shards_empty_abox(self):
        from repro.shard.partition import auto_shards

        assert auto_shards(ABox(), available=8) == 1

    def test_session_accepts_auto(self):
        tbox = example11_tbox()
        abox = multi_component_abox(4, 129, shape="chain", seed=3)
        omq = OMQ(tbox, chain_cq("RS"))
        with sharded(abox, shards="auto") as session:
            stats = session.stats()
            assert stats["adaptive"] is True
            assert session.shards >= 1
            assert (session.answer(omq).answers
                    == answer(omq, abox).answers)

    def test_options_accept_auto(self):
        assert AnswerOptions(shards="auto").shards == "auto"
        for bad in ("bogus", 1.5, -2):
            try:
                AnswerOptions(shards=bad)
                raise AssertionError(f"{bad!r} must be rejected")
            except ValueError:
                pass
        # orchestration knobs never partition the plan cache
        assert (AnswerOptions(shards="auto",
                              start_method="spawn").rewrite_fingerprint()
                == AnswerOptions().rewrite_fingerprint())

    def test_options_validate_start_method(self):
        assert AnswerOptions(start_method="spawn").start_method == "spawn"
        try:
            AnswerOptions(start_method="threads")
            raise AssertionError("bad start_method must be rejected")
        except ValueError:
            pass


class TestHttpExecutor:
    def test_differential_vs_serial_with_updates(self):
        from repro.service.aserve import serve_in_background

        tbox = example11_tbox()
        data = random_data(21, individuals=12, atoms=36)
        omq = OMQ(tbox, chain_cq("RS"))
        with OMQService() as worker:
            with serve_in_background(worker) as server:
                http_session = ShardedSession(
                    ABox(data.atoms()), shards=2, executor=server.url)
                reference = sharded(ABox(data.atoms()), shards=2)
                try:
                    assert http_session._executor.kind == "http"
                    assert (http_session.answer(omq).answers
                            == reference.answer(omq).answers)
                    victim = next(iter(data.atoms()))
                    for session in (http_session, reference):
                        session.insert_facts([("R", ("h1", "h2")),
                                              ("S", ("h2", "h3"))])
                        session.delete_facts([victim])
                    assert (http_session.answer(omq).answers
                            == reference.answer(omq).answers)
                finally:
                    reference.close()
                    http_session.close()
                # closing unregisters the per-shard scratch datasets
                assert not [name for name in worker.datasets()
                            if "__shard__" in name]

    def test_restricted_plans_refused(self):
        from repro.service.aserve import serve_in_background

        with OMQService() as worker:
            with serve_in_background(worker) as server:
                with ShardedSession(ABox([("R", ("a", "b"))]), shards=1,
                                    executor=server.url) as session:
                    plan = compile_omq(OMQ(example11_tbox(),
                                           chain_cq("RS")),
                                       method="lin")
                    try:
                        session.execute_restricted(plan, plan.ndl)
                        raise AssertionError("restricted execution on "
                                             "http must be refused")
                    except RuntimeError as error:
                        assert "local executor" in str(error)


class TestDatasetDrop:
    def test_local_unregister(self):
        omq = OMQ(example11_tbox(), chain_cq("RS"))
        with Client.local() as client:
            client.register_dataset("d", ABox([("R", ("a", "b")),
                                               ("S", ("b", "c"))]))
            assert ("a", "c") in client.answer("d", omq).answers
            client.unregister_dataset("d")
            try:
                client.answer("d", omq)
                raise AssertionError("dropped dataset must be unknown")
            except (KeyError, ValueError) as error:
                assert "d" in str(error)

    def test_http_unregister(self):
        from repro.service.aserve import serve_in_background

        omq = OMQ(example11_tbox(), chain_cq("RS"))
        with OMQService() as service:
            with serve_in_background(service) as server:
                with Client.connect(server.url) as client:
                    client.register_dataset(
                        "d", ABox([("R", ("a", "b")), ("S", ("b", "c"))]))
                    assert ("a", "c") in client.answer("d", omq).answers
                    client.unregister_dataset("d")
                    assert "d" not in service.datasets()
                    try:
                        client.unregister_dataset("d")
                        raise AssertionError("double drop must 404")
                    except Exception as error:
                        assert "unknown dataset" in str(error)
