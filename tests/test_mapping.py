"""Tests for the OBDA mapping layer (repro.obda): GAV mappings,
materialisation M(D) and rewriting unfolding."""

import pytest

from repro.chase import certain_answers
from repro.datalog import evaluate
from repro.obda import Database, Mapping, MappingAssertion, SourceAtom
from repro.obda.mapping import evaluate_over_database
from repro.ontology import TBox
from repro.queries import CQ
from repro.rewriting import OMQ, rewrite


@pytest.fixture
def company_setup():
    """A wide source schema mapped into a small ontology."""
    tbox = TBox.parse("""
        roles: worksFor, manages
        Manager <= Employee
        Manager <= Emanages
        Employee <= EworksFor
        EworksFor- <= Department
    """)
    mapping = Mapping()
    # source: emp(id, name, dept, role), dept(id, city)
    mapping.add("Employee", ["x"], [("emp", ["x", "n", "d", "r"])])
    mapping.add("worksFor", ["x", "d"], [("emp", ["x", "n", "d", "r"])])
    mapping.add("Manager", ["x"],
                [("emp", ["x", "n", "d", "mgr"]), ("is_mgr", ["x"])])
    mapping.add("Department", ["d"], [("dept", ["d", "c"])])
    database = Database()
    database.add("emp", "e1", "ann", "d1", "mgr")
    database.add("emp", "e2", "bob", "d1", "dev")
    database.add("emp", "e3", "eve", "d2", "dev")
    database.add("is_mgr", "e1")
    database.add("dept", "d1", "oslo")
    return tbox, mapping, database


class TestMaterialisation:
    def test_unary_targets(self, company_setup):
        _, mapping, database = company_setup
        abox = mapping.apply(database)
        assert abox.unary("Employee") == {"e1", "e2", "e3"}
        assert abox.unary("Manager") == {"e1"}

    def test_binary_targets(self, company_setup):
        _, mapping, database = company_setup
        abox = mapping.apply(database)
        assert ("worksFor", ("e2", "d1")) in abox

    def test_join_in_body(self, company_setup):
        _, mapping, database = company_setup
        # Manager requires a join of emp and is_mgr: e2 is not a manager
        abox = mapping.apply(database)
        assert not abox.has_unary("Manager", "e2")

    def test_unsafe_assertion_rejected(self):
        with pytest.raises(ValueError):
            MappingAssertion("A", ("x",), (SourceAtom("r", ("y",)),))


class TestUnfolding:
    def test_unfolded_equals_materialised(self, company_setup):
        tbox, mapping, database = company_setup
        query = CQ.parse("Employee(x), worksFor(x, d)",
                         answer_vars=["x", "d"])
        omq = OMQ(tbox, query)
        ndl = rewrite(omq, method="lin", over="arbitrary")
        # route 1: materialise M(D), evaluate over the ABox
        abox = mapping.apply(database)
        direct = evaluate(ndl, abox).answers
        # route 2: unfold the rewriting, evaluate over D itself
        unfolded = evaluate_over_database(ndl, mapping, database).answers
        assert direct == unfolded
        assert direct  # non-trivial

    def test_unfolding_uses_ontology(self, company_setup):
        tbox, mapping, database = company_setup
        # every employee worksFor *some* department, even e3 whose
        # department has no dept() row: Department is ontology-implied
        query = CQ.parse("Employee(x), worksFor(x, d), Department(d)",
                         answer_vars=["x"])
        omq = OMQ(tbox, query)
        ndl = rewrite(omq, method="lin", over="arbitrary")
        result = evaluate_over_database(ndl, mapping, database)
        assert result.answers == {("e1",), ("e2",), ("e3",)}

    def test_certain_answer_semantics_end_to_end(self, company_setup):
        tbox, mapping, database = company_setup
        query = CQ.parse("manages(m, y)", answer_vars=["m"])
        omq = OMQ(tbox, query)
        abox = mapping.apply(database)
        expected = certain_answers(tbox, abox, query)
        assert expected == {("e1",)}  # managers manage something
        ndl = rewrite(omq, method="lin", over="arbitrary")
        assert evaluate_over_database(ndl, mapping,
                                      database).answers == expected

    def test_unmapped_predicate_yields_empty(self, company_setup):
        tbox, mapping, database = company_setup
        query = CQ.parse("manages(x, y)", answer_vars=["x", "y"])
        omq = OMQ(tbox, query)
        ndl = rewrite(omq, method="lin", over="arbitrary")
        # no mapping assertion produces 'manages' facts and the anonymous
        # witnesses are not named individuals: no certain answers
        assert evaluate_over_database(ndl, mapping,
                                      database).answers == frozenset()
