"""Tests for the unified engine layer (``repro.engine``) and
``AnswerSession``: the interned/indexed database, cross-engine answer
parity for every rewriter, and the no-reload session guarantee.
"""

import pytest

from repro import ABox, CQ, OMQ, certain_answers, chain_cq, evaluate
from repro.data.abox import ABox as ABoxClass
from repro.datalog import Clause, Literal, NDLQuery, Program, evaluate_on
from repro.engine import Database, PythonEngine, available_engines, create_engine
from repro.rewriting import METHODS, AnswerSession

from .helpers import deep_tbox, engine_params, example11_tbox, random_data


# -- Database ---------------------------------------------------------------


class TestDatabase:
    def test_interning_roundtrip(self):
        db = Database(ABox.parse("R(a,b), A(c)"))
        for constant in ("a", "b", "c"):
            assert db.decode(db.intern(constant)) == constant
        assert db.constants == 3

    def test_relations_are_interned(self):
        abox = ABox.parse("R(a,b), R(b,c), A(a)")
        db = Database(abox)
        assert db.decode_rows(db.relation("R")) == {("a", "b"), ("b", "c")}
        assert db.decode_rows(db.relation("A")) == {("a",)}
        assert db.decode_rows(db.relation("__adom__")) == {
            ("a",), ("b",), ("c",)}
        assert db.relation("missing") == frozenset()

    def test_index_groups_by_positions(self):
        db = Database(ABox.parse("R(a,b), R(a,c), R(b,c)"))
        index = db.index("R", (0,))
        # single-position indexes use the bare code as key
        assert len(index[db.intern("a")]) == 2
        pair_index = db.index("R", (0, 1))
        assert len(pair_index[(db.intern("a"), db.intern("b"))]) == 1
        assert db.distinct_keys("R", (0,)) == 2
        assert db.distinct_keys("R", (1,)) == 2
        assert db.distinct_keys("R", (0, 1)) == 3

    def test_index_is_memoised(self):
        db = Database(ABox.parse("R(a,b)"))
        assert db.index("R", (0,)) is db.index("R", (0,))

    def test_extra_relations_override_and_extend_adom(self):
        abox = ABox.parse("A(a)")
        extra = {"T": {("x", "y", "z")}, "A": {("b",)}}
        db = Database(abox, extra)
        assert db.decode_rows(db.relation("T")) == {("x", "y", "z")}
        # extras override the same-named ABox predicate (the contract
        # evaluate() always had) and their constants join the domain
        assert db.decode_rows(db.relation("A")) == {("b",)}
        assert db.decode_rows(db.relation("__adom__")) == {
            ("a",), ("b",), ("x",), ("y",), ("z",)}


# -- evaluate_on ------------------------------------------------------------


def _chain_query():
    clauses = [Clause(Literal("G", ("x", "z")),
                      (Literal("R", ("x", "y")), Literal("R", ("y", "z"))))]
    return NDLQuery(Program(clauses), "G", ("x", "z"))


class TestEvaluateOn:
    def test_matches_one_shot_evaluate(self):
        abox = ABox.parse("R(a,b), R(b,c), R(c,d)")
        query = _chain_query()
        one_shot = evaluate(query, abox)
        shared = evaluate_on(query, Database(abox))
        assert shared.answers == one_shot.answers
        assert shared.relation_sizes == one_shot.relation_sizes
        assert shared.generated_tuples == one_shot.generated_tuples

    def test_database_reused_across_queries(self):
        abox = ABox.parse("R(a,b), R(b,c), R(c,d), A(a)")
        db = Database(abox)
        first = evaluate_on(_chain_query(), db)
        clauses = [Clause(Literal("H", ("x",)),
                          (Literal("A", ("x",)), Literal("R", ("x", "y"))))]
        second = evaluate_on(NDLQuery(Program(clauses), "H", ("x",)), db)
        assert first.answers == {("a", "c"), ("b", "d")}
        assert second.answers == {("a",)}

    def test_edb_goal(self):
        db = Database(ABox.parse("A(a), A(b)"))
        query = NDLQuery(Program([]), "A", ("x",))
        assert evaluate_on(query, db).answers == {("a",), ("b",)}


# -- unified backends -------------------------------------------------------


class TestCreateEngine:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            create_engine("mysql", ABox())

    @pytest.mark.parametrize("name", engine_params())
    def test_backends_agree_on_plain_ndl(self, name):
        abox = ABox.parse("R(a,b), R(b,c), R(c,d)")
        expected = evaluate(_chain_query(), abox).answers
        with create_engine(name, abox) as backend:
            assert backend.evaluate(_chain_query()).answers == expected

    def test_python_engine_shares_one_database(self):
        engine = PythonEngine(ABox.parse("R(a,b), R(b,c)"))
        database = engine.database
        engine.evaluate(_chain_query())
        engine.evaluate(_chain_query())
        assert engine.database is database


# -- cross-engine parity over the full rewriter zoo -------------------------


def _parity_settings():
    shallow = ABox.parse(
        "R(c0,c1), S(c1,c2), R(c2,c3), A_P-(d0), R(d0,d3), A_P-(d3)")
    deep_data = random_data(3)
    return [
        (example11_tbox(), chain_cq("RSR"), shallow),
        (deep_tbox(), CQ.parse("R(x,y), S(y,z)", answer_vars=["x"]),
         deep_data),
    ]


class TestCrossEngineParity:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("setting", range(2))
    def test_all_engines_agree_for_every_method(self, method, setting):
        tbox, query, abox = _parity_settings()[setting]
        omq = OMQ(tbox, query)
        expected = frozenset(certain_answers(tbox, abox, query))
        with AnswerSession(abox) as session:
            results = {engine: session.answer(omq, method=method,
                                              engine=engine).answers
                       for engine in available_engines()}
        for engine, answers in results.items():
            assert answers == expected, (
                f"engine {engine} disagrees for method {method}")


# -- AnswerSession reuse ----------------------------------------------------


class TestAnswerSessionReuse:
    def test_data_loaded_once_across_queries(self):
        tbox = example11_tbox()
        abox = random_data(7)
        omqs = [OMQ(tbox, chain_cq(labels))
                for labels in ("RS", "RSR", "SRR")]
        with AnswerSession(abox) as session:
            for omq in omqs:
                for method in ("lin", "log", "tw"):
                    session.answer(omq, method=method)
            assert session.data_loads == 1

    def test_completion_computed_once(self, monkeypatch):
        calls = []
        original = ABoxClass.complete

        def counting(self, tbox):
            calls.append(tbox)
            return original(self, tbox)

        monkeypatch.setattr(ABoxClass, "complete", counting)
        tbox = example11_tbox()
        abox = random_data(8)
        with AnswerSession(abox) as session:
            for labels in ("RS", "SR", "RSR"):
                session.answer(OMQ(tbox, chain_cq(labels)))
        assert len(calls) == 1

    def test_python_backend_database_is_stable(self):
        tbox = example11_tbox()
        abox = random_data(9)
        omq = OMQ(tbox, chain_cq("RS"))
        with AnswerSession(abox) as session:
            session.answer(omq)
            database = session.backend(tbox=tbox).database
            session.answer(omq, method="log")
            assert session.backend(tbox=tbox).database is database

    def test_perfectref_uses_raw_data_backend(self):
        tbox = example11_tbox()
        abox = random_data(10)
        omq = OMQ(tbox, chain_cq("RS"))
        with AnswerSession(abox) as session:
            session.answer(omq, method="perfectref")
            session.answer(omq, method="lin")
            # raw + completed variants: two loads, still one per variant
            assert session.data_loads == 2
            session.answer(omq, method="perfectref")
            session.answer(omq, method="lin")
            assert session.data_loads == 2

    def test_engine_override_loads_each_backend_once(self):
        tbox = example11_tbox()
        abox = random_data(11)
        omq = OMQ(tbox, chain_cq("RS"))
        with AnswerSession(abox) as session:
            for _ in range(2):
                for engine in available_engines():
                    session.answer(omq, engine=engine)
            assert session.data_loads == len(available_engines())

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            AnswerSession(ABox(), engine="oracle")
        with AnswerSession(ABox()) as session:
            with pytest.raises(ValueError, match="unknown engine"):
                session.answer(OMQ(example11_tbox(), chain_cq("R")),
                               engine="oracle")

    def test_matches_one_shot_answer(self):
        from repro import answer

        tbox = example11_tbox()
        abox = random_data(12)
        omq = OMQ(tbox, chain_cq("RSR"))
        with AnswerSession(abox) as session:
            for method in ("lin", "tw", "adaptive"):
                assert (session.answer(omq, method=method).answers
                        == answer(omq, abox, method=method).answers)
            assert (session.answer(omq, magic=True).answers
                    == answer(omq, abox, magic=True).answers)
            assert (session.answer(omq, optimize_program=True).answers
                    == answer(omq, abox, optimize_program=True).answers)
