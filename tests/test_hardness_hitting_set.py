"""End-to-end tests for the Theorem 15 hitting-set gadget: the OMQ
answer must coincide with brute-force hitting-set existence."""

import itertools

import pytest

from repro.chase import certain_answers
from repro.hardness import (
    Hypergraph,
    has_hitting_set,
    hitting_set_omq,
    hitting_set_query,
    hitting_set_tbox,
)


class TestSolver:
    def test_triangle_hypergraph(self):
        H = Hypergraph.of(3, [[1, 3], [2, 3], [1, 2]])
        assert not has_hitting_set(H, 1)
        assert has_hitting_set(H, 2)

    def test_single_edge(self):
        H = Hypergraph.of(3, [[2]])
        assert has_hitting_set(H, 1)

    def test_k_larger_than_vertices(self):
        H = Hypergraph.of(2, [[1]])
        assert not has_hitting_set(H, 5)

    def test_bad_edge_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph.of(2, [[3]])
        with pytest.raises(ValueError):
            Hypergraph.of(2, [[]])


class TestGadgetStructure:
    def test_tbox_depth_is_2k(self):
        H = Hypergraph.of(3, [[1, 2]])
        for k in (1, 2):
            tbox = hitting_set_tbox(H, k)
            assert tbox.depth() == 2 * k

    def test_query_is_tree_shaped(self):
        H = Hypergraph.of(3, [[1, 3], [2, 3], [1, 2]])
        query = hitting_set_query(H, 2)
        assert query.is_tree_shaped
        assert query.is_boolean
        # a star with one ray per hyperedge
        assert query.number_of_leaves == len(H.edges)


class TestReduction:
    @pytest.mark.parametrize("edges,k", [
        ([[1, 3], [2, 3], [1, 2]], 1),
        ([[1, 3], [2, 3], [1, 2]], 2),
        ([[1], [2]], 1),
        ([[1], [2]], 2),
        ([[1, 2]], 1),
    ])
    def test_omq_equals_brute_force(self, edges, k):
        H = Hypergraph.of(3, edges)
        tbox, query, abox = hitting_set_omq(H, k)
        expected = has_hitting_set(H, k)
        got = bool(certain_answers(tbox, abox, query))
        assert got == expected

    def test_exhaustive_tiny_hypergraphs(self):
        # all hypergraphs on 2 vertices with <= 2 distinct edges, k = 1
        universe = [[1], [2], [1, 2]]
        for count in (1, 2):
            for edges in itertools.combinations(universe, count):
                H = Hypergraph.of(2, list(edges))
                tbox, query, abox = hitting_set_omq(H, 1)
                expected = has_hitting_set(H, 1)
                got = bool(certain_answers(tbox, abox, query))
                assert got == expected, f"edges={edges}"
