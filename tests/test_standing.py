"""Standing queries: incremental answer maintenance and push delivery.

The contract under test (see :mod:`repro.standing`): a subscriber's
maintained answer set must equal a from-scratch execution of the same
plan after *every* update, and the deltas it receives must be exactly
the difference between consecutive materializations.  The property
suites drive random insert/delete sequences through every available
engine and the sharded path and check both invariants differentially;
the serving tests cover long-poll and SSE end to end on both HTTP
front-ends, plus the epoch-in-update-response and unified-429
satellites.
"""

import asyncio
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import OMQ, AsyncClient, Client, ServiceError, available_engines
from repro.data import ABox
from repro.queries import CQ, chain_cq
from repro.rewriting.plan import AnswerOptions, compile_omq
from repro.service import OMQService, serve_in_background
from repro.service.serve import build_server
from repro.standing import AnswerDelta, decompose
from repro.standing.push import decode_sse, sse_event

from .helpers import (
    engine_params,
    example11_tbox,
    hypothesis_settings,
    random_data,
)

TBOX = example11_tbox()
SETTINGS = hypothesis_settings(20)

NAMES = tuple(f"n{i}" for i in range(6))
BINARY = ("P", "R", "S")
UNARY = ("A_P", "A_P-")


# ---------------------------------------------------------------------------
# decomposition units


class TestDecompose:
    def test_one_disjunct_per_goal_clause(self):
        plan = compile_omq(OMQ(TBOX, chain_cq("RS")),
                           AnswerOptions.coerce({"method": "ucq"}))
        disjuncts = decompose(plan.ndl)
        goal = plan.ndl.goal
        goal_clauses = [clause for clause in plan.ndl.program.clauses
                        if clause.head.predicate == goal]
        assert disjuncts is not None
        assert len(disjuncts) == len(goal_clauses)

    def test_disjunct_union_equals_full_evaluation(self):
        from repro.datalog import evaluate

        abox = random_data(5)
        plan = compile_omq(OMQ(TBOX, chain_cq("RS")),
                           AnswerOptions.coerce({"method": "ucq"}))
        disjuncts = decompose(plan.ndl)
        completed = abox.complete(TBOX)
        full = evaluate(plan.ndl, completed).answers
        union = frozenset().union(
            *(evaluate(d.query, completed).answers for d in disjuncts))
        assert union == full

    def test_disjunct_edb_predicates_cover_program(self):
        plan = compile_omq(OMQ(TBOX, chain_cq("RSR")),
                           AnswerOptions.coerce({"method": "lin"}))
        disjuncts = decompose(plan.ndl)
        if disjuncts is None:
            pytest.skip("rewriting did not decompose")
        covered = frozenset().union(*(d.edb_predicates for d in disjuncts))
        assert covered <= plan.ndl.program.edb_predicates


# ---------------------------------------------------------------------------
# property: maintained answers == from-scratch execution


@st.composite
def update_scripts(draw):
    """A short sequence of insert/delete steps over a small universe.

    Deletions pick from a pool that overlaps the likely-present atoms,
    so both effective and no-op deletes occur.
    """
    steps = []
    for _ in range(draw(st.integers(1, 4))):
        inserts = []
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                inserts.append((draw(st.sampled_from(BINARY)),
                                (draw(st.sampled_from(NAMES)),
                                 draw(st.sampled_from(NAMES)))))
            else:
                inserts.append((draw(st.sampled_from(UNARY)),
                                (draw(st.sampled_from(NAMES)),)))
        deletes = []
        for _ in range(draw(st.integers(0, 2))):
            deletes.append((draw(st.sampled_from(BINARY)),
                            (draw(st.sampled_from(NAMES)),
                             draw(st.sampled_from(NAMES)))))
        steps.append((tuple(inserts), tuple(deletes)))
    return tuple(steps)


QUERIES = (
    chain_cq("RS"),
    chain_cq("RSR"),
    CQ.parse("A_P(x)", answer_vars=["x"]),
    CQ.parse("R(x, y), S(y, z)", answer_vars=["x", "z"]),
    CQ.parse("R(x, y), S(u, v)", answer_vars=["x", "u"]),  # disconnected
)


def _drive_and_check(service, dataset, subs, script):
    """Apply the script; after each step every subscription's
    maintained answers must equal a from-scratch answer, and its
    polled deltas must replay to the same set."""
    replayed = {sid: set(sub.answers) for sid, sub in subs.items()}
    epochs = {sid: sub.epoch for sid, sub in subs.items()}
    for inserts, deletes in script:
        service.update(dataset, inserts=inserts, deletes=deletes)
        for sid, sub in subs.items():
            expected = service.answer(
                dataset, sub_omq(sub), options=sub.options).answers
            assert sub.answers == expected, (
                f"maintained != from-scratch after "
                f"+{inserts} -{deletes}")
            body = service.poll(sid, since_epoch=epochs[sid])
            assert not body["resync"]
            for raw in body["deltas"]:
                delta = AnswerDelta.from_payload(raw)
                assert not (delta.added & replayed[sid])
                assert delta.removed <= replayed[sid]
                replayed[sid] |= delta.added
                replayed[sid] -= delta.removed
            epochs[sid] = body["epoch"]
            assert replayed[sid] == expected, "deltas do not replay"


def sub_omq(sub):
    return sub._omq


def _subscribe_all(service, dataset, engine=None):
    subs = {}
    for query in QUERIES:
        omq = OMQ(TBOX, query)
        sub = service.subscribe(dataset, omq, engine=engine)
        sub._omq = omq  # test-side backpointer for the oracle
        subs[sub.subscription_id] = sub
    return subs


class TestMaintenanceDifferential:
    @pytest.mark.parametrize("engine", engine_params(available_engines()))
    @SETTINGS
    @given(script=update_scripts(), seed=st.integers(0, 5))
    def test_monolithic_matches_from_scratch(self, engine, script, seed):
        service = OMQService(default_engine=engine)
        try:
            service.register_dataset("d", random_data(seed, atoms=14))
            subs = _subscribe_all(service, "d", engine=engine)
            _drive_and_check(service, "d", subs, script)
        finally:
            service.close()

    @SETTINGS
    @given(script=update_scripts(), seed=st.integers(0, 5))
    def test_sharded_matches_from_scratch(self, script, seed):
        service = OMQService(shard_executor="serial")
        try:
            service.register_dataset("d", random_data(seed, atoms=20),
                                     shards=3)
            subs = _subscribe_all(service, "d")
            _drive_and_check(service, "d", subs, script)
        finally:
            service.close()

    def test_sharded_rebalance_keeps_subscription_exact(self):
        """A component-merging insert moves atoms between shards; the
        maintained set must still match from-scratch."""
        service = OMQService(shard_executor="serial")
        try:
            abox = ABox()
            for i in range(6):
                abox.add("R", f"a{i}", f"b{i}")
                abox.add("S", f"b{i}", f"c{i}")
            service.register_dataset("d", abox, shards=3)
            omq = OMQ(TBOX, chain_cq("RS"))
            sub = service.subscribe("d", omq)
            # bridge two components, then grow the merged one
            service.update("d", inserts=[("R", ("c0", "b3"))])
            service.update("d", inserts=[("S", ("b3", "zz"))])
            expected = service.answer("d", omq).answers
            assert sub.answers == expected
        finally:
            service.close()

    def test_counters_track_maintenance(self):
        service = OMQService()
        try:
            service.register_dataset("d", random_data(1))
            sub = service.subscribe("d", OMQ(TBOX, chain_cq("RS")))
            service.update("d", inserts=[("P", ("x1", "x2"))])
            stats = service.stats()["standing"]
            assert stats["subscriptions"] == 1
            assert stats["deltas_pushed"] >= 1
            assert stats["maintenance_seconds"] > 0
            assert service.stats()["datasets"]["d"]["epoch"] == 1
            assert sub.epoch == 1
        finally:
            service.close()


# ---------------------------------------------------------------------------
# poll semantics: watermarks, history bounds, resync


class TestPollSemantics:
    def _service(self):
        service = OMQService()
        service.register_dataset("d", random_data(1))
        return service

    def test_poll_default_watermark_sees_only_future(self):
        service = self._service()
        try:
            sub = service.subscribe("d", OMQ(TBOX, chain_cq("RS")))
            service.update("d", inserts=[("P", ("x1", "x2"))])
            # polling from the *current* watermark returns nothing
            body = service.poll(sub.subscription_id)
            assert body["deltas"] == [] and not body["resync"]
        finally:
            service.close()

    def test_poll_blocks_until_delta(self):
        service = self._service()
        try:
            sub = service.subscribe("d", OMQ(TBOX, chain_cq("RS")))

            def later():
                time.sleep(0.15)
                service.update("d", inserts=[("P", ("x1", "x2"))])

            thread = threading.Thread(target=later)
            thread.start()
            started = time.monotonic()
            body = service.poll(sub.subscription_id, since_epoch=0,
                                timeout=5.0)
            elapsed = time.monotonic() - started
            thread.join()
            assert body["deltas"], "poll returned without the delta"
            assert elapsed < 5.0
        finally:
            service.close()

    def test_history_eviction_forces_resync(self):
        service = self._service()
        try:
            service.standing.history_limit = 2
            sub = service.subscribe("d", OMQ(TBOX, chain_cq("RS")))
            for i in range(5):
                service.update("d", inserts=[("P", (f"h{i}", f"h{i+1}"))])
            body = service.poll(sub.subscription_id, since_epoch=0)
            assert body["resync"]
            answers = frozenset(tuple(row) for row in body["answers"])
            assert answers == sub.answers
            assert service.stats()["standing"]["resyncs"] >= 1
        finally:
            service.close()

    def test_unsubscribe_wakes_blocked_poller(self):
        service = self._service()
        try:
            sub = service.subscribe("d", OMQ(TBOX, chain_cq("RS")))
            caught = []

            def poller():
                try:
                    service.poll(sub.subscription_id, since_epoch=0,
                                 timeout=30.0)
                except ValueError as error:
                    caught.append(error)

            thread = threading.Thread(target=poller)
            thread.start()
            time.sleep(0.1)
            service.unsubscribe(sub.subscription_id)
            thread.join(timeout=5.0)
            assert not thread.is_alive(), "poller still parked"
            assert caught, "closed subscription should raise"
        finally:
            service.close()

    def test_replace_dataset_closes_subscriptions(self):
        service = self._service()
        try:
            sub = service.subscribe("d", OMQ(TBOX, chain_cq("RS")))
            service.register_dataset("d", random_data(2), replace=True)
            with pytest.raises(ValueError):
                service.poll(sub.subscription_id)
            assert sub.closed
        finally:
            service.close()


# ---------------------------------------------------------------------------
# wire helpers


class TestSSEFrames:
    def test_event_round_trip(self):
        frame = sse_event("delta", {"epoch": 3, "added": [["a"]]})
        event, data = decode_sse(frame.decode().strip("\n"))
        assert event == "delta"
        import json

        assert json.loads(data) == {"epoch": 3, "added": [["a"]]}

    def test_multiline_data(self):
        frame = sse_event("note", "line one\nline two")
        event, data = decode_sse(frame.decode().strip("\n"))
        assert (event, data) == ("note", "line one\nline two")


# ---------------------------------------------------------------------------
# end-to-end over both HTTP front-ends


@pytest.fixture
def threaded_stack():
    service = OMQService()
    service.register_dataset("demo", random_data(1))
    server = build_server(service, port=0, verbose=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield service, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


class TestThreadedServing:
    def test_update_response_carries_epoch(self, threaded_stack):
        _, url = threaded_stack
        client = Client.connect(url)
        body = client.update("demo", inserts=[("P", ("e1", "e2"))])
        assert body["epoch"] == 1
        body = client.update("demo", deletes=[("P", ("e1", "e2"))])
        assert body["epoch"] == 2

    def test_subscribe_poll_unsubscribe_round_trip(self, threaded_stack):
        service, url = threaded_stack
        client = Client.connect(url)
        omq = OMQ(TBOX, chain_cq("RS"))
        with client.subscribe("demo", omq) as sub:
            assert sub.answers == client.answer("demo", omq).answers
            client.update("demo", inserts=[("P", ("w1", "w2"))])
            deltas = sub.poll(timeout=5.0)
            assert deltas and sub.epoch == 1
            assert sub.answers == client.answer("demo", omq).answers
        # the context manager unsubscribed
        with pytest.raises(ServiceError):
            client._transport.poll(sub.subscription_id)

    def test_get_subscribe_is_501_here(self, threaded_stack):
        _, url = threaded_stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{url}/subscribe?subscription=x")
        assert excinfo.value.code == 501

    def test_parked_polls_have_own_budget(self):
        """Long-polls do not eat the answer/update budget, but they
        are not unbounded either: past ``max_polls`` parked pollers
        the threaded server answers the structured 429."""
        service = OMQService()
        service.register_dataset("demo", random_data(1))
        server = build_server(service, port=0, verbose=False,
                              max_polls=1)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            client = Client.connect(f"http://{host}:{port}")
            sub = service.subscribe("demo", OMQ(TBOX, chain_cq("RS")))
            parked = threading.Thread(
                target=lambda: client._transport.poll(
                    sub.subscription_id, since_epoch=sub.epoch,
                    timeout=5.0))
            parked.start()
            time.sleep(0.3)
            with pytest.raises(ServiceError) as excinfo:
                client._transport.poll(sub.subscription_id, timeout=5.0)
            assert excinfo.value.status == 429
            assert excinfo.value.error_type == "overloaded"
            assert excinfo.value.retry_after == 1.0
            # the update releases the parked poll and frees the slot
            service.update("demo", inserts=[("P", ("t1", "t2"))])
            parked.join(timeout=10)
            assert not parked.is_alive(), "poll still parked"
            body = client._transport.poll(sub.subscription_id)
            assert body["deltas"] == []
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5)

    def test_saturation_429_carries_retry_after(self):
        """The threaded server's backpressure must look exactly like
        the async server's: 429, structured body, Retry-After."""
        service = OMQService()
        service.register_dataset("demo", random_data(1))
        server = build_server(service, port=0, verbose=False,
                              max_pending=1)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            release = threading.Event()
            entered = threading.Event()
            original = server.router.handle

            def slow_handle(method, path, payload, **kwargs):
                if path == "/answer":
                    entered.set()
                    release.wait(5.0)
                return original(method, path, payload, **kwargs)

            server.router.handle = slow_handle
            client = Client.connect(f"http://{host}:{port}")
            omq = OMQ(TBOX, chain_cq("RS"))
            worker = threading.Thread(
                target=lambda: client.answer("demo", omq))
            worker.start()
            assert entered.wait(5.0)
            with pytest.raises(ServiceError) as excinfo:
                client.answer("demo", omq)
            release.set()
            worker.join(timeout=5)
            error = excinfo.value
            assert error.status == 429
            assert error.error_type == "overloaded"
            assert error.retry_after == 1.0
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5)


class TestFailedUpdateRecovery:
    """A failed update may leave the data partially applied; the
    subscribers must not be left serving a materialization that no
    longer reflects it (there may never be a next update)."""

    def test_failed_update_pushes_resync(self, monkeypatch):
        service = OMQService()
        try:
            service.register_dataset("d", random_data(1))
            omq = OMQ(TBOX, chain_cq("RS"))
            sub = service.subscribe("d", omq)

            def boom(state, inserts, deletes):
                raise RuntimeError("update exploded")

            monkeypatch.setattr(service, "_apply_update_locked", boom)
            with pytest.raises(RuntimeError):
                service.update("d", inserts=[("P", ("x1", "x2"))])
            # the failure epoch carried a proactive resync delta…
            body = service.poll(sub.subscription_id, since_epoch=0)
            deltas = [AnswerDelta.from_payload(raw)
                      for raw in body["deltas"]]
            assert any(delta.resync for delta in deltas)
            assert sub.epoch == 1 and not sub.stale
            assert not body["stale"]
            # …and the materialization matches the data as it now is
            assert sub.answers == service.answer("d", omq).answers
            assert service.stats()["standing"]["resyncs"] >= 1
            # the next (successful) update maintains normally again
            monkeypatch.undo()
            service.update("d", inserts=[("R", ("y1", "y2")),
                                         ("S", ("y2", "y3"))])
            assert sub.answers == service.answer("d", omq).answers
        finally:
            service.close()

    def test_unrecoverable_subscription_surfaces_stale(self, monkeypatch):
        service = OMQService()
        try:
            service.register_dataset("d", random_data(1))
            sub = service.subscribe("d", OMQ(TBOX, chain_cq("RS")))

            def boom(state, inserts, deletes):
                raise RuntimeError("update exploded")

            monkeypatch.setattr(service, "_apply_update_locked", boom)
            monkeypatch.setattr(
                "repro.service.service.full_reexecute",
                lambda sub, session: (_ for _ in ()).throw(
                    RuntimeError("resync exploded")))
            with pytest.raises(RuntimeError):
                service.update("d", inserts=[("P", ("x1", "x2"))])
            assert sub.stale
            assert service.poll(sub.subscription_id)["stale"]
            assert service.standing.snapshot(
                sub.subscription_id)["stale"]
        finally:
            service.close()


class TestAsyncServing:
    """SSE + long-poll on the asyncio front-end, checked differentially
    against an embedded client over the same updates (the style of
    ``tests/test_async_serve.py``)."""

    def test_sse_stream_matches_embedded_reference(self):
        service = OMQService()
        service.register_dataset("demo", random_data(1))
        reference = Client.local()
        reference.register_dataset("demo", random_data(1))
        omq = OMQ(TBOX, chain_cq("RS"))
        script = (
            {"inserts": [("P", ("s1", "s2"))]},
            {"inserts": [("R", ("s2", "s3")), ("S", ("s3", "s4"))]},
            {"deletes": [("P", ("s1", "s2"))]},
        )
        try:
            with serve_in_background(service) as handle:
                async def main():
                    async with AsyncClient.connect(handle.url) as client:
                        sub = await client.subscribe("demo", omq)
                        assert sub.answers \
                            == reference.answer("demo", omq).answers
                        received = []

                        async def consume():
                            async for delta in sub.stream():
                                received.append(delta)

                        task = asyncio.create_task(consume())
                        await asyncio.sleep(0.2)
                        for step in script:
                            await client.update(
                                "demo",
                                inserts=step.get("inserts", ()),
                                deletes=step.get("deletes", ()))
                            reference.update(
                                "demo",
                                inserts=step.get("inserts", ()),
                                deletes=step.get("deletes", ()))
                            # the maintained set must converge to the
                            # reference after every step
                            expected = reference.answer(
                                "demo", omq).answers
                            for _ in range(100):
                                if sub.answers == expected:
                                    break
                                await asyncio.sleep(0.05)
                            assert sub.answers == expected
                        await sub.unsubscribe()
                        await asyncio.wait_for(task, timeout=10)
                        assert sub.closed
                        # deltas were exact: non-overlapping, replayable
                        assert all(not delta.resync
                                   for delta in received)

                asyncio.run(main())
        finally:
            reference.close()
            service.close()

    def test_long_poll_on_async_server(self):
        service = OMQService()
        service.register_dataset("demo", random_data(1))
        omq = OMQ(TBOX, chain_cq("RS"))
        try:
            with serve_in_background(service) as handle:
                async def main():
                    async with AsyncClient.connect(handle.url) as client:
                        sub = await client.subscribe("demo", omq)
                        update_task = asyncio.create_task(
                            client.update("demo",
                                          inserts=[("P", ("p1", "p2"))]))
                        deltas = await sub.poll(timeout=5.0)
                        await update_task
                        assert deltas and sub.epoch == 1
                        await sub.unsubscribe()
                        with pytest.raises(ServiceError):
                            await sub.poll()

                asyncio.run(main())
        finally:
            service.close()

    def test_failing_poll_resolves_promptly(self):
        """Regression: the async server's thread-to-loop bridge used a
        closure over an ``except ... as`` name, whose cell is cleared
        at block exit — a race that could leave the future unresolved
        and a failing /poll hanging until the client-side timeout."""
        from repro.service.aserve import AsyncServiceServer

        service = OMQService()
        try:
            async def main():
                server = AsyncServiceServer(service)
                await server.start()

                def boom():
                    raise ValueError("kaboom")

                try:
                    for _ in range(25):
                        with pytest.raises(ValueError):
                            await asyncio.wait_for(
                                server._call_in_thread(boom), timeout=2)
                finally:
                    await server.stop()

            asyncio.run(main())
        finally:
            service.close()

    def test_parked_polls_are_bounded(self):
        """Past ``max_polls`` parked long-polls, new ones get the same
        structured 429 as saturated answer work."""
        service = OMQService()
        service.register_dataset("demo", random_data(1))
        omq = OMQ(TBOX, chain_cq("RS"))
        try:
            with serve_in_background(service, max_polls=1) as handle:
                async def main():
                    async with AsyncClient.connect(handle.url) as client:
                        sub = await client.subscribe("demo", omq)
                        parked = asyncio.create_task(sub.poll(timeout=5.0))
                        await asyncio.sleep(0.3)
                        with pytest.raises(ServiceError) as excinfo:
                            await sub.poll(timeout=5.0)
                        assert excinfo.value.status == 429
                        assert excinfo.value.error_type == "overloaded"
                        assert excinfo.value.retry_after == 1.0
                        # release the parked poll, then the slot is free
                        await client.update(
                            "demo", inserts=[("P", ("q1", "q2"))])
                        assert await asyncio.wait_for(parked, timeout=10)
                        deltas = await sub.poll()
                        assert deltas == []
                        await sub.unsubscribe()

                asyncio.run(main())
        finally:
            service.close()

    def test_sse_unknown_subscription_is_structured_error(self):
        service = OMQService()
        service.register_dataset("demo", random_data(1))
        try:
            with serve_in_background(service) as handle:
                async def main():
                    async with AsyncClient.connect(handle.url) as client:
                        sub = await client.subscribe(
                            "demo", OMQ(TBOX, chain_cq("RS")))
                        await sub.unsubscribe()

                        with pytest.raises(ServiceError) as excinfo:
                            async for _ in sub.stream():
                                pass
                        assert excinfo.value.status == 400

                asyncio.run(main())
        finally:
            service.close()
