"""Multi-tenancy: namespaces, quotas and rate limits.

The contract both servers must enforce identically (they share
:meth:`repro.service.protocol.Router.throttle` and the service-level
scoping):

* a tenant only ever sees its own datasets, ontologies and
  subscriptions — same names in two tenants never collide, and
  subscription ids cannot be probed across namespaces;
* quota breaches are structured 403 ``quota_exceeded`` rejections;
* token-bucket rate limits are structured 429 ``rate_limited``
  rejections carrying ``Retry-After``, while other tenants keep
  answering unaffected.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import OMQ, Client, ServiceError
from repro.queries import chain_cq
from repro.service import OMQService, serve_in_background
from repro.service.protocol import TENANT_HEADER, resolve_tenant
from repro.service.serve import build_server
from repro.store import (QuotaError, RateLimited, TenantManager,
                         TenantQuota)

from .helpers import example11_tbox, random_data

TBOX = example11_tbox()


class TestTenantNames:
    def test_default_tenant_keeps_bare_names(self):
        assert TenantManager.scope("", "demo") == "demo"
        assert TenantManager.split("demo") == ("", "demo")

    def test_scope_and_split_round_trip(self):
        scoped = TenantManager.scope("alice", "demo")
        assert scoped == "alice::demo"
        assert TenantManager.split(scoped) == ("alice", "demo")

    @pytest.mark.parametrize("bad", ["a::b", "::", "-lead", ".lead",
                                     "x" * 65, "sp ace", "tab\t"])
    def test_invalid_tenant_names_rejected(self, bad):
        with pytest.raises(ValueError):
            TenantManager.validate(bad)

    def test_separator_rejected_in_dataset_names(self):
        service = OMQService(max_workers=1)
        try:
            with pytest.raises(ValueError):
                service.register_dataset("a::b", random_data(1))
        finally:
            service.close()

    def test_resolve_tenant_payload_beats_header(self):
        assert resolve_tenant("alice", {}) == "alice"
        assert resolve_tenant("alice", {"tenant": "bob"}) == "bob"
        assert resolve_tenant(None, {}) == ""
        with pytest.raises(ValueError):
            resolve_tenant("no::pe", {})


class TestIsolation:
    @pytest.fixture
    def service(self):
        service = OMQService(max_workers=2)
        yield service
        service.close()

    def test_same_name_different_tenants(self, service):
        service.register_dataset("demo", random_data(1), tenant="alice")
        service.register_dataset("demo", random_data(2), tenant="bob")
        omq = OMQ(TBOX, chain_cq("RS"))
        alice = service.answer("demo", omq, tenant="alice").answers
        bob = service.answer("demo", omq, tenant="bob").answers
        assert alice != bob  # different seeds, different answers
        assert service.datasets(tenant="alice") == ("demo",)
        assert service.datasets(tenant="bob") == ("demo",)

    def test_tenant_cannot_reach_other_tenants_dataset(self, service):
        service.register_dataset("demo", random_data(1), tenant="alice")
        with pytest.raises(ValueError, match="unknown dataset"):
            service.answer("demo", OMQ(TBOX, chain_cq("RS")),
                           tenant="bob")
        with pytest.raises(ValueError, match="unknown dataset"):
            service.answer("demo", OMQ(TBOX, chain_cq("RS")))

    def test_tboxes_are_tenant_scoped(self, service):
        service.register_tbox("uni", TBOX, tenant="alice")
        assert service.named_tbox("uni", tenant="alice") is not None
        with pytest.raises(ValueError):
            service.named_tbox("uni", tenant="bob")

    def test_subscriptions_cannot_be_probed_across_tenants(self, service):
        service.register_dataset("demo", random_data(1), tenant="alice")
        sub = service.subscribe("demo", OMQ(TBOX, chain_cq("RS")),
                                tenant="alice")
        for tenant in ("bob", ""):
            with pytest.raises(ValueError, match="unknown subscription"):
                service.poll(sub.subscription_id, tenant=tenant)
            with pytest.raises(ValueError, match="unknown subscription"):
                service.unsubscribe(sub.subscription_id, tenant=tenant)
        service.unsubscribe(sub.subscription_id, tenant="alice")

    def test_update_is_tenant_scoped(self, service):
        service.register_dataset("demo", random_data(1), tenant="alice")
        service.register_dataset("demo", random_data(1), tenant="bob")
        service.update("demo", inserts=[("R", ("q1", "q2")),
                                        ("S", ("q2", "q3"))],
                       tenant="alice")
        omq = OMQ(TBOX, chain_cq("RS"))
        assert ("q1", "q3") in service.answer("demo", omq,
                                              tenant="alice").answers
        assert ("q1", "q3") not in service.answer("demo", omq,
                                                  tenant="bob").answers


class TestQuotas:
    def test_max_datasets(self):
        service = OMQService(max_workers=1,
                             quota=TenantQuota(max_datasets=2))
        try:
            service.register_dataset("d1", random_data(1), tenant="t")
            service.register_dataset("d2", random_data(2), tenant="t")
            with pytest.raises(QuotaError) as info:
                service.register_dataset("d3", random_data(3), tenant="t")
            assert info.value.resource == "datasets"
            # dropping one frees the slot
            service.unregister_dataset("d1", tenant="t")
            service.register_dataset("d3", random_data(3), tenant="t")
            # replace of an existing dataset is not a new slot
            service.register_dataset("d2", random_data(4), replace=True,
                                     tenant="t")
        finally:
            service.close()

    def test_max_facts_counts_updates(self):
        service = OMQService(max_workers=1,
                             quota=TenantQuota(max_facts=25))
        try:
            service.register_dataset("d", random_data(1, atoms=18),
                                     tenant="t")
            with pytest.raises(QuotaError) as info:
                service.update(
                    "d", inserts=[("R", (f"a{i}", f"b{i}"))
                                  for i in range(30)], tenant="t")
            assert info.value.resource == "facts"
        finally:
            service.close()

    def test_max_subscriptions(self):
        service = OMQService(max_workers=1,
                             quota=TenantQuota(max_subscriptions=1))
        try:
            service.register_dataset("d", random_data(1), tenant="t")
            omq = OMQ(TBOX, chain_cq("RS"))
            sub = service.subscribe("d", omq, tenant="t")
            with pytest.raises(QuotaError):
                service.subscribe("d", omq, tenant="t")
            service.unsubscribe(sub.subscription_id, tenant="t")
            service.subscribe("d", omq, tenant="t")  # slot freed
        finally:
            service.close()

    def test_quotas_are_per_tenant(self):
        service = OMQService(max_workers=1,
                             quota=TenantQuota(max_datasets=1))
        try:
            service.register_dataset("d", random_data(1), tenant="a")
            service.register_dataset("d", random_data(1), tenant="b")
            with pytest.raises(QuotaError):
                service.register_dataset("d2", random_data(1), tenant="a")
        finally:
            service.close()

    def test_failed_subscribe_releases_quota(self):
        service = OMQService(max_workers=1,
                             quota=TenantQuota(max_subscriptions=1))
        try:
            with pytest.raises(ValueError, match="unknown dataset"):
                service.subscribe("missing", OMQ(TBOX, chain_cq("RS")),
                                  tenant="t")
            # the failed attempt must not have burned the only slot
            service.register_dataset("d", random_data(1), tenant="t")
            service.subscribe("d", OMQ(TBOX, chain_cq("RS")), tenant="t")
        finally:
            service.close()


class TestRateLimit:
    def test_token_bucket_throttles_and_refills(self):
        service = OMQService(
            max_workers=1,
            quota=TenantQuota(rate_limit=50.0, rate_burst=3.0))
        try:
            for _ in range(3):
                service.tenants.throttle("t")
            with pytest.raises(RateLimited) as info:
                service.tenants.throttle("t")
            assert info.value.retry_after > 0
            time.sleep(info.value.retry_after + 0.05)
            service.tenants.throttle("t")  # bucket refilled
        finally:
            service.close()

    def test_rate_limits_are_per_tenant(self):
        service = OMQService(
            max_workers=1,
            quota=TenantQuota(rate_limit=50.0, rate_burst=2.0))
        try:
            service.tenants.throttle("a")
            service.tenants.throttle("a")
            with pytest.raises(RateLimited):
                service.tenants.throttle("a")
            service.tenants.throttle("b")  # unaffected
        finally:
            service.close()


def _http_call(base, path, payload=None, tenant=None):
    headers = {"Content-Type": "application/json"}
    if tenant:
        headers[TENANT_HEADER] = tenant
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(base + path, data, headers)
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


class _ServerContract:
    """The wire-level tenancy contract, run against both front-ends
    (subclasses provide ``server_url``)."""

    QUOTA = TenantQuota(max_datasets=2, rate_limit=30.0, rate_burst=6.0)

    def test_header_scopes_requests(self, server_url):
        for tenant, seed in (("alice", 1), ("bob", 2)):
            status, _, _ = _http_call(
                server_url, "/datasets",
                {"name": "demo",
                 "data": "\n".join(f"{p}({', '.join(a)})"
                                   for p, a in sorted(
                                       random_data(seed).atoms()))},
                tenant=tenant)
            assert status == 201
        query = {"dataset": "demo", "tbox_text": str(
            "roles: P, R, S\nP <= S\nP <= R-"),
            "query": "R(x, y), S(y, z)", "answers": ["x", "z"]}
        _, _, alice = _http_call(server_url, "/answer", query,
                                 tenant="alice")
        _, _, bob = _http_call(server_url, "/answer", query, tenant="bob")
        assert alice["answers"] != bob["answers"]
        status, _, body = _http_call(server_url, "/answer", query)
        assert status in (400, 404), body  # default tenant: no dataset

    def test_payload_tenant_field_wins(self, server_url):
        _http_call(server_url, "/datasets",
                   {"name": "mine", "data": "R(a, b)"}, tenant="carol")
        status, _, body = _http_call(
            server_url, "/answer",
            {"dataset": "mine", "tenant": "carol",
             "tbox_text": "roles: P, R, S\nP <= S\nP <= R-",
             "query": "R(x, y)", "answers": ["x"]}, tenant="dave")
        assert status == 200 and body["answers"] == [["a"]]

    def test_invalid_tenant_name_is_400(self, server_url):
        status, _, body = _http_call(
            server_url, "/datasets", {"name": "d", "data": "R(a, b)"},
            tenant="not::ok")
        assert status == 400 and "tenant" in body["error"]

    def test_quota_breach_is_structured_403(self, server_url):
        for index in range(2):
            _http_call(server_url, "/datasets",
                       {"name": f"q{index}", "data": "R(a, b)"},
                       tenant="erin")
        status, _, body = _http_call(
            server_url, "/datasets", {"name": "q2", "data": "R(a, b)"},
            tenant="erin")
        assert status == 403
        assert body["error_type"] == "quota_exceeded"
        assert "datasets" in body["error"]

    def test_rate_limit_is_429_with_retry_after_and_fair(self, server_url):
        _http_call(server_url, "/datasets",
                   {"name": "d", "data": "R(a, b)"}, tenant="flood")
        _http_call(server_url, "/datasets",
                   {"name": "d", "data": "R(x, y)"}, tenant="calm")
        query = {"dataset": "d",
                 "tbox_text": "roles: P, R, S\nP <= S\nP <= R-",
                 "query": "R(x, y)", "answers": ["x"]}
        throttled = None
        for _ in range(20):
            status, headers, body = _http_call(server_url, "/answer",
                                               query, tenant="flood")
            if status == 429:
                throttled = (headers, body)
                break
        assert throttled is not None, "flooding tenant never throttled"
        headers, body = throttled
        assert body["error_type"] == "rate_limited"
        assert float(headers["Retry-After"]) >= 0
        assert body["retry_after"] >= 0
        # the quiet tenant keeps answering while the flood is throttled
        status, _, body = _http_call(server_url, "/answer", query,
                                     tenant="calm")
        assert status == 200 and body["answers"] == [["x"]]

    def test_stats_report_per_tenant_counters(self, server_url):
        _http_call(server_url, "/datasets",
                   {"name": "d", "data": "R(a, b)"}, tenant="grace")
        _, _, stats = _http_call(server_url, "/stats")
        tenants = stats["tenants"]
        assert tenants["quota"]["max_datasets"] == 2
        assert tenants["per_tenant"]["grace"]["datasets"] == 1


class TestThreadedServerTenancy(_ServerContract):
    @pytest.fixture
    def server_url(self):
        service = OMQService(max_workers=2, quota=self.QUOTA)
        server = build_server(service, port=0, verbose=False)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
        service.close()


class TestAsyncServerTenancy(_ServerContract):
    @pytest.fixture
    def server_url(self):
        service = OMQService(max_workers=2, quota=self.QUOTA)
        with serve_in_background(service) as handle:
            yield handle.url
        service.close()


class TestClientTenancy:
    def test_wrapped_clients_are_isolated(self):
        service = OMQService(max_workers=2)
        try:
            alice = Client.wrap(service, tenant="alice")
            bob = Client.wrap(service, tenant="bob")
            alice.register_dataset("demo", random_data(1))
            bob.register_dataset("demo", random_data(2))
            omq = OMQ(TBOX, chain_cq("RS"))
            assert alice.answer("demo", omq).answers \
                != bob.answer("demo", omq).answers
            assert alice.datasets() == ("demo",)
        finally:
            service.close()

    def test_http_client_sends_tenant_header(self):
        service = OMQService(max_workers=2)
        server = build_server(service, port=0, verbose=False)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            alice = Client.connect(url, tenant="alice")
            alice.register_dataset("demo", random_data(1))
            omq = OMQ(TBOX, chain_cq("RS"))
            got = alice.answer("demo", omq)
            expected = service.answer("demo", omq, tenant="alice")
            assert got.answers == expected.answers
            # the default-tenant client cannot see alice's dataset
            with pytest.raises(ServiceError):
                Client.connect(url).answer("demo", omq)
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            service.close()
