"""Shared fixtures/utilities for the rewriting tests."""

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.data import ABox
from repro.engine import ENGINES, engine_available
from repro.ontology import TBox


def engine_params(names=ENGINES):
    """``pytest.param`` entries for every registered engine, skipping
    the ones this environment cannot construct (``duckdb`` without its
    optional package).  Keeps parametrised suites iterating the full
    :data:`~repro.engine.ENGINES` registry instead of hard-coding it.
    """
    return [pytest.param(name,
                         marks=pytest.mark.skipif(
                             not engine_available(name),
                             reason=f"engine {name!r} unavailable"))
            for name in names]


def hypothesis_settings(max_examples: int) -> settings:
    """The one hypothesis ``settings`` every property suite uses.

    ``max_examples`` is the suite's full-depth budget; setting
    ``REPRO_HYPOTHESIS_PROFILE=ci`` caps it (CI trades depth for
    wall clock, local runs keep the full budget).
    """
    profile = os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default")
    if profile == "ci":
        max_examples = min(max_examples, 8)
    elif profile != "default":
        raise ValueError(
            f"unknown REPRO_HYPOTHESIS_PROFILE {profile!r}; "
            "expected 'default' or 'ci'")
    return settings(max_examples=max_examples, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def example11_tbox() -> TBox:
    """The ontology of Example 11 / Section 6."""
    return TBox.parse("roles: P, R, S\nP <= S\nP <= R-")


def deep_tbox() -> TBox:
    """A depth-2 ontology exercising longer witness words."""
    return TBox.parse("""
        roles: P, Q, R, S
        A <= EP
        EP- <= EQ
        EQ- <= B
        P <= R
        Q <= S
    """)


def infinite_tbox() -> TBox:
    """An infinite-depth ontology (for the Tw rewriter)."""
    return TBox.parse("""
        roles: P, R
        A <= EP
        EP- <= A
        P <= R
    """)


def random_data(seed: int, individuals: int = 6, atoms: int = 18,
                unary=("A", "B", "A_P", "A_P-", "A_Q", "A_Q-"),
                binary=("P", "Q", "R", "S")) -> ABox:
    """A reproducible random data instance."""
    rng = random.Random(seed)
    abox = ABox()
    names = [f"n{i}" for i in range(individuals)]
    for _ in range(atoms):
        use_unary = unary and (not binary or rng.random() < 0.35)
        if use_unary:
            abox.add(rng.choice(list(unary)), rng.choice(names))
        else:
            abox.add(rng.choice(list(binary)), rng.choice(names),
                     rng.choice(names))
    return abox
