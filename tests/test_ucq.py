"""Tests for the tree-witness UCQ rewriter (our Rapid stand-in)."""

import pytest

from repro.chase import certain_answers
from repro.datalog import evaluate
from repro.queries import CQ, chain_cq
from repro.rewriting import ucq_rewrite

from .helpers import deep_tbox, example11_tbox, random_data


class TestAppendixA61:
    def test_nine_clauses(self):
        # the hand-computed UCQ rewriting of Appendix A.6.1
        ndl = ucq_rewrite(example11_tbox(), chain_cq("RSRRSRR"))
        assert len(ndl) == 9

    def test_all_heads_are_goal(self):
        ndl = ucq_rewrite(example11_tbox(), chain_cq("RSRRSRR"))
        assert all(clause.head.predicate == "G"
                   for clause in ndl.program.clauses)

    def test_exponential_growth(self):
        tbox = example11_tbox()
        short = len(ucq_rewrite(tbox, chain_cq("RSRRSRR")))
        long = len(ucq_rewrite(tbox, chain_cq("RSRRSRRRSR")))
        assert long >= 3 * short


class TestCorrectness:
    @pytest.mark.parametrize("labels", ["R", "RS", "RSR", "RRSRS"])
    def test_matches_oracle(self, labels):
        tbox = example11_tbox()
        query = chain_cq(labels)
        ndl = ucq_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed, binary=("P", "R", "S"),
                               unary=("A_P", "A_P-", "A_S"))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_boolean_rootless_witness(self):
        from repro.ontology import TBox

        tbox = TBox.parse("roles: P\nB <= EP\nEP- <= B")
        query = CQ.parse("P(x, y), P(y, z)")
        ndl = ucq_rewrite(tbox, query)
        for seed in range(4):
            abox = random_data(seed + 30, binary=("P",), unary=("B",))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_deep_ontology(self):
        tbox = deep_tbox()
        query = chain_cq("RQ")
        ndl = ucq_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed + 60)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_budget_guard(self):
        tbox = example11_tbox()
        with pytest.raises(RuntimeError):
            ucq_rewrite(tbox, chain_cq("RSR" * 5), max_disjuncts=5)
