"""Tests for the factorised Presto-style rewriter."""

import pytest

from repro.chase import certain_answers
from repro.datalog import evaluate
from repro.queries import CQ, chain_cq
from repro.rewriting import presto_rewrite, ucq_rewrite

from .helpers import deep_tbox, example11_tbox, random_data


class TestStructure:
    def test_factorisation_beats_ucq_on_long_chains(self):
        tbox = example11_tbox()
        query = chain_cq("RSRRSRRRSRRSR")
        assert len(presto_rewrite(tbox, query)) < len(
            ucq_rewrite(tbox, query))

    def test_one_cluster_predicate_per_segment(self):
        tbox = example11_tbox()
        ndl = presto_rewrite(tbox, chain_cq("RSRRSRR"))
        cluster_preds = {c.head.predicate for c in ndl.program.clauses
                         if c.head.predicate.startswith("C")}
        assert len(cluster_preds) == 2  # the two RSR segments


class TestCorrectness:
    @pytest.mark.parametrize("labels", ["R", "RS", "RSR", "RRSRS"])
    def test_matches_oracle(self, labels):
        tbox = example11_tbox()
        query = chain_cq(labels)
        ndl = presto_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed, binary=("P", "R", "S"),
                               unary=("A_P", "A_P-", "A_S"))
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_deep_ontology(self):
        tbox = deep_tbox()
        query = chain_cq("RQS")
        ndl = presto_rewrite(tbox, query)
        for seed in range(6):
            abox = random_data(seed + 40)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"

    def test_star_query(self):
        tbox = deep_tbox()
        query = CQ.parse("P(c, x), Q(x, y), P(c, z)", answer_vars=["c"])
        ndl = presto_rewrite(tbox, query)
        for seed in range(5):
            abox = random_data(seed + 80)
            expected = certain_answers(tbox, abox, query)
            got = evaluate(ndl, abox.complete(tbox)).answers
            assert got == expected, f"seed {seed}"
