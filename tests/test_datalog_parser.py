"""Tests for the NDL text format (repro.datalog.parser): parsing and
the print/parse round-trip."""

import pytest
from hypothesis import given, settings

from repro import ABox
from repro.datalog import evaluate
from repro.datalog.parser import (
    ProgramParseError,
    parse_program,
    parse_query,
)
from repro.datalog.program import Clause, Equality, Literal, NDLQuery, Program

from .test_sql import _random_abox, _random_query


class TestParseProgram:
    def test_single_clause(self):
        program = parse_program("G(x) <- R(x, y) & A(y)")
        assert len(program) == 1
        clause = program.clauses[0]
        assert clause.head == Literal("G", ("x",))
        assert clause.body_literals == [Literal("R", ("x", "y")),
                                        Literal("A", ("y",))]

    def test_equality_atom(self):
        program = parse_program("G(x) <- A(x) & x = y & B(y)")
        assert program.clauses[0].body_equalities == [Equality("x", "y")]

    def test_fact(self):
        program = parse_program("Seeded().")
        clause = program.clauses[0]
        assert clause.head == Literal("Seeded", ())
        assert clause.body == ()

    def test_comments_and_blank_lines(self):
        program = parse_program("""
            # the goal layer
            G(x) <- Q(x)   # reads Q

            Q(x) <- A(x)
        """)
        assert len(program) == 2

    def test_dashes_and_primes_in_names(self):
        program = parse_program("G(x) <- A_P-(x)")
        assert program.clauses[0].body_literals[0].predicate == "A_P-"

    def test_malformed_atom_is_rejected(self):
        with pytest.raises(ProgramParseError, match="cannot parse atom"):
            parse_program("G(x <- A(x)")

    def test_goal_line_rejected_in_parse_program(self):
        with pytest.raises(ProgramParseError, match="goal"):
            parse_program("goal G(x)\nG(x) <- A(x)")

    def test_recursive_program_is_rejected(self):
        with pytest.raises(ValueError, match="recursive"):
            parse_program("G(x) <- G(x)")


class TestParseQuery:
    def test_goal_line(self):
        query = parse_query("""
            goal G(x)
            G(x) <- R(x, y)
        """)
        assert query.goal == "G"
        assert query.answer_vars == ("x",)

    def test_goal_argument(self):
        query = parse_query("G(x) <- R(x, y)", goal="G",
                            answer_vars=("x",))
        assert query.goal == "G"

    def test_missing_goal_is_rejected(self):
        with pytest.raises(ProgramParseError, match="no goal"):
            parse_query("G(x) <- R(x, y)")

    def test_duplicate_goal_is_rejected(self):
        with pytest.raises(ProgramParseError, match="duplicate"):
            parse_query("goal G(x)\ngoal G(y)\nG(x) <- A(x)")

    def test_parsed_query_evaluates(self):
        query = parse_query("""
            goal G(x)
            G(x) <- R(x, y) & Q(y)
            Q(y) <- A(y)
        """)
        abox = ABox.parse("R(a, b), A(b), R(c, d)")
        assert evaluate(query, abox).answers == {("a",)}


class TestRoundTrip:
    def test_simple_round_trip(self):
        original = NDLQuery(Program([
            Clause(Literal("G", ("x",)),
                   (Literal("R", ("x", "y")), Literal("Q", ("y",)))),
            Clause(Literal("Q", ("y",)),
                   (Literal("A", ("y",)), Equality("y", "y"))),
        ]), "G", ("x",))
        reparsed = parse_query(str(original))
        assert reparsed.goal == original.goal
        assert reparsed.answer_vars == original.answer_vars
        assert [str(c) for c in reparsed.program.clauses] == \
            [str(c) for c in original.program.clauses]

    @settings(max_examples=40, deadline=None)
    @given(query=_random_query(), abox=_random_abox())
    def test_property_round_trip_preserves_answers(self, query, abox):
        reparsed = parse_query(str(query))
        assert (evaluate(reparsed, abox).answers
                == evaluate(query, abox).answers)

    def test_rewriter_output_round_trips(self):
        from repro import OMQ, chain_cq, rewrite

        from .helpers import example11_tbox

        tbox = example11_tbox()
        for method in ("lin", "log", "tw"):
            ndl = rewrite(OMQ(tbox, chain_cq("RSR")), method=method)
            reparsed = parse_query(str(ndl))
            abox = ABox.parse("R(a,b), S(b,c), R(c,d)").complete(tbox)
            assert (evaluate(reparsed, abox).answers
                    == evaluate(ndl, abox).answers)
