"""Golden-answer regression fixtures.

Each case is a (TBox, ABox, queries) triple drawn from the suite's
example ontologies; its sorted certain answers are snapshotted in
``tests/golden/<case>.json``.  The tests assert that every engine
(``python``, ``sql``, ``sql-views``) and the sharded scatter-gather
path reproduce the snapshots byte-for-byte — the broadest cheap
tripwire against a rewriting or evaluation regression.

Regenerate deliberately with ``pytest tests/test_golden.py
--update-golden`` after a change that legitimately alters answers
(there should be almost none), and review the diff like code.
"""

import json
import pathlib

import pytest

from repro import OMQ, AnswerSession, available_engines
from repro.data import ABox
from repro.queries import CQ, chain_cq
from repro.service import OMQService
from repro.shard import ShardedSession

from .helpers import deep_tbox, example11_tbox, infinite_tbox, random_data

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

#: Binary predicates each case's update script may touch (must be
#: declared roles of the case's ontology).
_SCRIPT_ROLES = {"example11": ("P", "R", "S"),
                 "deep": ("P", "Q"),
                 "infinite": ("P", "R")}


def _update_script(case):
    """A fixed two-step insert/delete script in the case's vocabulary
    (the second step deletes what the first inserted, so both delta
    directions are pinned)."""
    first, last = _SCRIPT_ROLES[case][0], _SCRIPT_ROLES[case][-1]
    return (
        {"insert": ((first, ("g1", "g2")), (last, ("n0", "g1"))),
         "delete": ()},
        {"insert": ((last, ("g2", "n1")),),
         "delete": ((first, ("g1", "g2")),)},
    )


def _apply_script(abox, script):
    """The script folded into a fresh ABox (the from-scratch oracle
    for the post-update snapshots; deletions apply first, matching
    ``OMQService.update``)."""
    atoms = set(abox.atoms())
    for step in script:
        atoms -= set(step["delete"])
        atoms |= set(step["insert"])
    updated = ABox()
    for predicate, args in sorted(atoms):
        updated.add(predicate, *args)
    return updated


def _cases():
    """name -> (tbox, abox, {query-name: CQ})."""
    return {
        "example11": (
            example11_tbox(), random_data(1),
            {"chain-RS": chain_cq("RS"),
             "chain-RSR": chain_cq("RSR"),
             "unary-AP": CQ.parse("A_P(x)", answer_vars=["x"]),
             "boolean-R": CQ.parse("R(x, y)", answer_vars=[]),
             "disconnected": CQ.parse("R(x, y), S(u, v)",
                                      answer_vars=["x", "u"])}),
        "deep": (
            deep_tbox(), random_data(7, atoms=24),
            {"chain-RS": chain_cq("RS"),
             "unary-B": CQ.parse("B(x)", answer_vars=["x"]),
             "pair-RQ": CQ.parse("R(x, y), S(y, z)",
                                 answer_vars=["x", "z"])}),
        "infinite": (
            infinite_tbox(), random_data(3, atoms=20,
                                         unary=("A", "A_P", "A_P-"),
                                         binary=("P", "R")),
            {"role-R": CQ.parse("R(x, y)", answer_vars=["x", "y"]),
             "chain-RR": chain_cq("RR")}),
    }


def _snapshot(tbox, abox, queries, engine: str):
    """Sorted answers for every query, via one loaded session."""
    answers = {}
    with AnswerSession(abox, engine=engine) as session:
        for name, query in sorted(queries.items()):
            result = session.answer(OMQ(tbox, query))
            answers[name] = sorted(list(row) for row in result.answers)
    return answers


@pytest.mark.parametrize("case", sorted(_cases()))
def test_golden_answers(case, update_golden):
    tbox, abox, queries = _cases()[case]
    path = GOLDEN_DIR / f"{case}.json"
    produced = _snapshot(tbox, abox, queries, "python")
    script = _update_script(case)
    # the post-update snapshot is always blessed *from scratch* — the
    # incremental maintenance under test never blesses itself
    post_produced = _snapshot(tbox, _apply_script(abox, script),
                              queries, "python")

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        payload = {"queries": {name: {"query": str(queries[name]),
                                      "answers": produced[name],
                                      "post_update": post_produced[name]}
                               for name in sorted(queries)}}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")

    assert path.exists(), (
        f"missing golden file {path.name}; generate it with "
        "pytest tests/test_golden.py --update-golden")
    golden = json.loads(path.read_text())
    expected = {name: entry["answers"]
                for name, entry in golden["queries"].items()}
    assert produced == expected
    expected_post = {name: entry["post_update"]
                     for name, entry in golden["queries"].items()}
    assert post_produced == expected_post

    # every engine must reproduce the snapshot exactly
    for engine in available_engines():
        if engine == "python":
            continue
        assert _snapshot(tbox, abox, queries, engine) == expected, engine

    # ... and so must the sharded scatter-gather path
    with ShardedSession(abox, shards=2, executor="serial") as session:
        for name, query in sorted(queries.items()):
            plan = session.compile(OMQ(tbox, query))
            result = plan.execute(session)
            assert sorted(list(row) for row in result.answers) \
                == expected[name], name

    # incremental maintenance must land on the same post-update
    # snapshot: subscribe every query, replay the script as live
    # updates, compare the delta-maintained sets against the
    # from-scratch blessing
    service = OMQService()
    try:
        tbox2, abox2, queries2 = _cases()[case]
        service.register_dataset("g", abox2)
        subs = {name: service.subscribe("g", OMQ(tbox2, query))
                for name, query in sorted(queries2.items())}
        for step in _update_script(case):
            service.update("g", inserts=step["insert"],
                           deletes=step["delete"])
        for name, sub in subs.items():
            maintained = sorted(list(row) for row in sub.answers)
            assert maintained == expected_post[name], name
    finally:
        service.close()


def test_golden_files_match_cases():
    """Every golden file belongs to a live case (no orphans rotting)."""
    if not GOLDEN_DIR.exists():
        pytest.skip("golden files not generated yet")
    names = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert names == set(_cases())
