# The serving image: the asyncio front-end with durable multi-tenant
# storage on a mounted volume.
#
#   docker build -t repro-serve .
#   docker run -p 8080:8080 -v repro-data:/data repro-serve
#
# The package has no hard dependencies, so the image is just the
# source tree on a slim Python base — no pip round trip to break the
# build offline.

FROM python:3.12-slim

WORKDIR /app
COPY src/ /app/src/
ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1

VOLUME /data
EXPOSE 8080

# SIGTERM triggers the graceful drain: in-flight requests finish and
# the dataset store is checkpointed before exit (WAL folded away)
STOPSIGNAL SIGTERM

CMD ["python", "-m", "repro", "serve", "--async-io", \
     "--host", "0.0.0.0", "--port", "8080", "--data-dir", "/data"]
