"""Shared driver for the Table 3-5 benches."""

from repro.experiments import (
    consistency_check,
    print_table,
    run_evaluation_table,
    table_headers,
    table_rows,
)

#: Query sizes evaluated per sequence (the paper runs 1-15; these keep
#: the Python engine within a laptop budget).
SIZES = (1, 3, 5, 7, 9)


def run_table(sequence: str, datasets, benchmark, title: str):
    points = run_evaluation_table(sequence, datasets, sizes=SIZES,
                                  time_budget=30.0)
    for name in sorted(datasets):
        print_table(f"{title} - dataset {name}", table_headers(),
                    table_rows(points, name))
    assert consistency_check(points), "engines disagree on answer counts"

    # benchmark one representative evaluation (tw on the largest
    # dataset), over a session-loaded engine as in the tables above
    from repro.engine import PythonEngine
    from repro.experiments import SEQUENCES, example11_tbox
    from repro.queries import chain_cq
    from repro.rewriting import OMQ, rewrite

    tbox = example11_tbox()
    query = chain_cq(SEQUENCES[sequence][:7])
    ndl = rewrite(OMQ(tbox, query), method="tw")
    largest = datasets[max(datasets, key=lambda k: len(datasets[k]))]
    engine = PythonEngine(largest.complete(tbox))
    benchmark.pedantic(lambda: engine.evaluate(ndl),
                       iterations=1, rounds=3)
    return points
