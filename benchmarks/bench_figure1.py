"""Figure 1: the complexity landscape of OMQ answering.

Regenerates both halves of Figure 1 — (a) combined complexity and
(b) polynomial-size rewriting existence — from
``repro.complexity.landscape`` and prints them; the benchmark measures
the classification function itself.
"""

import math

from repro.complexity import (
    combined_complexity,
    landscape_grid,
    rewriting_size_status,
)
from repro.experiments import print_table


def test_figure1_grid(benchmark):
    grid = benchmark(landscape_grid)
    print_table(
        "Figure 1: combined complexity (a) and rewriting sizes (b)",
        ["depth", "query shape", "combined", "rewriting sizes"],
        [[row["depth"], row["shape"], row["combined"], row["rewritings"]]
         for row in grid])
    # spot-check the paper's headline cells
    assert combined_complexity(2, 1, 3) == "NL"
    assert combined_complexity(2, 5, math.inf) == "LOGCFL"
    assert combined_complexity(math.inf, 1, 3) == "LOGCFL"
    assert combined_complexity(math.inf, 1, math.inf) == "NP"
    assert not rewriting_size_status(2, 1, 3).poly_pe
