"""Hardness-gadget scaling: the reductions of Sections 4-5 behave as
predicted (OMQ answering solves hitting set / SAT through the fixed
machinery), with gadget sizes growing as the theorems state.
"""

from repro.chase import certain_answers
from repro.experiments import print_table
from repro.hardness import (
    Hypergraph,
    has_hitting_set,
    hitting_set_omq,
    is_satisfiable,
    sat_omq,
)


def test_hitting_set_scaling(benchmark):
    H = Hypergraph.of(4, [[1, 3], [2, 4], [1, 2], [3, 4]])
    rows = []
    for k in (1, 2):
        tbox, query, abox = hitting_set_omq(H, k)
        expected = has_hitting_set(H, k)
        got = bool(certain_answers(tbox, abox, query))
        assert got == expected
        rows.append([k, len(tbox.user_axioms), len(query),
                     tbox.depth(), expected])
    print_table("Theorem 15 gadget (hitting set)",
                ["k", "axioms", "query atoms", "depth", "answer"], rows)
    tbox2, query2, abox2 = hitting_set_omq(H, 2)
    benchmark.pedantic(
        lambda: bool(certain_answers(tbox2, abox2, query2)),
        iterations=1, rounds=2)


def test_sat_gadget(benchmark):
    rows = []
    for cnf in ([[1, 2], [-1]], [[1], [-1]], [[1, -2], [2]]):
        tbox, query, abox = sat_omq(cnf)
        expected = is_satisfiable(cnf)
        got = bool(certain_answers(tbox, abox, query))
        assert got == expected
        rows.append([str(cnf), len(query), expected])
    print_table("Theorem 17 gadget (SAT with fixed T-dagger)",
                ["cnf", "query atoms", "satisfiable"], rows)
    tbox2, query2, abox2 = sat_omq([[1, 2], [-1]])
    benchmark.pedantic(
        lambda: bool(certain_answers(tbox2, abox2, query2)),
        iterations=1, rounds=2)
