"""Figure 2: sizes of NDL-rewritings of the three OMQ sequences.

Regenerates the barcharts of Section 6: Tw/Lin/Log grow linearly while
the UCQ-style stand-ins (Rapid/Clipper ~ ucq/perfectref, Presto ~ the
factorised variant) grow exponentially or hit their budget (the
paper's timeouts, shown as "-").
"""

import pytest

from repro.experiments import (
    SEQUENCES,
    ascii_barchart,
    example11_tbox,
    rewriting_sizes,
)
from repro.queries import chain_cq
from repro.rewriting import OMQ, rewrite


@pytest.fixture(scope="module")
def size_points():
    return rewriting_sizes(max_atoms=15, perfectref_budget=4000)


def test_figure2_barcharts(size_points, benchmark):
    tbox = example11_tbox()
    query = chain_cq(SEQUENCES["sequence1"])

    benchmark(lambda: rewrite(OMQ(tbox, query), method="tw"))

    for sequence in SEQUENCES:
        print()
        print(ascii_barchart(size_points, sequence))
    # the paper's qualitative claims
    for sequence in SEQUENCES:
        for algorithm in ("tw", "lin", "log"):
            sizes = [p.clauses for p in size_points
                     if p.sequence == sequence and p.algorithm == algorithm]
            assert all(s is not None and s <= 60 for s in sizes), (
                sequence, algorithm)
    ucq_seq1 = [p.clauses for p in size_points
                if p.sequence == "sequence1" and p.algorithm == "ucq"]
    assert ucq_seq1[-1] > 4 * ucq_seq1[8]


@pytest.mark.parametrize("algorithm", ["tw", "lin", "log", "ucq", "presto"])
def test_rewriting_construction_speed(benchmark, algorithm):
    """Time to construct the 15-atom Sequence 1 rewriting."""
    tbox = example11_tbox()
    omq = OMQ(tbox, chain_cq(SEQUENCES["sequence1"]))
    benchmark(lambda: rewrite(omq, method=algorithm))
