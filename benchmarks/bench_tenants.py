"""80-tenant durable serving: load, SIGTERM, warm restart, parity.

The deployment story end-to-end, against a real ``repro serve
--async-io --data-dir`` subprocess:

1. **Load** — 80 tenants each register a dataset, answer queries,
   subscribe a standing query, push an update and drain the delta,
   all concurrently; throughput is recorded.
2. **Fairness** — one flooding tenant is driven into its token-bucket
   limit (structured 429 + Retry-After asserted) while a quiet
   tenant's p50 latency is measured; the flood must not widen it.
3. **Restart** — the server is SIGTERMed (graceful drain checkpoints
   the store), restarted on the same directory, and the warm-restart
   wall time is recorded.
4. **Parity** — every tenant's answers, dataset epochs and re-armed
   subscriptions must match the pre-restart state exactly.

Writes ``BENCH_tenants.json`` (see ``benchmarks/README.md``).
"""

import asyncio
import json
import os
import signal
import socket
import statistics
import subprocess
import sys
import time
import urllib.error
import urllib.request

from repro import OMQ, AsyncClient, ServiceError
from repro.queries import CQ, chain_cq

from tests.helpers import example11_tbox, random_data

TENANTS = 80
CONCURRENCY = 16
RATE_LIMIT = 60.0   # per-tenant req/s: generous for the load phase
RATE_BURST = 90.0   # ... but finite, so the flood phase can hit it
FLOOD_REQUESTS = 150
CALM_SAMPLES = 25

TBOX = example11_tbox()
QUERIES = {"chain-RS": chain_cq("RS"),
           "unary-AP": CQ.parse("A_P(x)", answer_vars=["x"])}
UPDATE = {"inserts": [("R", ("f1", "f2")), ("S", ("f2", "f3"))]}


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _spawn(port: int, data_dir: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--async-io",
         "--host", "127.0.0.1", "--port", str(port),
         "--data-dir", data_dir, "--workers", "4",
         "--rate-limit", str(RATE_LIMIT),
         "--rate-burst", str(RATE_BURST)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 filter(None, [os.path.abspath("src"),
                               os.environ.get("PYTHONPATH", "")]))})


def _wait_healthy(url: str, deadline: float = 60.0) -> dict:
    start = time.perf_counter()
    while time.perf_counter() - start < deadline:
        try:
            with urllib.request.urlopen(f"{url}/health",
                                        timeout=5.0) as reply:
                return json.loads(reply.read())
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.1)
    raise RuntimeError(f"server at {url} never became healthy")


def _stats(url: str) -> dict:
    with urllib.request.urlopen(f"{url}/stats", timeout=10.0) as reply:
        return json.loads(reply.read())


def _tenant_name(index: int) -> str:
    return f"t{index:02d}"


async def _load_tenant(url: str, index: int):
    """One tenant's mixed workload; returns its recorded state."""
    tenant = _tenant_name(index)
    client = AsyncClient.connect(url, timeout=60.0, tenant=tenant)
    await client.register_dataset("demo",
                                  random_data(index, atoms=24))
    answers = {}
    for name, query in sorted(QUERIES.items()):
        result = await client.answer("demo", OMQ(TBOX, query))
        answers[name] = sorted(list(row) for row in result.answers)
    sub = await client.subscribe("demo", OMQ(TBOX, QUERIES["chain-RS"]))
    await client.update("demo", **UPDATE)
    await sub.poll(timeout=10.0)
    post = {}
    for name, query in sorted(QUERIES.items()):
        result = await client.answer("demo", OMQ(TBOX, query))
        post[name] = sorted(list(row) for row in result.answers)
    return {"tenant": tenant, "requests": 4 + 2 * len(QUERIES),
            "initial": answers, "post": post,
            "subscription": sub.subscription_id,
            "sub_epoch": sub.epoch,
            "sub_answers": sorted(list(row) for row in sub.answers)}


async def _load_phase(url: str):
    gate = asyncio.Semaphore(CONCURRENCY)

    async def bounded(index):
        async with gate:
            return await _load_tenant(url, index)

    return await asyncio.gather(*[bounded(index)
                                  for index in range(TENANTS)])


async def _fairness_phase(url: str):
    """Drive one tenant into its rate limit while timing another."""
    flood = AsyncClient.connect(url, timeout=30.0, tenant="flood")
    await flood.register_dataset("demo", random_data(999, atoms=12))
    calm = AsyncClient.connect(url, timeout=30.0, tenant=_tenant_name(0))
    omq = OMQ(TBOX, QUERIES["chain-RS"])

    async def calm_latencies(samples):
        latencies = []
        for _ in range(samples):
            start = time.perf_counter()
            await calm.answer("demo", omq)
            latencies.append(time.perf_counter() - start)
            await asyncio.sleep(0.02)
        return latencies

    quiet = await calm_latencies(CALM_SAMPLES)

    throttled = {"count": 0, "retry_after": None}

    async def flood_run():
        for _ in range(FLOOD_REQUESTS):
            try:
                await flood.answer("demo", omq)
            except ServiceError as error:
                if error.status == 429:
                    throttled["count"] += 1
                    if throttled["retry_after"] is None:
                        throttled["retry_after"] = error.retry_after
                else:
                    raise

    flood_task = asyncio.ensure_future(flood_run())
    during = await calm_latencies(CALM_SAMPLES)
    await flood_task

    assert throttled["count"] > 0, "flooding tenant was never throttled"
    assert throttled["retry_after"] is not None and \
        throttled["retry_after"] >= 0, throttled
    return {"flood_requests": FLOOD_REQUESTS,
            "flood_429s": throttled["count"],
            "retry_after_sample": round(throttled["retry_after"], 4),
            "calm_p50_quiet_ms": round(
                statistics.median(quiet) * 1000, 2),
            "calm_p50_during_flood_ms": round(
                statistics.median(during) * 1000, 2)}


async def _parity_phase(url: str, records):
    """Every tenant's post-restart view must equal the recorded one."""
    gate = asyncio.Semaphore(CONCURRENCY)
    mismatches = []

    async def check(record):
        async with gate:
            client = AsyncClient.connect(url, timeout=60.0,
                                         tenant=record["tenant"])
            for name, query in sorted(QUERIES.items()):
                result = await client.answer("demo", OMQ(TBOX, query))
                produced = sorted(list(row) for row in result.answers)
                if produced != record["post"][name]:
                    mismatches.append((record["tenant"], name))
            # the re-armed subscription resyncs to the maintained set
            body = await client._call(
                "/poll", {"subscription": record["subscription"],
                          "since_epoch": 0, "timeout": 0.0})
            resynced = sorted(list(row)
                              for row in body.get("answers", ()))
            if not body.get("resync") \
                    or resynced != record["sub_answers"] \
                    or int(body.get("epoch", -1)) != record["sub_epoch"]:
                mismatches.append((record["tenant"], "subscription"))

    await asyncio.gather(*[check(record) for record in records])
    return mismatches


def _terminate(process: subprocess.Popen) -> float:
    start = time.perf_counter()
    process.send_signal(signal.SIGTERM)
    process.wait(timeout=60)
    return time.perf_counter() - start


def test_eighty_tenants_survive_restart(tmp_path, report_writer):
    data_dir = str(tmp_path / "data")
    port = _free_port()
    url = f"http://127.0.0.1:{port}"

    process = _spawn(port, data_dir)
    try:
        _wait_healthy(url)

        load_start = time.perf_counter()
        records = asyncio.run(_load_phase(url))
        load_seconds = time.perf_counter() - load_start
        total_requests = sum(record["requests"] for record in records)

        fairness = asyncio.run(_fairness_phase(url))

        epochs_before = {
            name: entry["epoch"]
            for name, entry in _stats(url)["datasets"].items()}

        drain_seconds = _terminate(process)
    except BaseException:
        process.kill()
        raise

    restart_start = time.perf_counter()
    process = _spawn(port, data_dir)
    try:
        health = _wait_healthy(url)
        warm_restart_seconds = time.perf_counter() - restart_start
        # every tenant's dataset came back before the first request
        assert health["datasets"] == TENANTS + 1, health  # + flood's

        epochs_after = {
            name: entry["epoch"]
            for name, entry in _stats(url)["datasets"].items()}
        assert epochs_after == epochs_before

        mismatches = asyncio.run(_parity_phase(url, records))
        assert not mismatches, mismatches[:10]

        drain2 = _terminate(process)
    except BaseException:
        process.kill()
        raise

    report_writer("tenants", {
        "tenants": TENANTS,
        "concurrency": CONCURRENCY,
        "load_requests": total_requests,
        "load_seconds": round(load_seconds, 3),
        "requests_per_second": round(total_requests / load_seconds, 1),
        "fairness": fairness,
        "sigterm_drain_seconds": round(drain_seconds, 3),
        "warm_restart_seconds": round(warm_restart_seconds, 3),
        "second_drain_seconds": round(drain2, 3),
        "parity": {"datasets": TENANTS + 1,
                   "epochs_checked": len(epochs_before),
                   "subscriptions_checked": len(records),
                   "mismatches": 0},
    })
