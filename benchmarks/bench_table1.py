"""Table 1: the number of clauses of each rewriting, per sequence and
query size (the tabular form of Figure 2, including the "-" timeouts).
"""

import pytest

from repro.experiments import (
    ALGORITHMS,
    SEQUENCES,
    print_table,
    rewriting_sizes,
    size_table,
)


@pytest.fixture(scope="module")
def size_points():
    return rewriting_sizes(max_atoms=15, perfectref_budget=4000)


def test_table1(size_points, benchmark):
    benchmark(lambda: size_table(size_points, "sequence1"))
    headers = ["atoms"] + list(ALGORITHMS)
    for sequence, labels in SEQUENCES.items():
        print_table(f"Table 1 - {sequence} ({labels})", headers,
                    size_table(size_points, sequence))
    # sanity: every size present for the optimal rewriters
    for point in size_points:
        if point.algorithm in ("tw", "lin", "log"):
            assert point.clauses is not None
