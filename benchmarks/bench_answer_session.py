"""The Tables 3-5 workload shape: many rewritings, one data instance.

Compares the legacy per-call path (every ``answer()`` re-completes the
ABox, re-loads and re-indexes the EDB) with an
:class:`~repro.rewriting.api.AnswerSession` that loads once and
answers every (method, size) combination against the shared database.
The session must return identical answers and be measurably faster —
this is the headline speedup of the engine layer.
"""

import time

from repro.experiments import SEQUENCES, example11_tbox, print_table
from repro.queries import chain_cq
from repro.rewriting import OMQ, AnswerSession, answer

#: The repeated-rewriting workload: every method at several sizes.
METHODS = ("lin", "log", "tw", "tw_star", "presto")
SIZES = (3, 5, 7, 9)


def _omqs():
    tbox = example11_tbox()
    return [OMQ(tbox, chain_cq(SEQUENCES["sequence1"][:size]))
            for size in SIZES]


def test_session_vs_per_call(paper_data, benchmark):
    datasets, _ = paper_data
    abox = datasets["2.ttl"]
    omqs = _omqs()

    def per_call():
        return [answer(omq, abox, method=method).answers
                for omq in omqs for method in METHODS]

    def with_session():
        with AnswerSession(abox) as session:
            return [session.answer(omq, method=method).answers
                    for omq in omqs for method in METHODS]

    start = time.perf_counter()
    baseline_answers = per_call()
    baseline = time.perf_counter() - start
    start = time.perf_counter()
    session_answers = with_session()
    session_time = time.perf_counter() - start
    assert session_answers == baseline_answers
    print_table(
        "AnswerSession vs per-call answer() "
        f"({len(omqs) * len(METHODS)} queries, dataset 2.ttl)",
        ["path", "seconds", "speedup"],
        [["per-call", f"{baseline:.3f}", "1.0x"],
         ["session", f"{session_time:.3f}",
          f"{baseline / max(session_time, 1e-9):.1f}x"]])

    benchmark.pedantic(with_session, iterations=1, rounds=3)
