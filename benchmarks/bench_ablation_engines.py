"""Ablation: the SQL backend vs the native Python engine.

Section 6 asks "whether our rewritings can be efficiently implemented
using views in standard DBMSs".  This bench runs the same rewritings on
(i) the Python materialise-everything engine, (ii) SQLite with full
materialisation, and (iii) SQLite views (lazy, planner-driven), and
prints times and answer counts for each — all three must agree on the
answers.
"""

import time

from repro.datalog import evaluate
from repro.experiments import SEQUENCES, example11_tbox, print_table
from repro.queries import chain_cq
from repro.rewriting import OMQ, rewrite
from repro.sql import SQLEngine

#: (sequence, prefix length, rewriter) combinations exercised.
CASES = tuple((seq, size, method)
              for seq in ("sequence1", "sequence2")
              for size in (5, 9)
              for method in ("lin", "tw"))


def _run_case(tbox, completed, sql_engine, sequence, size, method):
    query = chain_cq(SEQUENCES[sequence][:size])
    ndl = rewrite(OMQ(tbox, query), method=method)
    rows = []
    start = time.perf_counter()
    python_result = evaluate(ndl, completed)
    rows.append(("python", time.perf_counter() - start,
                 len(python_result.answers),
                 python_result.generated_tuples))
    start = time.perf_counter()
    sql_result = sql_engine.evaluate(ndl, materialised=True)
    rows.append(("sqlite-tables", time.perf_counter() - start,
                 len(sql_result.answers), sql_result.generated_tuples))
    start = time.perf_counter()
    view_result = sql_engine.evaluate(ndl, materialised=False)
    rows.append(("sqlite-views", time.perf_counter() - start,
                 len(view_result.answers), view_result.generated_tuples))
    assert python_result.answers == sql_result.answers == view_result.answers
    return [(sequence, size, method) + row for row in rows]


def test_engine_ablation(paper_data, benchmark):
    datasets, _ = paper_data
    tbox = example11_tbox()
    completed = datasets["2.ttl"].complete(tbox)
    sql_engine = SQLEngine(completed)

    def run():
        rows = []
        for sequence, size, method in CASES:
            rows.extend(_run_case(tbox, completed, sql_engine,
                                  sequence, size, method))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    sql_engine.close()
    print_table(
        "Ablation - evaluation engines (dataset 2.ttl)",
        ["sequence", "atoms", "rewriter", "engine", "seconds",
         "answers", "tuples"],
        [[seq, size, method, engine, f"{seconds:.3f}", answers, tuples]
         for seq, size, method, engine, seconds, answers, tuples in rows])
    # every case produced all three engine rows
    assert len(rows) == 3 * len(CASES)
