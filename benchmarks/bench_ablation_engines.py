"""Ablation: the SQL backend vs the native Python engine.

Section 6 asks "whether our rewritings can be efficiently implemented
using views in standard DBMSs".  This bench runs the same rewritings on
(i) the Python interned/indexed engine, (ii) SQLite with full
materialisation, and (iii) SQLite views (lazy, planner-driven) — all
through the unified :mod:`repro.engine` layer, each backend loading
the data once — and prints times and answer counts for each; all three
must agree on the answers.
"""

import time

from repro.engine import available_engines, create_engine
from repro.experiments import SEQUENCES, example11_tbox, print_table
from repro.queries import chain_cq
from repro.rewriting import OMQ, rewrite

#: (sequence, prefix length, rewriter) combinations exercised.
CASES = tuple((seq, size, method)
              for seq in ("sequence1", "sequence2")
              for size in (5, 9)
              for method in ("lin", "tw"))


def _run_case(tbox, backends, sequence, size, method):
    query = chain_cq(SEQUENCES[sequence][:size])
    ndl = rewrite(OMQ(tbox, query), method=method)
    rows = []
    results = {}
    for name, backend in backends.items():
        start = time.perf_counter()
        results[name] = backend.evaluate(ndl)
        rows.append((name, time.perf_counter() - start,
                     len(results[name].answers),
                     results[name].generated_tuples))
    answer_sets = {frozenset(r.answers) for r in results.values()}
    assert len(answer_sets) == 1, "engines disagree on answers"
    return [(sequence, size, method) + row for row in rows]


def test_engine_ablation(paper_data, benchmark):
    datasets, _ = paper_data
    tbox = example11_tbox()
    completed = datasets["2.ttl"].complete(tbox)
    backends = {name: create_engine(name, completed)
                for name in available_engines()}

    def run():
        rows = []
        for sequence, size, method in CASES:
            rows.extend(_run_case(tbox, backends, sequence, size, method))
        return rows

    try:
        rows = benchmark.pedantic(run, iterations=1, rounds=1)
    finally:
        for backend in backends.values():
            backend.close()
    print_table(
        "Ablation - evaluation engines (dataset 2.ttl)",
        ["sequence", "atoms", "rewriter", "engine", "seconds",
         "answers", "tuples"],
        [[seq, size, method, engine, f"{seconds:.3f}", answers, tuples]
         for seq, size, method, engine, seconds, answers, tuples in rows])
    # every case produced one row per engine
    assert len(rows) == len(available_engines()) * len(CASES)
