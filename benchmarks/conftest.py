"""Shared fixtures for the benchmark suite.

The datasets of Table 2 are generated once per session (scaled down by
``repro.experiments.DEFAULT_SCALE`` — see DESIGN.md's substitution
table) and shared by the Table 3-5 benches.
"""

import pytest

from repro.experiments import DEFAULT_SCALE, table2


@pytest.fixture(scope="session")
def paper_data():
    """The four Table 2 datasets plus the printed rows."""
    datasets, rows = table2(scale=DEFAULT_SCALE, seed=0)
    return datasets, rows
