"""Shared fixtures for the benchmark suite.

The datasets of Table 2 are generated once per session (scaled down by
``repro.experiments.DEFAULT_SCALE`` — see DESIGN.md's substitution
table) and shared by the Table 3-5 benches.

``--output DIR`` redirects every ``BENCH_*.json`` report into ``DIR``
(created if missing); by default reports land in the working
directory.  Benches write through the ``report_writer`` fixture so
the option applies uniformly.
"""

import pytest

from _report import write_report
from repro.experiments import DEFAULT_SCALE, table2


def pytest_addoption(parser):
    parser.addoption(
        "--output", default=None, metavar="DIR",
        help="directory for BENCH_*.json reports (default: cwd)")


@pytest.fixture
def report_writer(request):
    """``write(name, payload) -> path``: the ``BENCH_<name>.json``
    writer honouring ``--output``."""
    output = request.config.getoption("--output")

    def write(name, payload):
        return write_report(name, payload, output=output)

    return write


@pytest.fixture(scope="session")
def paper_data():
    """The four Table 2 datasets plus the printed rows."""
    datasets, rows = table2(scale=DEFAULT_SCALE, seed=0)
    return datasets, rows
