"""Async coalescing front-end vs the threaded server, wall clock.

The serving workload the async front-end exists for: 200 requests,
repeat-heavy (a handful of hot OMQs that every client regenerates
under fresh variable names, plus a cold tail), fired 32-at-a-time by
one asyncio driver.  The threaded server answers every request —
compilation is amortised by the plan cache, but each request still
pays a full ``Plan.execute``.  The async server coalesces identical
in-flight requests onto shared executions and micro-batches the rest,
so the evaluation count collapses to roughly (distinct shapes x
flush windows).

Parity is asserted before speed (both servers must return identical
answer sets per shape), a ``BENCH_async.json`` report is written, and
the >= 2x throughput floor from the PR's acceptance bar is asserted
only on machines with >= 4 cores (on fewer cores the ratio still
shows, but scheduler noise makes a hard floor flaky).
"""

import asyncio
import json
import os
import threading
import time

import pytest

from repro import OMQ, AsyncClient
from repro.experiments import print_table
from repro.queries import chain_cq
from repro.service import OMQService, serve_in_background
from repro.service.serve import build_server

from tests.helpers import example11_tbox, random_data

#: Hot shapes (repeated under fresh names — the coalescing target) and
#: the cold tail.
HOT = ("RSRSR", "SRSRS", "RSRS", "SRS")
COLD = ("RRS", "SSR", "RSS", "SRR", "RSRSRS", "SRSRSR")
REQUESTS = 200
CONCURRENCY = 32
MIN_SPEEDUP = 2.0
MIN_CORES = 4


def _workload(tbox):
    """The 200-request script: ~85% hot repeats, 15% cold."""
    omqs = []
    for position in range(REQUESTS):
        if position % 7 == 6:
            labels = COLD[(position // 7) % len(COLD)]
        else:
            labels = HOT[position % len(HOT)]
        # fresh variable names per request: only canonical
        # fingerprints can recognise the repeats
        omqs.append((labels,
                     OMQ(tbox, chain_cq(labels, prefix=f"v{position}_"))))
    return omqs


async def _drive(url: str, omqs) -> dict:
    """Fire the workload at ``url``, CONCURRENCY requests in flight;
    returns answer sets per shape (for parity checks)."""
    per_shape = {}
    semaphore = asyncio.Semaphore(CONCURRENCY)

    async with AsyncClient.connect(url, timeout=120.0) as client:
        async def one(labels, omq):
            async with semaphore:
                result = await client.answer("demo", omq)
            previous = per_shape.setdefault(labels, result.answers)
            assert previous == result.answers, labels

        await asyncio.gather(*[one(labels, omq) for labels, omq in omqs])
    return per_shape


def _bench(url: str, omqs) -> float:
    started = time.perf_counter()
    asyncio.run(_drive(url, omqs))
    return time.perf_counter() - started


@pytest.mark.bench
def test_async_coalescing_speedup(benchmark, report_writer):
    tbox = example11_tbox()
    abox = random_data(0, individuals=15, atoms=60)
    omqs = _workload(tbox)
    cores = os.cpu_count() or 1

    # -- threaded server baseline -------------------------------------------
    thread_service = OMQService(max_workers=4)
    thread_service.register_dataset("demo", random_data(
        0, individuals=15, atoms=60))
    server = build_server(thread_service, port=0, verbose=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    thread_url = f"http://{host}:{port}"
    try:
        thread_answers = asyncio.run(_drive(thread_url, omqs))  # warm
        thread_seconds = _bench(thread_url, omqs)
    finally:
        server.shutdown()
        server.server_close()
        thread_service.close()

    # -- async coalescing server --------------------------------------------
    async_service = OMQService(max_workers=4)
    async_service.register_dataset("demo", abox)
    with serve_in_background(async_service, batch_window=0.002,
                             max_pending=4 * CONCURRENCY,
                             workers=4) as handle:
        async_answers = asyncio.run(_drive(handle.url, omqs))  # warm
        async_seconds = _bench(handle.url, omqs)
        stats = async_service.stats()
        import urllib.request

        serving = json.loads(urllib.request.urlopen(
            f"{handle.url}/stats").read())["async_serving"]
    async_service.close()

    # parity first: throughput means nothing if the answers drift
    assert async_answers == thread_answers

    speedup = thread_seconds / max(async_seconds, 1e-9)
    print_table(
        f"async coalescing vs threaded serving ({REQUESTS} requests, "
        f"concurrency {CONCURRENCY}, {cores} cores)",
        ["server", "seconds", "requests/sec", "speedup"],
        [["threaded (1 thread/request)", f"{thread_seconds:.3f}",
          f"{REQUESTS / thread_seconds:.0f}", "1.0x"],
         ["async (coalesce + batch)", f"{async_seconds:.3f}",
          f"{REQUESTS / async_seconds:.0f}", f"{speedup:.1f}x"]])
    print(f"coalesced {serving['coalesced']} / {serving['requests']} "
          f"requests into {serving['batches']} micro-batches "
          f"({serving['batched_requests']} executed)")

    report = {
        "requests": REQUESTS,
        "concurrency": CONCURRENCY,
        "hot_shapes": list(HOT),
        "cold_shapes": list(COLD),
        "cores": cores,
        "seconds": {"threaded": round(thread_seconds, 4),
                    "async": round(async_seconds, 4)},
        "requests_per_second": {
            "threaded": round(REQUESTS / thread_seconds, 1),
            "async": round(REQUESTS / async_seconds, 1)},
        "coalesced": serving["coalesced"],
        "micro_batches": serving["batches"],
        "executed_requests": serving["batched_requests"],
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "speedup": round(speedup, 2),
        "speedup_asserted": cores >= MIN_CORES,
    }
    report_writer("async", report)

    # coalescing must have happened regardless of machine size
    assert serving["coalesced"] > 1

    if cores >= MIN_CORES:
        assert speedup >= MIN_SPEEDUP, (
            f"coalescing should beat per-request execution on the "
            f"repeat-heavy workload, got {speedup:.1f}x")

    service = OMQService(max_workers=4)
    service.register_dataset("demo", random_data(
        0, individuals=15, atoms=60))
    with serve_in_background(service, batch_window=0.002,
                             max_pending=4 * CONCURRENCY) as handle:
        asyncio.run(_drive(handle.url, omqs))
        benchmark.pedantic(lambda: _bench(handle.url, omqs),
                           iterations=1, rounds=2)
    service.close()
