"""Sharded scatter-gather vs monolithic execution wall clock.

The component-locality workload: a large generated ABox of many
disjoint components (``repro.data.workload_abox``), a handful of
compiled chain plans executed repeatedly.  The 4-shard
:class:`~repro.shard.session.ShardedSession` runs them over persistent
worker processes (shared-memory ABox transport, streamed chunked
gather); the 1-shard session pays the same IPC protocol without
parallelism, and the plain monolithic
:class:`~repro.rewriting.api.AnswerSession` is the no-sharding
baseline.  A second measurement scatter-gathers over **two local
``aserve`` worker processes** through
:class:`~repro.shard.executor.HttpExecutor` — the multi-node scale-out
path, paying real HTTP per round.

The ``BENCH_shard.json`` envelope is always written (before any
assertion can fail); the >= 1.5x speedup assertion only fires on
machines with at least 4 cores (sharding cannot beat the GIL on one
core).
"""

import os
import socket
import subprocess
import sys
import time
import urllib.request

from repro import OMQ, AnswerSession, compile_omq
from repro.data import workload_abox
from repro.experiments import print_table
from repro.queries import chain_cq
from repro.shard import ShardedSession

from tests.helpers import example11_tbox

#: The hot plans, compiled once and broadcast per round.
QUERIES = ("RS", "RSR", "RSRS")
ROUNDS = 3
SHARDS = 4
MIN_SPEEDUP = 1.5
WORKERS = 2  # local aserve processes for the multi-node measurement


def _time_rounds(execute) -> float:
    started = time.perf_counter()
    for _ in range(ROUNDS):
        execute()
    return time.perf_counter() - started


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _wait_healthy(url: str, deadline: float) -> None:
    while True:
        try:
            urllib.request.urlopen(f"{url}/health", timeout=2).read()
            return
        except Exception:
            if time.monotonic() > deadline:
                raise RuntimeError(f"worker at {url} never became healthy")
            time.sleep(0.1)


class _LocalWorkers:
    """``WORKERS`` stateless ``repro serve --async-io`` subprocesses
    on free localhost ports — the smallest honest multi-node setup."""

    def __init__(self, count: int):
        repro_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(sys.modules["repro"].__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [repro_dir, env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        self.urls = []
        self._processes = []
        try:
            for _ in range(count):
                port = _free_port()
                process = subprocess.Popen(
                    [sys.executable, "-m", "repro", "serve", "--async-io",
                     "--host", "127.0.0.1", "--port", str(port),
                     "--workers", "2"],
                    env=env, stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL)
                self._processes.append(process)
                self.urls.append(f"http://127.0.0.1:{port}")
            deadline = time.monotonic() + 30
            for url in self.urls:
                _wait_healthy(url, deadline)
        except Exception:
            self.close()
            raise

    def close(self) -> None:
        for process in self._processes:
            process.terminate()
        for process in self._processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5)
        self._processes = []


def test_sharded_speedup(benchmark, report_writer):
    tbox = example11_tbox()
    # scale=2: ~320 components / ~16k atoms, so per-shard evaluation
    # dwarfs the per-round scatter (shm/pipe) overhead
    abox = workload_abox("random-large", scale=2.0, seed=0)
    plans = [compile_omq(OMQ(tbox, chain_cq(labels)), method="lin")
             for labels in QUERIES]
    cores = os.cpu_count() or 1

    def run_all(session):
        return [plan.execute(session).answers for plan in plans]

    timings = {}
    answers = {}
    with AnswerSession(abox) as session:
        run_all(session)  # warm up: load + complete + index once
        answers["monolithic"] = run_all(session)
        timings["monolithic"] = _time_rounds(lambda: run_all(session))

    transport = None
    for label, shards in (("sharded-1", 1), (f"sharded-{SHARDS}", SHARDS)):
        with ShardedSession(abox, shards=shards,
                            executor="process") as session:
            run_all(session)
            answers[label] = run_all(session)
            timings[label] = _time_rounds(lambda: run_all(session))
            transport = session.stats().get("transport")

    # multi-node: the same plans scatter-gathered over two local
    # aserve worker processes (real HTTP per round, WORKERS nodes).
    # A smaller instance keeps the one-time HTTP shard registration
    # from dominating a smoke run; the per-round numbers are the point
    multinode_abox = workload_abox("random-large", scale=0.5, seed=0)
    multinode = {"workers": WORKERS}
    with AnswerSession(multinode_abox) as session:
        run_all(session)
        multinode_expected = run_all(session)
        multinode["monolithic_seconds"] = round(
            _time_rounds(lambda: run_all(session)), 4)
    try:
        workers = _LocalWorkers(WORKERS)
    except Exception as error:  # keep the report writable regardless
        multinode["error"] = str(error)
        multinode_answers = None
    else:
        try:
            with ShardedSession(multinode_abox, shards=WORKERS,
                                executor=",".join(workers.urls)) as session:
                run_all(session)
                multinode_answers = run_all(session)
                multinode["seconds"] = round(
                    _time_rounds(lambda: run_all(session)), 4)
                multinode["atoms"] = len(multinode_abox)
        finally:
            workers.close()

    speedup = timings["sharded-1"] / max(timings[f"sharded-{SHARDS}"], 1e-9)
    vs_monolithic = (timings["monolithic"]
                     / max(timings[f"sharded-{SHARDS}"], 1e-9))
    executions = len(plans) * ROUNDS
    rows = [["monolithic session", f"{timings['monolithic']:.3f}",
             f"{executions / timings['monolithic']:.1f}",
             f"{vs_monolithic:.1f}x (vs {SHARDS}-shard)"],
            ["1-shard workers", f"{timings['sharded-1']:.3f}",
             f"{executions / timings['sharded-1']:.1f}", "1.0x"],
            [f"{SHARDS}-shard workers",
             f"{timings[f'sharded-{SHARDS}']:.3f}",
             f"{executions / timings[f'sharded-{SHARDS}']:.1f}",
             f"{speedup:.1f}x"]]
    if "seconds" in multinode:
        rows.append([f"{WORKERS}-node http ({len(multinode_abox)} atoms)",
                     f"{multinode['seconds']:.3f}",
                     f"{executions / multinode['seconds']:.1f}",
                     "scale-out"])
    print_table(
        f"{SHARDS}-shard scatter-gather vs 1-shard "
        f"({len(plans)} plans x {ROUNDS} rounds, {len(abox)} atoms, "
        f"{cores} cores, transport={transport})",
        ["path", "seconds", "executions/sec", "speedup"], rows)

    parity = (answers[f"sharded-{SHARDS}"] == answers["monolithic"]
              and answers["sharded-1"] == answers["monolithic"])
    multinode_parity = (None if multinode_answers is None
                        else multinode_answers == multinode_expected)
    # the envelope is written before any assertion can fail, so a
    # regression still leaves a report on disk to diagnose
    report = {
        "workload": "random-large",
        "atoms": len(abox),
        "plans": list(QUERIES),
        "rounds": ROUNDS,
        "shards": SHARDS,
        "cores": cores,
        "transport": transport,
        "seconds": {key: round(value, 4)
                    for key, value in timings.items()},
        "speedup_vs_one_shard": round(speedup, 2),
        "speedup_vs_monolithic": round(vs_monolithic, 2),
        "speedup_asserted": cores >= 4,
        "parity": parity,
        "multinode": {**multinode, "parity": multinode_parity},
    }
    report_writer("shard", report)

    # parity first: speed means nothing if the answers drift
    assert parity
    assert multinode_parity is not False

    if cores >= 4:
        assert speedup >= MIN_SPEEDUP, (
            f"{SHARDS}-shard execution should parallelise on {cores} "
            f"cores, got {speedup:.1f}x")

    with ShardedSession(abox, shards=SHARDS,
                        executor="process") as session:
        run_all(session)
        benchmark.pedantic(lambda: run_all(session),
                           iterations=1, rounds=3)
