"""Sharded scatter-gather vs monolithic execution wall clock.

The component-locality workload: a large generated ABox of many
disjoint components (``repro.data.workload_abox``), a handful of
compiled chain plans executed repeatedly.  The 4-shard
:class:`~repro.shard.session.ShardedSession` runs them over persistent
worker processes; the 1-shard session pays the same IPC protocol
without parallelism, and the plain monolithic
:class:`~repro.rewriting.api.AnswerSession` is the no-sharding
baseline.  Writes a ``BENCH_shard.json`` report next to the working
directory; the >= 2x speedup assertion only fires on machines with
enough cores to parallelise (sharding cannot beat the GIL on one
core).
"""

import os
import time

from repro import OMQ, AnswerSession, compile_omq
from repro.data import workload_abox
from repro.experiments import print_table
from repro.queries import chain_cq
from repro.shard import ShardedSession

from tests.helpers import example11_tbox

#: The hot plans, compiled once and broadcast per round.
QUERIES = ("RS", "RSR", "RSRS")
ROUNDS = 3
SHARDS = 4


def _time_rounds(execute) -> float:
    started = time.perf_counter()
    for _ in range(ROUNDS):
        execute()
    return time.perf_counter() - started


def test_sharded_speedup(benchmark, report_writer):
    tbox = example11_tbox()
    # scale=2: ~320 components / ~16k atoms, so per-shard evaluation
    # dwarfs the per-round scatter (pickle + pipe) overhead
    abox = workload_abox("random-large", scale=2.0, seed=0)
    plans = [compile_omq(OMQ(tbox, chain_cq(labels)), method="lin")
             for labels in QUERIES]
    cores = os.cpu_count() or 1

    def run_all(session):
        return [plan.execute(session).answers for plan in plans]

    timings = {}
    answers = {}
    with AnswerSession(abox) as session:
        run_all(session)  # warm up: load + complete + index once
        answers["monolithic"] = run_all(session)
        timings["monolithic"] = _time_rounds(lambda: run_all(session))

    for label, shards in (("sharded-1", 1), (f"sharded-{SHARDS}", SHARDS)):
        with ShardedSession(abox, shards=shards,
                            executor="process") as session:
            run_all(session)
            answers[label] = run_all(session)
            timings[label] = _time_rounds(lambda: run_all(session))

    # parity first: speed means nothing if the answers drift
    assert answers[f"sharded-{SHARDS}"] == answers["monolithic"]
    assert answers["sharded-1"] == answers["monolithic"]

    speedup = timings["sharded-1"] / max(timings[f"sharded-{SHARDS}"], 1e-9)
    vs_monolithic = (timings["monolithic"]
                     / max(timings[f"sharded-{SHARDS}"], 1e-9))
    executions = len(plans) * ROUNDS
    print_table(
        f"{SHARDS}-shard scatter-gather vs 1-shard "
        f"({len(plans)} plans x {ROUNDS} rounds, {len(abox)} atoms, "
        f"{cores} cores)",
        ["path", "seconds", "executions/sec", "speedup"],
        [["monolithic session", f"{timings['monolithic']:.3f}",
          f"{executions / timings['monolithic']:.1f}",
          f"{vs_monolithic:.1f}x (vs 4-shard)"],
         ["1-shard workers", f"{timings['sharded-1']:.3f}",
          f"{executions / timings['sharded-1']:.1f}", "1.0x"],
         [f"{SHARDS}-shard workers",
          f"{timings[f'sharded-{SHARDS}']:.3f}",
          f"{executions / timings[f'sharded-{SHARDS}']:.1f}",
          f"{speedup:.1f}x"]])

    report = {
        "workload": "random-large",
        "atoms": len(abox),
        "plans": list(QUERIES),
        "rounds": ROUNDS,
        "shards": SHARDS,
        "cores": cores,
        "seconds": {key: round(value, 4)
                    for key, value in timings.items()},
        "speedup_vs_one_shard": round(speedup, 2),
        "speedup_vs_monolithic": round(vs_monolithic, 2),
        "speedup_asserted": cores >= SHARDS,
    }
    report_writer("shard", report)

    if cores >= SHARDS:
        assert speedup >= 2.0, (
            f"{SHARDS}-shard execution should parallelise on {cores} "
            f"cores, got {speedup:.1f}x")

    with ShardedSession(abox, shards=SHARDS,
                        executor="process") as session:
        run_all(session)
        benchmark.pedantic(lambda: run_all(session),
                           iterations=1, rounds=3)
