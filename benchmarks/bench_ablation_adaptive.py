"""Ablation: the Section 6 cost-based adaptive splitting strategy.

Appendix D.4 concludes that "none of the three splitting strategies
systematically outperforms the others" and proposes choosing the
rewriting with a data-statistics cost function.  This bench measures,
per dataset, the tuples materialised by each fixed strategy and by the
adaptive choice — the adaptive pick should track the per-dataset winner
without ever being catastrophically wrong.
"""

from repro.datalog import evaluate
from repro.experiments import SEQUENCES, example11_tbox, print_table
from repro.queries import chain_cq
from repro.rewriting import OMQ, adaptive_rewrite, rewrite

FIXED = ("lin", "log", "tw", "tw_star")


def _run_dataset(tbox, name, abox, query):
    completed = abox.complete(tbox)
    omq = OMQ(tbox, query)
    actual = {}
    for method in FIXED:
        ndl = rewrite(omq, method=method)
        actual[method] = evaluate(ndl, completed).generated_tuples
    choice = adaptive_rewrite(omq, completed)
    chosen_tuples = evaluate(choice.query, completed).generated_tuples
    return (name, actual, choice.method, chosen_tuples)


def test_adaptive_ablation(paper_data, benchmark):
    datasets, _ = paper_data
    tbox = example11_tbox()
    query = chain_cq(SEQUENCES["sequence1"][:9])

    def run():
        return [_run_dataset(tbox, name, abox, query)
                for name, abox in sorted(datasets.items())]

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(
        "Ablation - adaptive splitting strategy (Sequence 1, 9 atoms)",
        ["dataset"] + [f"{m} tuples" for m in FIXED]
        + ["adaptive pick", "adaptive tuples"],
        [[name] + [actual[m] for m in FIXED] + [picked, chosen]
         for name, actual, picked, chosen in results])
    for name, actual, picked, chosen in results:
        best = min(actual.values())
        worst = max(actual.values())
        # never worse than the worst fixed strategy, and within a
        # small factor of the per-dataset optimum
        assert chosen <= worst
        assert chosen <= 5 * max(best, 1)
