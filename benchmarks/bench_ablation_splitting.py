"""Ablation: splitting strategies (Appendix D.4 discussion).

Lin, Log and Tw differ only in where they split the CQ; the paper
observes that no strategy dominates across sequences.  This bench
evaluates all three (plus Tw*) on identical OMQs and data and prints
clause counts, program shape and evaluation statistics.
"""

from repro.experiments import print_table, splitting_comparison


def test_splitting_ablation(paper_data, benchmark):
    datasets, _ = paper_data
    abox = datasets["2.ttl"]
    points = benchmark.pedantic(
        lambda: splitting_comparison(abox, sizes=(5, 9, 13)),
        iterations=1, rounds=1)
    print_table(
        "Ablation - splitting strategies (dataset 2.ttl)",
        ["sequence", "atoms", "variant", "clauses", "depth", "width",
         "seconds", "tuples"],
        [[p.sequence, p.atoms, p.variant, p.clauses, p.depth, p.width,
          f"{p.seconds:.3f}", p.generated_tuples] for p in points])
    # no single variant should win every cell (the paper's observation);
    # at minimum, all variants terminate and agree structurally
    assert {p.variant for p in points} == {"lin", "log", "tw", "tw_star"}
