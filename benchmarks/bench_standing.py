"""Standing-query maintenance vs naive re-execution, wall clock.

The workload push delivery exists for: 50 subscribers (10 predicate
families x 5 subscribers each, variable-renamed so only canonical
plan caching recognises the sharing) over one served dataset, fed a
mixed stream of insert/delete updates that round-robins the families.
Each update touches one family's predicates, so incremental
maintenance re-evaluates only that family's disjuncts — and the five
subscribers sharing a plan share a single evaluation through the
per-update memo.  The naive baseline re-executes all 50 standing
queries from scratch per update.

Correctness is asserted before speed (every maintained answer set must
equal a from-scratch execution after the stream), a
``BENCH_standing.json`` report is written, and maintenance-per-update
must beat the 50-re-execution baseline by >= 5x (CPU-bound on one
core, so no core gating).
"""

import time

from repro import OMQ, TBox
from repro.data import ABox
from repro.experiments import print_table
from repro.queries import CQ
from repro.service import OMQService

FAMILIES = 10
SUBS_PER_FAMILY = 5
UPDATES = 60
BASELINE_ROUNDS = 3
MIN_SPEEDUP = 5.0


def _tbox() -> TBox:
    """Ten disjoint Example-11-style families: ``Pi <= Si``,
    ``Pi <= Ri-``."""
    roles = [f"{letter}{i}" for i in range(FAMILIES)
             for letter in ("P", "R", "S")]
    lines = ["roles: " + ", ".join(roles)]
    for i in range(FAMILIES):
        lines.append(f"P{i} <= S{i}")
        lines.append(f"P{i} <= R{i}-")
    return TBox.parse("\n".join(lines))


def _abox() -> ABox:
    abox = ABox()
    for i in range(FAMILIES):
        for k in range(40):
            abox.add(f"R{i}", f"f{i}a{k}", f"f{i}b{k}")
            abox.add(f"S{i}", f"f{i}b{k}", f"f{i}c{k}")
    return abox


def _family_omq(family: int, rename: int) -> OMQ:
    """The family's standing CQ under subscriber-specific variable
    names (the plan cache must recognise the renamed repeats for the
    subscribers to share one compiled plan)."""
    x, y, z = (f"v{rename}_{name}" for name in ("x", "y", "z"))
    query = CQ.parse(f"R{family}({x}, {y}), S{family}({y}, {z})",
                     answer_vars=[x, z])
    return OMQ(_TBOX, query)


_TBOX = _tbox()


def _update_stream():
    """Insert/delete pairs round-robining the families."""
    steps = []
    for step in range(UPDATES):
        family = step % FAMILIES
        atom = (f"P{family}", (f"u{step}x", f"u{step}y"))
        if step % 3 == 2:  # mix deletions into the stream
            steps.append(((), (atom,)))
        else:
            steps.append(((atom,), ()))
    return steps


def test_standing_maintenance_speedup(benchmark, report_writer):
    service = OMQService()
    service.register_dataset("demo", _abox())
    subs = []
    omqs = []
    for family in range(FAMILIES):
        for rename in range(SUBS_PER_FAMILY):
            omq = _family_omq(family, rename)
            subs.append(service.subscribe("demo", omq))
            omqs.append(omq)
    stream = _update_stream()

    # -- maintained: the update stream, maintenance inside -------------------
    started = time.perf_counter()
    for inserts, deletes in stream:
        service.update("demo", inserts=inserts, deletes=deletes)
    update_seconds = time.perf_counter() - started
    standing = service.stats()["standing"]
    maintenance_seconds = standing["maintenance_seconds"]
    per_update = maintenance_seconds / len(stream)

    # correctness before speed: every maintained set must equal a
    # from-scratch execution over the post-stream data
    for sub, omq in zip(subs, omqs):
        assert sub.answers == service.answer("demo", omq).answers

    # -- baseline: re-execute all 50 standing queries per update -------------
    def reexecute_all():
        for omq in omqs:
            service.answer("demo", omq)

    reexecute_all()  # warm the plan cache (the stream already did)
    started = time.perf_counter()
    for _ in range(BASELINE_ROUNDS):
        reexecute_all()
    baseline_per_update = (time.perf_counter() - started) / BASELINE_ROUNDS

    speedup = baseline_per_update / max(per_update, 1e-9)
    print_table(
        f"standing maintenance vs naive re-execution "
        f"({len(subs)} subscribers, {len(stream)} updates)",
        ["strategy", "seconds/update", "speedup"],
        [["re-execute all subscriptions", f"{baseline_per_update:.4f}",
          "1.0x"],
         ["incremental maintenance", f"{per_update:.4f}",
          f"{speedup:.1f}x"]])
    print(f"deltas pushed: {standing['deltas_pushed']}, "
          f"fallback re-executions: {standing['fallback_reexecutions']}, "
          f"total update wall clock: {update_seconds:.3f}s")

    report = {
        "subscribers": len(subs),
        "families": FAMILIES,
        "updates": len(stream),
        "maintenance_seconds_total": round(maintenance_seconds, 4),
        "maintenance_seconds_per_update": round(per_update, 6),
        "baseline_seconds_per_update": round(baseline_per_update, 6),
        "update_wall_seconds": round(update_seconds, 4),
        "deltas_pushed": standing["deltas_pushed"],
        "fallback_reexecutions": standing["fallback_reexecutions"],
        "speedup": round(speedup, 2),
    }
    report_writer("standing", report)

    assert standing["fallback_reexecutions"] == 0, (
        "the family queries must maintain incrementally, not fall back")
    assert speedup >= MIN_SPEEDUP, (
        f"incremental maintenance should beat re-executing every "
        f"subscription per update, got {speedup:.1f}x")

    benchmark.pedantic(
        lambda: service.update("demo",
                               inserts=[("P0", ("bx", "by"))],
                               deletes=[("P0", ("bx", "by"))]),
        iterations=1, rounds=3)
    service.close()
