"""SQL optimizer pass pipeline: per-rewrite and per-engine speedups.

The redundancy-heavy workloads: UCQ-style rewritings (``ucq``,
``perfectref``) of chain CQs over the Example 11 ontology, evaluated
over a completed random instance.  The optimizer's wins here are
prune-subsumed (dropping redundant union branches) and elide-distinct
(skipping sort/dedup on key-covered projections); each (rewrite,
engine) cell compares the median evaluation wall clock with the pass
pipeline off vs on, compilation amortised out of the loop.

Writes a ``BENCH_sql_opt.json`` report; asserts a >= 1.3x median
speedup for at least one SQL backend (the tentpole's acceptance bar).
DuckDB rows appear only when the optional package is installed.
"""

import statistics
import time

from repro import OMQ, chain_cq, rewrite
from repro.engine import engine_available
from repro.experiments import print_table
from repro.sql.engine import DuckDBEngine, SQLEngine

from tests.helpers import example11_tbox, random_data

#: (rewriting method, chain labels).  perfectref is the headline: its
#: UCQ carries many subsumed branches, so prune-subsumed pays directly
#: in scans avoided.  ucq's tree-witness unions are already lean — it
#: rides along to show the passes do not regress a tight rewriting.
WORKLOADS = (("perfectref", "RSRS"), ("ucq", "RSRRS"))
ROUNDS = 5
SPEEDUP_FLOOR = 1.3


def _median_seconds(engine, ndl, materialised, optimize_sql):
    engine.evaluate(ndl, materialised=materialised,
                    optimize_sql=optimize_sql)  # warm: compile + cache
    samples = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        engine.evaluate(ndl, materialised=materialised,
                        optimize_sql=optimize_sql)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def test_sql_optimizer_speedup(benchmark, report_writer):
    tbox = example11_tbox()
    abox = random_data(seed=0, individuals=60, atoms=1200).complete(tbox)

    # engine name -> (engine class, materialised views-vs-tables mode)
    modes = [("sql", SQLEngine, True), ("sql-views", SQLEngine, False)]
    if engine_available("duckdb"):
        modes.append(("duckdb", DuckDBEngine, False))

    rows, cells = [], {}
    for method, labels in WORKLOADS:
        ndl = rewrite(OMQ(tbox, chain_cq(labels)), method=method)
        for name, engine_class, materialised in modes:
            with engine_class(abox) as engine:
                # parity first: speed means nothing if answers drift
                plain = engine.evaluate(ndl, materialised=materialised)
                tuned = engine.evaluate(ndl, materialised=materialised,
                                        optimize_sql=True)
                assert tuned.answers == plain.answers, (method, name)
                before = _median_seconds(engine, ndl, materialised, False)
                after = _median_seconds(engine, ndl, materialised, True)
            speedup = before / max(after, 1e-9)
            cells[(method, name)] = {
                "median_seconds_unoptimized": round(before, 4),
                "median_seconds_optimized": round(after, 4),
                "speedup": round(speedup, 2),
            }
            rows.append([f"{method}({labels})", name,
                         f"{before * 1000:.1f}", f"{after * 1000:.1f}",
                         f"{speedup:.2f}x"])

    print_table(
        f"SQL optimizer: median of {ROUNDS} evaluations, "
        f"{len(abox)} atoms (completed)",
        ["rewriting", "engine", "plain ms", "optimized ms", "speedup"],
        rows)

    best = max(cell["speedup"] for cell in cells.values())
    report = {
        "workloads": [{"method": method, "chain": labels}
                      for method, labels in WORKLOADS],
        "atoms": len(abox),
        "rounds": ROUNDS,
        "engines": [name for name, _, _ in modes],
        "results": {f"{method}/{name}": cell
                    for (method, name), cell in cells.items()},
        "best_speedup": best,
        "speedup_floor": SPEEDUP_FLOOR,
    }
    report_writer("sql_opt", report)

    assert best >= SPEEDUP_FLOOR, (
        f"expected >= {SPEEDUP_FLOOR}x median speedup on at least one "
        f"SQL backend, best was {best:.2f}x")

    method, labels = WORKLOADS[0]
    ndl = rewrite(OMQ(tbox, chain_cq(labels)), method=method)
    with SQLEngine(abox) as engine:
        engine.evaluate(ndl, materialised=False, optimize_sql=True)
        benchmark.pedantic(
            lambda: engine.evaluate(ndl, materialised=False,
                                    optimize_sql=True),
            iterations=1, rounds=3)
