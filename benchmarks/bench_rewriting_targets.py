"""Figure 1(b) experimentally: PE- vs NDL-rewriting sizes.

Figure 1(b) states that the tractable OMQ classes admit polynomial
NDL-rewritings but no polynomial PE-rewritings; this bench measures
both targets on growing prefixes of Sequence 1 and prints the size
series (symbols) — the PE sizes grow markedly faster than the optimal
NDL ones.
"""

from repro.experiments import SEQUENCES, example11_tbox, print_table
from repro.queries import chain_cq
from repro.rewriting import tw_rewrite
from repro.rewriting.pe_rewriter import pe_rewrite


def test_pe_vs_ndl_sizes(benchmark):
    tbox = example11_tbox()
    labels = SEQUENCES["sequence1"]
    rows = []
    for atoms in range(1, 16, 2):
        query = chain_cq(labels[:atoms])
        pe = pe_rewrite(tbox, query)
        ndl = tw_rewrite(tbox, query)
        rows.append([atoms, pe.size(), ndl.program.symbol_size(),
                     len(ndl)])
    print_table("Figure 1(b) illustrated - rewriting sizes (symbols)",
                ["atoms", "PE size", "NDL size", "NDL clauses"], rows)
    benchmark(lambda: pe_rewrite(tbox, chain_cq(labels)))
    # the NDL target stays linear while PE grows with the witness
    # combinations inside clusters
    assert rows[-1][2] < 4 * rows[-1][1]
