"""Ablation: magic sets vs full materialisation.

Appendix D.4 notes the RDFox version used in the paper "simply
materialise[d] all the predicates without using magic sets".  This
bench quantifies what was left on the table: for each optimal rewriter
we compare the tuples materialised (and the time taken) by plain
bottom-up evaluation against the magic-sets transformed program, for
both all-answers evaluation and single-candidate checking.
"""

import time

from repro.datalog import evaluate
from repro.datalog.magic import evaluate_magic
from repro.experiments import SEQUENCES, example11_tbox, print_table
from repro.queries import chain_cq
from repro.rewriting import OMQ, rewrite

METHODS = ("lin", "log", "tw")


def _run(tbox, completed, sequence: str, size: int):
    rows = []
    query = chain_cq(SEQUENCES[sequence][:size])
    for method in METHODS:
        ndl = rewrite(OMQ(tbox, query), method=method)
        start = time.perf_counter()
        base = evaluate(ndl, completed)
        base_seconds = time.perf_counter() - start
        start = time.perf_counter()
        magic = evaluate_magic(ndl, completed)
        magic_seconds = time.perf_counter() - start
        assert base.answers == magic.answers
        candidate_tuples = None
        if base.answers:
            candidate = sorted(base.answers)[0]
            bound = evaluate_magic(ndl, completed, candidate=candidate)
            assert candidate in bound.answers
            candidate_tuples = bound.generated_tuples
        rows.append((sequence, size, method, len(base.answers),
                     base.generated_tuples, base_seconds,
                     magic.generated_tuples, magic_seconds,
                     candidate_tuples))
    return rows


def test_magic_ablation(paper_data, benchmark):
    datasets, _ = paper_data
    tbox = example11_tbox()
    completed = datasets["2.ttl"].complete(tbox)

    def run():
        rows = []
        for sequence in ("sequence1", "sequence3"):
            for size in (5, 9):
                rows.extend(_run(tbox, completed, sequence, size))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(
        "Ablation - magic sets (dataset 2.ttl)",
        ["sequence", "atoms", "rewriter", "answers", "tuples",
         "seconds", "magic tuples", "magic s", "1-cand tuples"],
        [[seq, size, method, answers, tuples, f"{base_s:.3f}",
          magic_tuples, f"{magic_s:.3f}",
          "-" if cand is None else cand]
         for (seq, size, method, answers, tuples, base_s,
              magic_tuples, magic_s, cand) in rows])
    # on near-empty results the magic predicates themselves dominate,
    # so no useful per-case bound exists; the meaningful guarantees are
    # that answers agree (asserted in _run), that single-candidate
    # checking is at least as focused as all-answers magic, and that in
    # aggregate magic materialises far less than full materialisation
    for (_, _, _, _, _, _, magic_tuples, _, cand) in rows:
        if cand is not None:
            assert cand <= magic_tuples
    total_base = sum(row[4] for row in rows)
    total_magic = sum(row[6] for row in rows)
    assert total_magic <= total_base
