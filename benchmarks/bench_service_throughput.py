"""Serving throughput: OMQService vs a naive ``answer()`` loop.

A 200-request mixed workload over one evolving dataset — a small set of
hot OMQs repeated under fresh variable names (the serving norm: clients
regenerate queries), a long tail of colder shapes, and periodic
incremental fact insertions.  The naive baseline calls the one-shot
:func:`repro.rewriting.api.answer` per request and reloads after every
update; the service amortises rewriting in its LRU cache, keeps loaded
engines warm and patches them in place on update.

The PR's acceptance bar — >= 5x on the repeat-query workload — is
asserted here (not in tier-1: wall-clock ratios don't belong in
correctness CI).
"""

import time

from repro import ABox, OMQ, answer
from repro.experiments import print_table
from repro.queries import chain_cq as make_chain
from repro.service import OMQService

from tests.helpers import example11_tbox, random_data

#: Hot requests (repeated, renamed per request) and the cold tail —
#: (chain labels, rewriting method).  The methods mix mirrors the
#: paper's rewriter zoo; the optimal rewriters dominate the rewriting
#: cost on repeat queries, which is exactly what the cache removes.
HOT = (("RSRSR", "tw"), ("SRSRS", "tw"), ("RSR", "presto"),
       ("RSRS", "log"), ("SRS", "auto"))
COLD = (("RSRS", "tw"), ("SRSR", "presto"), ("RRS", "log"),
        ("SSR", "auto"), ("RSS", "tw"), ("SRR", "log"))
REQUESTS = 200
UPDATE_EVERY = 25


def _workload(tbox):
    """The 200-request script: (kind, payload) pairs, deterministic."""
    script = []
    for position in range(REQUESTS):
        if position and position % UPDATE_EVERY == 0:
            step = position // UPDATE_EVERY
            script.append(("update", [("R", (f"u{step}", f"u{step + 1}")),
                                      ("S", (f"u{step + 1}", f"u{step}"))]))
        if position % 5 == 4:
            labels, method = COLD[(position // 5) % len(COLD)]
        else:
            labels, method = HOT[position % len(HOT)]
        # fresh variable names per request: only the canonical
        # fingerprint can recognise the repeat
        omq = OMQ(tbox, make_chain(labels, prefix=f"v{position}_"))
        script.append(("query", (omq, method)))
    return script


def test_service_throughput(benchmark):
    tbox = example11_tbox()
    abox = random_data(0, individuals=15, atoms=60)
    script = _workload(tbox)

    def naive():
        data = ABox(abox.atoms())
        results = []
        for kind, payload in script:
            if kind == "update":
                for predicate, args in payload:
                    data.add(predicate, *args)
            else:
                omq, method = payload
                results.append(answer(omq, data, method=method).answers)
        return results

    def served():
        with OMQService(cache_size=64) as service:
            service.register_dataset("bench", ABox(abox.atoms()))
            results = []
            for kind, payload in script:
                if kind == "update":
                    service.insert_facts("bench", payload)
                else:
                    omq, method = payload
                    results.append(
                        service.answer("bench", omq,
                                       method=method).answers)
            return results

    queries = sum(1 for kind, _ in script if kind == "query")
    started = time.perf_counter()
    baseline_results = naive()
    baseline = time.perf_counter() - started

    started = time.perf_counter()
    service_results = served()
    serving = time.perf_counter() - started
    assert service_results == baseline_results

    with OMQService(cache_size=64) as service:
        service.register_dataset("bench", ABox(abox.atoms()))
        for kind, payload in script:
            if kind == "update":
                service.insert_facts("bench", payload)
            else:
                omq, method = payload
                service.answer("bench", omq, method=method)
        stats = service.stats()

    speedup = baseline / max(serving, 1e-9)
    print_table(
        f"service vs naive answer() loop ({queries} queries, "
        f"{len(script) - queries} updates)",
        ["path", "seconds", "queries/sec", "speedup", "cache hit-rate"],
        [["naive answer()", f"{baseline:.3f}",
          f"{queries / baseline:.1f}", "1.0x", "-"],
         ["OMQService", f"{serving:.3f}", f"{queries / serving:.1f}",
          f"{speedup:.1f}x",
          f"{stats['cache']['hit_rate'] * 100:.1f}%"]])
    assert speedup >= 5.0, (
        "rewriting cache + warm engines should beat the naive loop "
        f"5x, got {speedup:.1f}x")

    benchmark.pedantic(served, iterations=1, rounds=3)
