"""Table 3: evaluation of the rewritings of Sequence 1 over the
Table 2 datasets — evaluation time, answers and generated tuples per
engine (our datalog engine standing in for RDFox; see DESIGN.md).
"""

from _tables_common import run_table


def test_table3(paper_data, benchmark):
    datasets, _ = paper_data
    run_table("sequence1", datasets, benchmark, "Table 3")
