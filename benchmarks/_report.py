"""The shared ``BENCH_*.json`` report envelope.

Every benchmark that records results routes them through
:func:`write_report`, so all report files share one schema (documented
in ``benchmarks/README.md``):

* ``schema_version`` — bumped when the envelope shape changes;
* ``benchmark`` — the report's short name (``BENCH_<name>.json``);
* ``generated_unix`` — write time, seconds since the epoch;
* ``host`` — python version, platform, cpu count (numbers from
  different machines should not be trended against each other);
* the benchmark's own measurements, flat in the same object.

Reports land in the working directory by default; ``pytest
benchmarks/... --output DIR`` redirects them (the directory is
created if missing).
"""

import json
import os
import platform
import time

SCHEMA_VERSION = 1


def host_info() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }


def write_report(name: str, payload: dict, output: str = None) -> str:
    """Write ``BENCH_<name>.json`` and return its path."""
    envelope = {"schema_version": SCHEMA_VERSION, "benchmark": name,
                "generated_unix": round(time.time(), 3),
                "host": host_info()}
    clashes = set(envelope) & set(payload)
    if clashes:
        raise ValueError(f"payload keys clash with envelope: {clashes}")
    envelope.update(payload)
    directory = output or "."
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(envelope, handle, indent=2)
        handle.write("\n")
    return path
