"""Table 2: the generated Erdős–Rényi datasets.

Prints the paper's columns (V, p, q, average degree, number of atoms)
for the laptop-scaled datasets and benchmarks the generator itself.
"""

from repro.data import erdos_renyi_abox
from repro.experiments import TABLE2_HEADERS, print_table


def test_table2(paper_data, benchmark):
    datasets, rows = paper_data
    print_table("Table 2 - generated datasets (scaled)", TABLE2_HEADERS,
                rows)
    benchmark(lambda: erdos_renyi_abox(500, 0.02, 0.05, seed=1))
    assert len(rows) == 4
    # the degree hierarchy of the paper is preserved: dataset 1 is the
    # densest per vertex, dataset 4 the largest
    assert len(datasets["4.ttl"]) > len(datasets["2.ttl"])
