"""Ablation: the Lemma 5 skinny transformation.

Applies the Huffman-based transformation to the Log rewriting and
compares size, depth and evaluation statistics against the raw
program — the depth/size trade-off behind Theorem 6.
"""

from repro.experiments import print_table, skinny_comparison


def test_skinny_ablation(paper_data, benchmark):
    datasets, _ = paper_data
    abox = datasets["2.ttl"]
    points = benchmark.pedantic(
        lambda: skinny_comparison(abox, sizes=(5, 9, 13)),
        iterations=1, rounds=1)
    print_table(
        "Ablation - Lemma 5 skinny transformation (dataset 2.ttl)",
        ["sequence", "atoms", "variant", "clauses", "depth", "width",
         "seconds", "tuples"],
        [[p.sequence, p.atoms, p.variant, p.clauses, p.depth, p.width,
          f"{p.seconds:.3f}", p.generated_tuples] for p in points])
    by_variant = {}
    for p in points:
        by_variant.setdefault(p.variant, []).append(p)
    assert len(by_variant["log+skinny"]) == len(by_variant["log"])
