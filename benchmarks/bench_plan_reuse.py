"""Plan reuse: compile-once/execute-many vs the legacy answer loop.

The point of the compiled pipeline: reduction (1) compiles an OMQ into
an NDL query *once*, and only evaluation is paid per dataset.  The
legacy loop (`answer()` per (query, dataset) pair) re-rewrites the
same OMQ for every dataset; `compile()` + `Plan.execute()` pays
rewriting once and runs the frozen plan everywhere.

Smoke-sized (it runs in CI as a non-gating job): a handful of OMQs
over a handful of datasets, with a correctness cross-check and a >= 2x
assertion on the amortised path.
"""

import time

from repro import OMQ, AnswerSession, answer, compile_omq
from repro.experiments import print_table
from repro.queries import chain_cq

from tests.helpers import example11_tbox, random_data

#: (chain labels, method) — the hot OMQs compiled once.
QUERIES = (("RSRSR", "tw"), ("SRSRS", "log"), ("RSRS", "lin"),
           ("SRSR", "tw_star"), ("RSRSRS", "log"))
DATASETS = 6


def test_plan_reuse(benchmark):
    tbox = example11_tbox()
    omqs = [(OMQ(tbox, chain_cq(labels)), method)
            for labels, method in QUERIES]
    aboxes = [random_data(seed, individuals=12, atoms=45)
              for seed in range(DATASETS)]

    def legacy():
        # rewrites every (query, dataset) pair from scratch
        return [answer(omq, abox, method=method).answers
                for abox in aboxes for omq, method in omqs]

    def compiled():
        # prepare once per OMQ, execute the frozen plan per dataset
        plans = [compile_omq(omq, method=method) for omq, method in omqs]
        results = []
        for abox in aboxes:
            with AnswerSession(abox) as session:
                results.extend(plan.execute(session).answers
                               for plan in plans)
        return results

    started = time.perf_counter()
    baseline_results = legacy()
    baseline = time.perf_counter() - started

    started = time.perf_counter()
    compiled_results = compiled()
    amortised = time.perf_counter() - started

    assert compiled_results == baseline_results

    executions = len(QUERIES) * DATASETS
    speedup = baseline / max(amortised, 1e-9)
    print_table(
        f"compile-once/execute-many vs answer() loop "
        f"({len(QUERIES)} plans x {DATASETS} datasets)",
        ["path", "seconds", "executions/sec", "speedup"],
        [["answer() per pair", f"{baseline:.3f}",
          f"{executions / baseline:.1f}", "1.0x"],
         ["compile + execute", f"{amortised:.3f}",
          f"{executions / amortised:.1f}", f"{speedup:.1f}x"]])
    assert speedup >= 2.0, (
        "compiling once should clearly beat re-rewriting per dataset, "
        f"got {speedup:.1f}x")

    benchmark.pedantic(compiled, iterations=1, rounds=3)
