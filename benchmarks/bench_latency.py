"""Per-route request latency on both HTTP front-ends, plus the cost
of the observability layer itself.

Two measurements land in ``BENCH_latency.json``:

* **Route latency** — a golden workload (hot cached ``/answer``
  shapes, a cold shape, ``/stats``, ``/health``, an ``/update``) is
  driven sequentially against the threaded server and the asyncio
  server; client-side p50/p95/p99 per route are reported for each,
  next to the server's own ``repro_http_request_seconds`` summary
  (the ``/stats`` latency block) so the exported histogram can be
  sanity-checked against ground truth.
* **Instrumentation overhead** — the embedded answer loop timed with
  tracing off (the no-op span fast path every production request
  takes) versus tracing on, plus a microbenchmark of the inactive
  ``span()`` call itself.  The reported ``overhead_percent`` is the
  traced-vs-bare delta; the fast path is the one that must stay free.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro import OMQ, Client
from repro.experiments import print_table
from repro.obs.trace import span
from repro.queries import chain_cq
from repro.service import OMQService, serve_in_background
from repro.service.serve import build_server

from tests.helpers import example11_tbox, random_data

TBOX = example11_tbox()
TBOX_TEXT = "roles: P, R, S\nP <= S\nP <= R-"

#: (route, repetitions, payload factory) — the golden workload.
ANSWER_REPS = 40
STATS_REPS = 15
HEALTH_REPS = 15
UPDATE_REPS = 8


def _answer_payload(labels: str) -> dict:
    cq = chain_cq(labels)
    return {"dataset": "demo", "tbox_text": TBOX_TEXT,
            "query": ", ".join(str(atom) for atom in cq.atoms),
            "answers": list(cq.answer_vars)}


def _post(url: str, path: str, payload=None) -> float:
    """One request; returns its wall-clock seconds."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url + path, data, {"Content-Type": "application/json"})
    started = time.perf_counter()
    with urllib.request.urlopen(request) as response:
        response.read()
    return time.perf_counter() - started


def _percentiles(samples) -> dict:
    ordered = sorted(samples)

    def at(q: float) -> float:
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return round(ordered[index] * 1000, 3)

    return {"count": len(ordered), "p50_ms": at(0.50),
            "p95_ms": at(0.95), "p99_ms": at(0.99)}


def _drive(url: str) -> dict:
    """The golden workload, sequentially (latency, not throughput);
    per-route client-side samples."""
    samples = {"/answer": [], "/stats": [], "/health": [],
               "/update": []}
    hot = [_answer_payload("RS"), _answer_payload("SR")]
    cold = _answer_payload("RSR")
    for payload in (*hot, cold):  # warm the plan cache + sessions
        _post(url, "/answer", payload)
    for index in range(ANSWER_REPS):
        payload = cold if index % 8 == 7 else hot[index % 2]
        samples["/answer"].append(_post(url, "/answer", payload))
    for _ in range(STATS_REPS):
        samples["/stats"].append(_post(url, "/stats"))
    for _ in range(HEALTH_REPS):
        samples["/health"].append(_post(url, "/health"))
    for index in range(UPDATE_REPS):
        samples["/update"].append(_post(
            url, "/update",
            {"dataset": "demo",
             "insert": [f"R(lat{index}, lat{index + 1})"]}))
    return {route: _percentiles(route_samples)
            for route, route_samples in samples.items()}


def _server_side_latency(url: str) -> dict:
    """The server's own view: the ``/stats`` latency block, fed by
    the ``repro_http_request_seconds`` histogram."""
    stats = json.loads(urllib.request.urlopen(url + "/stats").read())
    return {route: {key: round(value * 1000, 3) if key != "count"
                    else value for key, value in summary.items()}
            for route, summary in stats["observability"]["latency"].items()}


def _overhead() -> dict:
    """Embedded answer loop, tracing off vs on, plus the inactive
    span() microcost."""
    with Client.local(max_workers=1) as client:
        client.register_dataset("demo", random_data(2))
        omq = OMQ(TBOX, chain_cq("RS"))
        client.answer("demo", omq)  # warm cache + session

        def loop(traced: bool, reps: int = 40) -> float:
            started = time.perf_counter()
            for _ in range(reps):
                client.answer("demo", omq, trace=traced)
            return (time.perf_counter() - started) / reps

        loop(False), loop(True)  # warm both paths
        bare = min(loop(False) for _ in range(3))
        traced = min(loop(True) for _ in range(3))

    iterations = 100_000
    started = time.perf_counter()
    for _ in range(iterations):
        with span("x"):
            pass
    noop_nanos = (time.perf_counter() - started) / iterations * 1e9
    return {
        "bare_us_per_answer": round(bare * 1e6, 2),
        "traced_us_per_answer": round(traced * 1e6, 2),
        "overhead_percent": round(max(0.0, traced / bare - 1.0) * 100, 2),
        "inactive_span_nanos": round(noop_nanos, 1),
    }


@pytest.mark.bench
def test_latency_profile(report_writer):
    report = {"routes": {}, "server_side": {}}

    threaded_service = OMQService(max_workers=4)
    threaded_service.register_dataset("demo", random_data(1))
    server = build_server(threaded_service, port=0, verbose=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        url = f"http://{host}:{port}"
        report["routes"]["threaded"] = _drive(url)
        report["server_side"]["threaded"] = _server_side_latency(url)
    finally:
        server.shutdown()
        server.server_close()
        threaded_service.close()

    async_service = OMQService(max_workers=4)
    async_service.register_dataset("demo", random_data(1))
    with serve_in_background(async_service) as handle:
        report["routes"]["async"] = _drive(handle.url)
        report["server_side"]["async"] = _server_side_latency(handle.url)
    async_service.close()

    report["overhead"] = _overhead()

    rows = []
    for front_end, routes in report["routes"].items():
        for route, summary in sorted(routes.items()):
            rows.append([front_end, route, summary["p50_ms"],
                         summary["p95_ms"], summary["p99_ms"]])
    print_table("request latency per route (client-side, ms)",
                ["server", "route", "p50", "p95", "p99"], rows)
    overhead = report["overhead"]
    print(f"tracing overhead: {overhead['bare_us_per_answer']:.0f}us "
          f"bare vs {overhead['traced_us_per_answer']:.0f}us traced "
          f"({overhead['overhead_percent']:.1f}%); inactive span: "
          f"{overhead['inactive_span_nanos']:.0f}ns")
    report_writer("latency", report)

    # every route produced a full percentile row on both servers, and
    # the servers' own histograms saw the same routes
    for front_end in ("threaded", "async"):
        for route in ("/answer", "/stats", "/health", "/update"):
            assert report["routes"][front_end][route]["count"] > 0
            assert route in report["server_side"][front_end]
    # the inactive fast path stays sub-microsecond-ish; generous cap
    # to keep slow CI machines green
    assert overhead["inactive_span_nanos"] < 10_000
