"""A thread-safe metrics registry: counters, gauges, latency histograms.

One :class:`MetricsRegistry` per :class:`~repro.service.service.OMQService`
is the single home for every serving counter — the cache, the standing
registry, the tenant manager, both HTTP front-ends and the service
itself all register their families against it instead of keeping
private ``self._hits``-style integers.  That buys three things at
once:

* ``GET /metrics`` renders the whole registry in the Prometheus text
  exposition format, so the same numbers that back ``/stats`` are
  scrapeable;
* both servers expose *identical metric families* (families are
  created centrally, servers only increment the ones they use), so
  dashboards cannot drift between the threaded and asyncio front-ends;
* latency gets first-class treatment: :class:`Histogram` buckets
  observations logarithmically and answers p50/p95/p99 directly from
  the bucket counts, which is what the hot-path latency program trends.

Everything is stdlib-only and lock-per-registry; an increment is a
dict lookup and a float add under one lock, cheap enough for the
request path (the latency benchmark guards the overhead).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "LATENCY_BUCKETS"]

#: Default log-spaced latency buckets (seconds): 100µs to 60s.  The
#: upper edge of each bucket; ``+Inf`` is implicit.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

_METRIC_TYPES = ("counter", "gauge", "histogram")


def _format_value(value: float) -> str:
    """Prometheus sample rendering: integers without a decimal point."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _label_suffix(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"'
                     for name, value in labels)
    return "{" + inner + "}"


class _Metric:
    """One family: name, help, type, and its labeled children.

    A family with no ``labelnames`` has exactly one child (the empty
    label set) and proxies ``inc``/``set``/``observe`` to it, so
    ``registry.counter("x", "...").inc()`` reads naturally.
    """

    kind = "?"

    def __init__(self, name: str, help_text: str,
                 labelnames: Tuple[str, ...], lock: threading.Lock):
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._lock = lock
        self._children: Dict[Tuple[str, ...], object] = {}
        if not labelnames:
            self._children[()] = self._new_child()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labels: str):
        """The child for one concrete label set (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels "
                f"{self.labelnames}, got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    @property
    def _solo(self):
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} is labeled "
                             f"({self.labelnames}); call .labels() first")
        return self._children[()]

    def children(self) -> List[Tuple[Tuple[Tuple[str, str], ...], object]]:
        with self._lock:
            return [(tuple(zip(self.labelnames, key)), child)
                    for key, child in sorted(self._children.items())]

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {_escape_help(self.help)}",
                 f"# TYPE {self.name} {self.kind}"]
        for labels, child in self.children():
            lines.extend(child.render_samples(self.name, labels))
        return lines


class _CounterValue:
    """One monotonically increasing sample."""

    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock):
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render_samples(self, name: str, labels) -> List[str]:
        return [f"{name}{_label_suffix(labels)} "
                f"{_format_value(self.value)}"]


class _GaugeValue:
    """One sample that can go up and down."""

    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock):
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render_samples(self, name: str, labels) -> List[str]:
        return [f"{name}{_label_suffix(labels)} "
                f"{_format_value(self.value)}"]


class _HistogramValue:
    """Log-bucketed observations with percentile estimation.

    Keeps cumulative-style bucket counts (stored per-bucket, rendered
    cumulative), the exact sum/count, and the min/max seen — the
    percentile estimate interpolates within its bucket and clamps to
    the observed extremes, so single-value distributions report that
    value exactly.
    """

    __slots__ = ("buckets", "counts", "_sum", "_count", "_min", "_max",
                 "_lock")

    def __init__(self, buckets: Tuple[float, ...], lock: threading.Lock):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            slot = len(self.buckets)
            for index, edge in enumerate(self.buckets):
                if value <= edge:
                    slot = index
                    break
            self.counts[slot] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, quantile: float) -> float:
        """The estimated value at ``quantile`` (0..1), interpolated
        linearly inside the winning bucket and clamped to the exact
        min/max observed."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], "
                             f"got {quantile}")
        with self._lock:
            if not self._count:
                return 0.0
            rank = quantile * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self.counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    lower = (0.0 if index == 0
                             else self.buckets[index - 1])
                    upper = (self.buckets[index]
                             if index < len(self.buckets)
                             else max(self._max, lower))
                    inside = (rank - (cumulative - bucket_count)
                              ) / bucket_count
                    estimate = lower + (upper - lower) * min(1.0, inside)
                    return min(max(estimate, self._min), self._max)
            return self._max

    def summary(self) -> Dict[str, float]:
        """p50/p95/p99 plus count/mean — the ``/stats`` latency block."""
        with self._lock:
            count, total = self._count, self._sum
        return {"count": count,
                "mean": round(total / count, 6) if count else 0.0,
                "p50": round(self.percentile(0.50), 6),
                "p95": round(self.percentile(0.95), 6),
                "p99": round(self.percentile(0.99), 6)}

    def render_samples(self, name: str, labels) -> List[str]:
        with self._lock:
            counts = list(self.counts)
            total, count = self._sum, self._count
        lines = []
        cumulative = 0
        for edge, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            le = (("le", _format_value(edge)),)
            lines.append(f"{name}_bucket{_label_suffix(labels + le)} "
                         f"{cumulative}")
        cumulative += counts[-1]
        inf = (("le", "+Inf"),)
        lines.append(f"{name}_bucket{_label_suffix(labels + inf)} "
                     f"{cumulative}")
        lines.append(f"{name}_sum{_label_suffix(labels)} "
                     f"{_format_value(total)}")
        lines.append(f"{name}_count{_label_suffix(labels)} {count}")
        return lines


class Counter(_Metric):
    kind = "counter"

    def _new_child(self) -> _CounterValue:
        return _CounterValue(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._solo.inc(amount)

    @property
    def value(self) -> float:
        return self._solo.value


class Gauge(_Metric):
    kind = "gauge"

    def _new_child(self) -> _GaugeValue:
        return _GaugeValue(self._lock)

    def set(self, value: float) -> None:
        self._solo.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._solo.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo.dec(amount)

    @property
    def value(self) -> float:
        return self._solo.value


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: Tuple[str, ...], lock: threading.Lock,
                 buckets: Tuple[float, ...] = LATENCY_BUCKETS):
        edges = tuple(sorted(set(float(edge) for edge in buckets)))
        if not edges:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = edges
        super().__init__(name, help_text, labelnames, lock)

    def _new_child(self) -> _HistogramValue:
        return _HistogramValue(self.buckets, self._lock)

    def observe(self, value: float) -> None:
        self._solo.observe(value)

    def percentile(self, quantile: float) -> float:
        return self._solo.percentile(quantile)

    def summary(self) -> Dict[str, float]:
        return self._solo.summary()

    @property
    def count(self) -> int:
        return self._solo.count

    @property
    def sum(self) -> float:
        return self._solo.sum


_NAME_ERROR = ("metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* "
               "(Prometheus exposition format)")


def _check_name(name: str) -> str:
    if not name or not (name[0].isalpha() or name[0] in "_:"):
        raise ValueError(f"{_NAME_ERROR}; got {name!r}")
    for char in name:
        if not (char.isalnum() or char in "_:"):
            raise ValueError(f"{_NAME_ERROR}; got {name!r}")
    return name


class MetricsRegistry:
    """A named collection of metric families, one per service.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for
    an existing name returns the existing family (and raises if the
    type or labels disagree), so independent subsystems can share one
    registry without coordinating creation order.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: "Dict[str, _Metric]" = {}

    def _family(self, cls, name: str, help_text: str,
                labelnames: Iterable[str], **kwargs) -> _Metric:
        _check_name(name)
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}, not {cls.kind}")
                if family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with "
                        f"labels {family.labelnames}, not {labelnames}")
                return family
            family = cls(name, help_text, labelnames,
                         threading.Lock(), **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._family(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._family(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Tuple[float, ...] = LATENCY_BUCKETS
                  ) -> Histogram:
        return self._family(Histogram, name, help_text, labelnames,
                            buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[_Metric]:
        with self._lock:
            return [self._families[name]
                    for name in sorted(self._families)]

    def render_prometheus(self) -> str:
        """The whole registry in the Prometheus text exposition
        format (version 0.0.4), families sorted by name."""
        lines: List[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, object]:
        """Every sample as a JSON-able dict (tests and debugging)."""
        out: Dict[str, object] = {}
        for family in self.families():
            samples: Dict[str, object] = {}
            for labels, child in family.children():
                key = _label_suffix(tuple(labels)) or "_"
                if isinstance(child, _HistogramValue):
                    samples[key] = child.summary()
                else:
                    samples[key] = child.value
            out[family.name] = {"type": family.kind, "samples": samples}
        return out


def parse_prometheus_families(text: str) -> Dict[str, str]:
    """``{family name: type}`` from a text-format exposition — what the
    parity tests compare between the two servers."""
    families: Dict[str, str] = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families[name] = kind.strip()
    return families


#: Prometheus content type for the text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
