"""Per-request tracing: trace IDs and named timing spans.

A :class:`Trace` is created once per request (honoring an inbound
``X-Repro-Trace-Id`` header, minting an ID otherwise) and installed in
a :mod:`contextvars` context variable.  Instrumented code then calls
the module-level :func:`span` —

    with span("cache-lookup"):
        ...

— which times the block *if* a trace is active and is a shared no-op
otherwise.  The no-op path is a single contextvar read, so library
code (``Plan.execute``, the SQL engine, the cache) can be instrumented
unconditionally without taxing embedded users who never start a trace.

Spans nest: a span opened while another is running becomes its child,
so the trace payload is a tree (``execute`` holding per-shard children
holding ``sql-compile``...).  Crossing the pickle boundary into shard
workers only the trace *ID* travels; the worker records spans under a
fresh local trace and ships them back inside its result payload, and
the parent grafts them in with :func:`record`.
"""

from __future__ import annotations

import contextvars
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = ["Trace", "Span", "current_trace", "start_trace", "tracing",
           "span", "record", "annotate", "current_trace_id",
           "mint_trace_id", "valid_trace_id"]

_MAX_TRACE_ID = 128  # header abuse guard


def mint_trace_id() -> str:
    """A fresh 32-hex-char trace identifier."""
    return uuid.uuid4().hex


def valid_trace_id(value: str) -> bool:
    """Whether an inbound header value is usable as a trace ID:
    non-empty, printable ASCII, bounded length."""
    if not value or len(value) > _MAX_TRACE_ID:
        return False
    return all(33 <= ord(char) <= 126 for char in value)


class Span:
    """One timed, named region; children are spans opened inside it."""

    __slots__ = ("name", "seconds", "children", "attrs")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.children: List["Span"] = []
        self.attrs: Dict[str, Any] = {}

    def payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name,
                               "seconds": round(self.seconds, 6)}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.payload()
                               for child in self.children]
        return out


class Trace:
    """The per-request span accumulator.

    ``wanted`` records whether the client asked for the trace in the
    response body (``"trace": true``); the ID header is echoed either
    way.  Traces are confined to one thread of execution at a time —
    the span stack is not locked — which the service honors by only
    activating a trace on the thread currently driving the request.
    """

    __slots__ = ("trace_id", "wanted", "_roots", "_stack", "_started",
                 "annotations")

    def __init__(self, trace_id: Optional[str] = None,
                 wanted: bool = False):
        self.trace_id = trace_id or mint_trace_id()
        self.wanted = wanted
        self._roots: List[Span] = []
        self._stack: List[Span] = []
        self._started = time.perf_counter()
        self.annotations: Dict[str, Any] = {}

    # -- span recording -------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        entry = Span(name)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self._roots).append(entry)
        self._stack.append(entry)
        start = time.perf_counter()
        try:
            yield entry
        finally:
            entry.seconds += time.perf_counter() - start
            if self._stack and self._stack[-1] is entry:
                self._stack.pop()

    def record(self, name: str, seconds: float,
               children: Sequence[Dict[str, Any]] = ()) -> Span:
        """Attach an externally-timed span (e.g. measured in a shard
        worker and shipped back as payload dicts)."""
        entry = Span(name)
        entry.seconds = float(seconds)
        entry.children = [_span_from_payload(child)
                          for child in children]
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self._roots).append(entry)
        return entry

    def annotate(self, key: str, value: Any) -> None:
        """Attach request-level metadata (plan fingerprint, dataset...)
        surfaced in the trace payload and the slow-query log."""
        self.annotations[key] = value

    # -- output ----------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        return list(self._roots)

    def span_total(self) -> float:
        return sum(entry.seconds for entry in self._roots)

    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    def payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "spans": [entry.payload() for entry in self._roots]}
        if self.annotations:
            out["annotations"] = dict(self.annotations)
        return out

    def flat_spans(self) -> List[Dict[str, Any]]:
        """``[{"name": ..., "seconds": ...}]`` depth-first with dotted
        paths — the slow-query log's compact rendering."""
        flat: List[Dict[str, Any]] = []

        def walk(entry: Span, prefix: str) -> None:
            path = f"{prefix}.{entry.name}" if prefix else entry.name
            flat.append({"name": path,
                         "seconds": round(entry.seconds, 6)})
            for child in entry.children:
                walk(child, path)

        for root in self._roots:
            walk(root, "")
        return flat


def _span_from_payload(payload: Dict[str, Any]) -> Span:
    entry = Span(str(payload.get("name", "?")))
    entry.seconds = float(payload.get("seconds", 0.0))
    entry.attrs = dict(payload.get("attrs", ()) or {})
    entry.children = [_span_from_payload(child)
                      for child in payload.get("children", ())]
    return entry


# -- ambient trace plumbing ----------------------------------------------

_current: "contextvars.ContextVar[Optional[Trace]]" = \
    contextvars.ContextVar("repro_trace", default=None)


class _NullSpan:
    """Shared do-nothing context manager — the inactive fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    @property
    def attrs(self) -> Dict[str, Any]:  # pragma: no cover - rarely hit
        return {}


_NULL_SPAN = _NullSpan()


def current_trace() -> Optional[Trace]:
    return _current.get()


def current_trace_id() -> Optional[str]:
    trace = _current.get()
    return trace.trace_id if trace is not None else None


def start_trace(trace_id: Optional[str] = None,
                wanted: bool = False) -> Trace:
    """Create a trace and install it in the current context."""
    trace = Trace(trace_id, wanted)
    _current.set(trace)
    return trace


@contextmanager
def tracing(trace: Optional[Trace]) -> Iterator[Optional[Trace]]:
    """Install ``trace`` for the duration of the block (pass ``None``
    to run untraced, e.g. inside worker pools handling a different
    request)."""
    token = _current.set(trace)
    try:
        yield trace
    finally:
        _current.reset(token)


def span(name: str):
    """Time a named region of the active trace; no-op when inactive."""
    trace = _current.get()
    if trace is None:
        return _NULL_SPAN
    return trace.span(name)


def record(name: str, seconds: float,
           children: Sequence[Dict[str, Any]] = ()) -> None:
    """``Trace.record`` against the active trace; no-op when inactive."""
    trace = _current.get()
    if trace is not None:
        trace.record(name, seconds, children)


def annotate(key: str, value: Any) -> None:
    """``Trace.annotate`` against the active trace; no-op when
    inactive."""
    trace = _current.get()
    if trace is not None:
        trace.annotate(key, value)
