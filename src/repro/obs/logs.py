"""Logging for the ``repro.*`` hierarchy.

Every subsystem logs through a ``repro.<area>`` logger; this module is
the single configuration entry point (wired to ``serve --log-level``
and ``--log-json``).  The JSON formatter emits one object per line —
timestamp, level, logger, message, plus the active trace ID when a
request is in flight and any ``extra={...}`` fields the call site
attached — so the slow-query log and error paths are machine-parsable
without regex archaeology.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict

from .trace import current_trace_id

__all__ = ["configure_logging", "JSONFormatter", "get_logger"]

#: Fields present on every LogRecord; anything else came from
#: ``extra={...}`` and is folded into the JSON object.
_STANDARD_FIELDS = frozenset(vars(logging.makeLogRecord({}))) | \
    frozenset({"message", "asctime", "taskName"})


class JSONFormatter(logging.Formatter):
    """One JSON object per line, trace-aware."""

    def format(self, record: logging.LogRecord) -> str:
        out: Dict[str, Any] = {
            "ts": round(record.created, 3),
            "time": time.strftime("%Y-%m-%dT%H:%M:%S",
                                  time.gmtime(record.created))
                    + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None) or \
            current_trace_id()
        if trace_id:
            out["trace_id"] = trace_id
        for key, value in vars(record).items():
            if key not in _STANDARD_FIELDS and key != "trace_id":
                try:
                    json.dumps(value)
                except (TypeError, ValueError):
                    value = repr(value)
                out[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            out["exception"] = self.formatException(record.exc_info)
        return json.dumps(out, sort_keys=False)


class _TraceFormatter(logging.Formatter):
    """Plain-text formatter that appends the trace ID when present."""

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        trace_id = getattr(record, "trace_id", None) or \
            current_trace_id()
        if trace_id:
            base = f"{base} trace_id={trace_id}"
        return base


_PLAIN_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"


def configure_logging(level: str = "info", json_output: bool = False,
                      stream=None) -> logging.Logger:
    """(Re)configure the ``repro`` root logger.

    Idempotent: replaces any handler this function installed before,
    so tests and repeated ``serve`` invocations in one process don't
    stack handlers.  Returns the configured logger.
    """
    logger = logging.getLogger("repro")
    numeric = getattr(logging, str(level).upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    handler = logging.StreamHandler(stream or sys.stderr)
    if json_output:
        handler.setFormatter(JSONFormatter())
    else:
        handler.setFormatter(_TraceFormatter(_PLAIN_FORMAT,
                                             "%Y-%m-%dT%H:%M:%S"))
    handler.set_name("repro-obs")
    for existing in list(logger.handlers):
        if existing.get_name() == "repro-obs":
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(numeric)
    logger.propagate = False
    return logger


def get_logger(area: str) -> logging.Logger:
    """The ``repro.<area>`` logger (pure convenience/consistency)."""
    return logging.getLogger(f"repro.{area}")


def _reset_for_tests() -> None:
    """Remove our handler and restore propagation (test hygiene)."""
    logger = logging.getLogger("repro")
    for existing in list(logger.handlers):
        if existing.get_name() == "repro-obs":
            logger.removeHandler(existing)
    logger.propagate = True
    logger.setLevel(logging.NOTSET)
