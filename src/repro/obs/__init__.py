"""``repro.obs`` — metrics, tracing, and logging for the serving stack.

Three pieces:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges, and log-bucketed latency histograms, rendered on
  demand in the Prometheus text exposition format;
* :mod:`repro.obs.trace` — per-request trace IDs and nested timing
  spans carried through :mod:`contextvars` (and, by ID, across the
  pickle boundary into shard workers);
* :mod:`repro.obs.logs` — the ``repro.*`` logger hierarchy behind one
  ``configure_logging(level, json)`` entry point.

:class:`Observability` bundles a registry with the *complete* family
set used anywhere in the stack plus the slow-query log.  Families are
created eagerly here — not lazily at first increment — so both HTTP
front-ends expose identical metric families from their first scrape,
whether or not a given subsystem has fired yet.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from typing import Any, Dict, List, Optional

from .logs import JSONFormatter, configure_logging, get_logger
from .metrics import (LATENCY_BUCKETS, PROMETHEUS_CONTENT_TYPE, Counter,
                      Gauge, Histogram, MetricsRegistry,
                      parse_prometheus_families)
from .trace import (Trace, annotate, current_trace, current_trace_id,
                    mint_trace_id, record, span, start_trace, tracing,
                    valid_trace_id)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "LATENCY_BUCKETS", "PROMETHEUS_CONTENT_TYPE",
    "parse_prometheus_families",
    "Trace", "span", "record", "annotate", "tracing", "start_trace",
    "current_trace", "current_trace_id", "mint_trace_id",
    "valid_trace_id",
    "configure_logging", "JSONFormatter", "get_logger",
    "Observability",
]

_slow_log = logging.getLogger("repro.obs.slow")


class Observability:
    """One registry + the full metric-family set + the slow-query log.

    Owned by :class:`~repro.service.service.OMQService` and shared by
    everything serving it; standalone subsystem instances fall back to
    a private bundle so library use stays zero-config.
    """

    SLOW_LOG_KEEP = 64

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 slow_query_ms: Optional[float] = None):
        reg = self.registry = registry or MetricsRegistry()
        self.slow_query_ms = slow_query_ms
        self._slow_lock = threading.Lock()
        self._slow: "deque[Dict[str, Any]]" = deque(
            maxlen=self.SLOW_LOG_KEEP)

        # -- HTTP front-ends ---------------------------------------------
        self.http_requests = reg.counter(
            "repro_http_requests_total",
            "HTTP requests handled, by route/method/status.",
            ("route", "method", "status"))
        self.http_seconds = reg.histogram(
            "repro_http_request_seconds",
            "Wall-clock seconds per HTTP request, by route.",
            ("route",))
        self.slow_queries = reg.counter(
            "repro_slow_queries_total",
            "Requests exceeding the --slow-query-ms threshold.")

        # -- service core -------------------------------------------------
        self.service_requests = reg.counter(
            "repro_service_requests_total",
            "Answer requests processed by the service core.")
        self.service_batches = reg.counter(
            "repro_service_batches_total",
            "Batch answer calls processed.")
        self.service_batch_requests = reg.counter(
            "repro_service_batch_requests_total",
            "Individual requests arriving inside batches.")
        self.service_batch_deduped = reg.counter(
            "repro_service_batch_deduped_total",
            "Batch entries answered by another entry's execution.")
        self.service_updates = reg.counter(
            "repro_service_updates_total",
            "Data update calls applied.")
        self.answer_seconds = reg.histogram(
            "repro_answer_seconds",
            "End-to-end answer latency inside the service, by engine.",
            ("engine",))

        # -- rewriting cache ----------------------------------------------
        self.cache_hits = reg.counter(
            "repro_cache_hits_total", "Rewriting-cache hits.")
        self.cache_misses = reg.counter(
            "repro_cache_misses_total", "Rewriting-cache misses.")
        self.cache_evictions = reg.counter(
            "repro_cache_evictions_total",
            "Rewriting-cache LRU evictions.")
        self.cache_entries = reg.gauge(
            "repro_cache_entries", "Rewriting-cache current size.")

        # -- standing queries ---------------------------------------------
        self.standing_subscribed = reg.counter(
            "repro_standing_subscribed_total",
            "Standing-query subscriptions ever created.")
        self.standing_deltas = reg.counter(
            "repro_standing_deltas_pushed_total",
            "Non-empty deltas pushed to standing subscribers.")
        self.standing_tuples = reg.counter(
            "repro_standing_tuples_pushed_total",
            "Answer tuples pushed across all deltas.")
        self.standing_resyncs = reg.counter(
            "repro_standing_resyncs_total",
            "Full standing-query resynchronisations.")
        self.standing_fallbacks = reg.counter(
            "repro_standing_fallbacks_total",
            "Standing maintenance fallbacks to re-execution.")
        self.standing_polls = reg.counter(
            "repro_standing_polls_total", "Standing-query polls.")
        self.standing_maintenance_seconds = reg.counter(
            "repro_standing_maintenance_seconds_total",
            "Cumulative seconds spent in standing maintenance.")

        # -- tenants ------------------------------------------------------
        self.tenant_requests = reg.counter(
            "repro_tenant_requests_total",
            "Requests admitted, by tenant.", ("tenant",))
        self.tenant_rate_limited = reg.counter(
            "repro_tenant_rate_limited_total",
            "Requests rejected by the per-tenant rate limit.",
            ("tenant",))
        self.tenant_quota_rejections = reg.counter(
            "repro_tenant_quota_rejections_total",
            "Operations rejected by per-tenant quotas.", ("tenant",))

        # -- durable storage ----------------------------------------------
        self.storage_write_errors = reg.counter(
            "repro_storage_write_errors_total",
            "Durable-store write failures (served from memory).")

        # -- asyncio front-end --------------------------------------------
        self.async_requests = reg.counter(
            "repro_async_requests_total",
            "Requests handled by the asyncio front-end.")
        self.async_coalesced = reg.counter(
            "repro_async_coalesced_total",
            "Requests served by joining an identical in-flight one.")
        self.async_batches = reg.counter(
            "repro_async_batches_total", "Micro-batches flushed.")
        self.async_batched_requests = reg.counter(
            "repro_async_batched_requests_total",
            "Requests executed inside micro-batches.")
        self.async_rejected = reg.counter(
            "repro_async_rejected_total",
            "Requests rejected with 503 under backpressure.")
        self.async_pending = reg.gauge(
            "repro_async_pending",
            "Requests currently admitted in the asyncio front-end.")
        self.async_peak_pending = reg.gauge(
            "repro_async_peak_pending",
            "High-water mark of admitted requests.")
        self.async_parked_polls = reg.gauge(
            "repro_async_parked_polls",
            "Long-polls currently parked.")
        self.async_peak_polls = reg.gauge(
            "repro_async_peak_polls",
            "High-water mark of parked long-polls.")

    # -- request accounting ----------------------------------------------

    def observe_http(self, route: str, method: str, status: int,
                     seconds: float,
                     trace: Optional[Trace] = None) -> None:
        """Record one finished HTTP request; feed the slow-query log
        when it crossed the threshold."""
        self.http_requests.labels(route=route, method=method,
                                  status=str(status)).inc()
        self.http_seconds.labels(route=route).observe(seconds)
        threshold = self.slow_query_ms
        if threshold is None or seconds * 1000.0 < threshold:
            return
        self.slow_queries.inc()
        entry: Dict[str, Any] = {
            "route": route, "method": method, "status": status,
            "ms": round(seconds * 1000.0, 3)}
        extra: Dict[str, Any] = {"route": route, "status": status,
                                 "ms": entry["ms"]}
        if trace is not None:
            entry["trace_id"] = trace.trace_id
            extra["trace_id"] = trace.trace_id
            fingerprint = trace.annotations.get("plan_fingerprint")
            if fingerprint:
                entry["plan_fingerprint"] = fingerprint
                extra["plan_fingerprint"] = fingerprint
            entry["spans"] = trace.flat_spans()
            extra["spans"] = entry["spans"]
        with self._slow_lock:
            self._slow.append(entry)
        _slow_log.warning("slow query on %s: %.1fms", route,
                          seconds * 1000.0, extra=extra)

    def slow_query_log(self) -> List[Dict[str, Any]]:
        with self._slow_lock:
            return list(self._slow)

    def latency_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-route p50/p95/p99 from the HTTP histogram — the
        ``/stats`` latency block."""
        out: Dict[str, Dict[str, float]] = {}
        for labels, child in self.http_seconds.children():
            route = dict(labels).get("route", "?")
            out[route] = child.summary()
        return out

    def stats(self) -> Dict[str, Any]:
        """The ``observability`` block of ``/stats``."""
        return {
            "slow_query_ms": self.slow_query_ms,
            "slow_queries": int(self.slow_queries.value),
            "latency": self.latency_summary(),
            "slow_query_log": self.slow_query_log(),
        }

    def render_prometheus(self) -> str:
        return self.registry.render_prometheus()
