"""One client facade over every way to run the query pipeline.

The library grew three front doors — an in-process
:class:`~repro.service.service.OMQService`, the JSON/HTTP server of
:mod:`repro.service.serve`, and bare sessions — each with its own call
shape.  :class:`Client` unifies them behind one surface: the same
``answer`` / ``explain`` / ``update`` / ``stats`` calls work whether
the data lives in this process or behind a URL, always configured by
one :class:`~repro.rewriting.plan.AnswerOptions` and always returning
typed :class:`~repro.rewriting.plan.Answers`.

Usage::

    with Client.local() as client:                  # embedded service
        client.register_dataset("demo", abox)
        client.answer("demo", omq, method="lin")
        client.explain(omq, method="lin")

    with Client.connect("http://host:8080") as client:   # remote
        client.answer("demo", omq)                  # same surface

``Client.wrap(service)`` borrows an existing service (not closed with
the client); text serialisation for the HTTP transport round-trips
through the same ``TBox.parse`` / ``CQ.parse`` / ``ABox.parse`` syntax
the CLI and test suite use.

For asyncio code there are two doors: :class:`AsyncClient` speaks the
HTTP protocol natively on asyncio streams (the natural mate of the
coalescing ``repro serve --async-io`` front-end), and every blocking
``Client`` verb has an ``*_async`` twin that runs it on a thread.
Server rejections surface as :class:`ServiceError` (a ``ValueError``
carrying the HTTP status, the server's ``error_type`` tag and, for
429 backpressure rejections, ``retry_after`` seconds).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Iterable, List, Optional, Tuple
from urllib import request as urllib_request
from urllib.error import HTTPError
from urllib.parse import urlsplit

from .data.abox import ABox
from .obs.trace import Trace, current_trace_id, tracing
from .ontology.tbox import TBox
from .queries.cq import CQ
from .rewriting.api import OMQ
from .rewriting.plan import AnswerOptions, Answers
from .standing.push import decode_sse
from .standing.registry import AnswerDelta

GroundAtom = Tuple[str, Tuple[str, ...]]

#: Response header echoing the request's trace ID (both servers).
TRACE_HEADER = "X-Repro-Trace-Id"


class ServiceError(ValueError):
    """A request the server rejected, carrying the HTTP ``status``,
    the server's ``error_type`` tag and (for 429 backpressure
    rejections) the suggested ``retry_after`` seconds.

    Subclasses :class:`ValueError` so existing callers that catch
    that keep working.
    """

    def __init__(self, message: str, status: int = 400,
                 error_type: str = "bad_request",
                 retry_after: Optional[float] = None,
                 trace_id: Optional[str] = None):
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.retry_after = retry_after
        #: The server-assigned request trace ID (from the error body or
        #: the echoed ``X-Repro-Trace-Id`` header) — quote it when
        #: reporting a failed request so the server side can find it.
        self.trace_id = trace_id

    @classmethod
    def from_body(cls, status: int, body, headers=None) -> "ServiceError":
        """Build from a decoded error body (``{"error": ...,
        "error_type": ...}``) plus response headers."""
        if not isinstance(body, dict):
            body = {}
        retry_after: Optional[float] = None
        raw = body.get("retry_after")
        if raw is None and headers is not None:
            raw = headers.get("Retry-After")
        if raw is not None:
            try:
                retry_after = float(raw)
            except (TypeError, ValueError):
                retry_after = None
        trace_id = body.get("trace_id")
        if trace_id is None and headers is not None:
            trace_id = headers.get(TRACE_HEADER)
        return cls(str(body.get("error") or f"HTTP {status}"),
                   status=status,
                   error_type=str(body.get("error_type") or "error"),
                   retry_after=retry_after,
                   trace_id=str(trace_id) if trace_id else None)


def tbox_to_text(tbox: TBox) -> str:
    """``tbox`` in the ``TBox.parse`` surface syntax (round-trips:
    the re-parsed ontology has the same fingerprint)."""
    roles = sorted({role.name for role in tbox.roles})
    lines = []
    if roles:
        lines.append("roles: " + ", ".join(roles))
    lines.extend(str(axiom) for axiom in tbox.user_axioms)
    return "\n".join(lines)


def cq_to_text(cq: CQ) -> str:
    """The CQ body in the ``CQ.parse`` surface syntax (answer
    variables travel separately)."""
    return ", ".join(str(atom) for atom in cq.atoms)


def abox_to_text(abox: ABox) -> str:
    """``abox`` in the ``ABox.parse`` surface syntax."""
    return "\n".join(f"{predicate}({', '.join(args)})"
                     for predicate, args in sorted(abox.atoms()))


def _atom_texts(atoms: Iterable[GroundAtom]) -> List[str]:
    return [f"{predicate}({', '.join(args)})" for predicate, args in atoms]


def _request_payload(dataset: Optional[str], omq: OMQ,
                     options: AnswerOptions,
                     trace: bool = False) -> Dict[str, object]:
    """One wire-format answer/explain request (shared by the sync and
    async HTTP transports)."""
    payload: Dict[str, object] = {
        "tbox_text": tbox_to_text(omq.tbox),
        "query": cq_to_text(omq.query),
        "answers": list(omq.query.answer_vars),
        "options": options.as_dict(),
    }
    if dataset is not None:
        payload["dataset"] = dataset
    if trace:
        payload["trace"] = True
    return payload


def _answers_from_body(body: Dict[str, object],
                       options: AnswerOptions) -> Answers:
    """Typed :class:`Answers` from a JSON ``/answer`` response."""
    return Answers(
        answers=frozenset(tuple(row) for row in body["answers"]),
        generated_tuples=int(body.get("generated_tuples", 0)),
        seconds=float(body.get("seconds", 0.0)),
        engine=body.get("engine") or "python",
        method=body.get("method", options.method),
        plan_fingerprint=body.get("plan_fingerprint", ""),
        cached_rewriting=bool(body.get("cached_rewriting", False)),
        timed_out=bool(body.get("timed_out", False)),
        shards=int(body.get("shards", 0)),
        trace=body.get("trace"))


class _SubscriptionState:
    """Shared client-side bookkeeping for one standing query: the live
    answer set and the epoch watermark, advanced by applying deltas.

    Both the blocking :class:`Subscription` (long-poll) and the
    asyncio :class:`AsyncSubscription` (SSE or long-poll) mix this in,
    so resync and duplicate-delta handling cannot drift between them.
    """

    def _init_state(self, snapshot: Dict[str, object]) -> None:
        self.subscription_id = str(snapshot["subscription"])
        self.dataset = str(snapshot["dataset"])
        self.epoch = int(snapshot.get("epoch", 0))
        self.answers = frozenset(tuple(row)
                                 for row in snapshot.get("answers", ()))
        self.closed = False

    def _apply_delta(self, delta: AnswerDelta) -> bool:
        """Advance the local state by one delta; ``False`` means the
        delta was already reflected (e.g. delivered twice around an
        attach) and should not be surfaced."""
        if delta.resync:
            self.answers = delta.answers or frozenset()
            self.epoch = max(self.epoch, delta.epoch)
            return True
        if delta.epoch <= self.epoch:
            return False
        self.answers = (self.answers | delta.added) - delta.removed
        self.epoch = delta.epoch
        return True

    def _apply_poll(self, body: Dict[str, object]) -> List[AnswerDelta]:
        """Apply one ``/poll`` response; returns the surfaced deltas
        (a resync response becomes a single resync delta)."""
        applied: List[AnswerDelta] = []
        if body.get("resync"):
            delta = AnswerDelta(
                epoch=int(body.get("epoch", 0)), resync=True,
                answers=frozenset(tuple(row)
                                  for row in body.get("answers", ())))
            if self._apply_delta(delta):
                applied.append(delta)
        for raw in body.get("deltas", ()):
            delta = AnswerDelta.from_payload(raw)
            if self._apply_delta(delta):
                applied.append(delta)
        return applied


class Subscription(_SubscriptionState):
    """A blocking standing-query handle (see :mod:`repro.standing`).

    Created by :meth:`Client.subscribe`; tracks the maintained answer
    set locally.  :meth:`poll` long-polls the service for deltas newer
    than the watermark and applies them::

        sub = client.subscribe("demo", omq)
        client.update("demo", inserts=[("R", ("a", "b"))])
        for delta in sub.poll(timeout=5.0):
            print(delta.added, delta.removed)
        sub.unsubscribe()
    """

    def __init__(self, transport, snapshot: Dict[str, object]):
        self._transport = transport
        self._init_state(snapshot)

    def poll(self, timeout: float = 0.0) -> List[AnswerDelta]:
        """Deltas since the last seen epoch (blocking up to
        ``timeout`` seconds for one), applied to :attr:`answers`."""
        body = self._transport.poll(self.subscription_id,
                                    since_epoch=self.epoch,
                                    timeout=timeout)
        return self._apply_poll(body)

    def unsubscribe(self) -> None:
        if not self.closed:
            self.closed = True
            self._transport.unsubscribe(self.subscription_id)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self.unsubscribe()
        except Exception:
            pass  # server gone or subscription already dropped

    def __repr__(self) -> str:
        return (f"Subscription({self.subscription_id!r}, "
                f"dataset={self.dataset!r}, epoch={self.epoch}, "
                f"answers={len(self.answers)})")


class _ServiceTransport:
    """The in-process transport: delegates to an ``OMQService``.

    ``tenant`` scopes every call into that tenant's namespace (the
    default ``""`` keeps the historical single-tenant behaviour).
    """

    def __init__(self, service, owned: bool, tenant: str = ""):
        self.service = service
        self._owned = owned
        self.tenant = tenant

    def register_dataset(self, name: str, abox: ABox,
                         replace: bool = False, shards: int = 0) -> None:
        self.service.register_dataset(name, abox, replace=replace,
                                      shards=shards, tenant=self.tenant)

    def unregister_dataset(self, name: str) -> None:
        self.service.unregister_dataset(name, tenant=self.tenant)

    def register_tbox(self, name: str, tbox: TBox) -> None:
        self.service.register_tbox(name, tbox, tenant=self.tenant)

    def datasets(self) -> Tuple[str, ...]:
        return self.service.datasets(tenant=self.tenant)

    def answer(self, dataset: str, omq: OMQ, options: AnswerOptions,
               trace: bool = False) -> Answers:
        active: Optional[Trace] = None
        if trace:
            # no HTTP layer here, so the client starts the trace
            # itself and harvests the span payload directly
            active = Trace(wanted=True)
            with tracing(active):
                result = self.service.answer(dataset, omq,
                                             options=options,
                                             tenant=self.tenant)
        else:
            result = self.service.answer(dataset, omq, options=options,
                                         tenant=self.tenant)
        return Answers(answers=result.answers,
                       generated_tuples=result.generated_tuples,
                       relation_sizes=dict(result.relation_sizes),
                       seconds=result.seconds, engine=result.engine,
                       method=result.method,
                       plan_fingerprint=result.plan_fingerprint or "",
                       cached_rewriting=result.cached_rewriting,
                       timed_out=result.timed_out,
                       shards=result.shards,
                       trace=active.payload() if active else None)

    def explain(self, omq: OMQ, options: AnswerOptions,
                dataset: Optional[str]) -> Dict[str, object]:
        return self.service.explain(omq, options=options, dataset=dataset,
                                    tenant=self.tenant)

    def update(self, dataset: str, inserts: Iterable[GroundAtom],
               deletes: Iterable[GroundAtom]) -> Dict[str, object]:
        return self.service.update(dataset, inserts=inserts,
                                   deletes=deletes,
                                   tenant=self.tenant).as_dict()

    def subscribe(self, dataset: str, omq: OMQ,
                  options: AnswerOptions) -> Dict[str, object]:
        sub = self.service.subscribe(dataset, omq, options=options,
                                     tenant=self.tenant)
        return self.service.standing.snapshot(sub.subscription_id)

    def poll(self, subscription: str, since_epoch: Optional[int] = None,
             timeout: float = 0.0) -> Dict[str, object]:
        return self.service.poll(subscription, since_epoch=since_epoch,
                                 timeout=timeout, tenant=self.tenant)

    def unsubscribe(self, subscription: str) -> None:
        self.service.unsubscribe(subscription, tenant=self.tenant)

    def stats(self) -> Dict[str, object]:
        return self.service.stats()

    def close(self) -> None:
        if self._owned:
            self.service.close()


class _HTTPTransport:
    """The remote transport: speaks the ``repro serve`` JSON protocol.

    A non-default ``tenant`` rides on every request as the
    ``X-Repro-Tenant`` header, scoping it server-side.
    """

    def __init__(self, url: str, timeout: float = 30.0, tenant: str = ""):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.tenant = tenant
        #: Trace ID echoed by the last response (success or error).
        self.last_trace_id: Optional[str] = None

    # -- wire --------------------------------------------------------------

    def _call(self, path: str, payload=None,
              timeout: Optional[float] = None) -> Dict[str, object]:
        url = f"{self.url}{path}"
        headers = {"X-Repro-Tenant": self.tenant} if self.tenant else {}
        trace_id = current_trace_id()
        if trace_id:
            # propagate the ambient trace so server-side spans and
            # slow-query log lines correlate with this caller
            headers[TRACE_HEADER] = trace_id
        if payload is None:
            req = urllib_request.Request(url, headers=headers)
        else:
            headers["Content-Type"] = "application/json"
            req = urllib_request.Request(
                url, data=json.dumps(payload).encode(), headers=headers)
        try:
            with urllib_request.urlopen(
                    req, timeout=timeout or self.timeout) as reply:
                self.last_trace_id = reply.headers.get(TRACE_HEADER)
                body = json.loads(reply.read().decode())
        except HTTPError as error:
            self.last_trace_id = error.headers.get(TRACE_HEADER)
            try:
                decoded = json.loads(error.read().decode())
            except Exception:
                decoded = {"error": str(error)}
            raise ServiceError.from_body(error.code, decoded,
                                         error.headers) from None
        return body

    # -- surface -----------------------------------------------------------

    def register_dataset(self, name: str, abox: ABox,
                         replace: bool = False, shards: int = 0) -> None:
        self._call("/datasets", {"name": name, "data": abox_to_text(abox),
                                 "replace": replace, "shards": shards})

    def unregister_dataset(self, name: str) -> None:
        self._call("/datasets/drop", {"name": name})

    def register_tbox(self, name: str, tbox: TBox) -> None:
        self._call("/tboxes", {"name": name, "tbox": tbox_to_text(tbox)})

    def datasets(self) -> Tuple[str, ...]:
        return tuple(sorted(self.stats().get("datasets", {})))

    def answer(self, dataset: str, omq: OMQ, options: AnswerOptions,
               trace: bool = False) -> Answers:
        body = self._call("/answer",
                          _request_payload(dataset, omq, options,
                                           trace=trace))
        return _answers_from_body(body, options)

    def explain(self, omq: OMQ, options: AnswerOptions,
                dataset: Optional[str]) -> Dict[str, object]:
        return self._call("/explain",
                          _request_payload(dataset, omq, options))

    def update(self, dataset: str, inserts: Iterable[GroundAtom],
               deletes: Iterable[GroundAtom]) -> Dict[str, object]:
        return self._call("/update", {"dataset": dataset,
                                      "insert": _atom_texts(inserts),
                                      "delete": _atom_texts(deletes)})

    def subscribe(self, dataset: str, omq: OMQ,
                  options: AnswerOptions) -> Dict[str, object]:
        return self._call("/subscribe",
                          _request_payload(dataset, omq, options))

    def poll(self, subscription: str, since_epoch: Optional[int] = None,
             timeout: float = 0.0) -> Dict[str, object]:
        payload: Dict[str, object] = {"subscription": subscription,
                                      "timeout": timeout}
        if since_epoch is not None:
            payload["since_epoch"] = since_epoch
        # the HTTP deadline must outlive the server-side park
        return self._call("/poll", payload,
                          timeout=max(self.timeout, timeout + 5.0))

    def unsubscribe(self, subscription: str) -> None:
        self._call("/unsubscribe", {"subscription": subscription})

    def stats(self) -> Dict[str, object]:
        return self._call("/stats")

    def close(self) -> None:
        pass


class Client:
    """The unified front door; see the module docstring.

    Build one with :meth:`local` (embedded service, owned),
    :meth:`wrap` (existing service, borrowed) or :meth:`connect`
    (remote HTTP server).
    """

    def __init__(self, transport):
        self._transport = transport

    @classmethod
    def local(cls, tenant: str = "", **service_kwargs) -> "Client":
        """A client over a fresh embedded
        :class:`~repro.service.service.OMQService` (closed with the
        client); ``service_kwargs`` pass through (``cache_size``,
        ``max_workers``, ``default_engine``, ``data_dir``, ``quota``).
        ``tenant`` scopes every call into that tenant's namespace."""
        from .service.service import OMQService

        return cls(_ServiceTransport(OMQService(**service_kwargs),
                                     owned=True, tenant=tenant))

    @classmethod
    def wrap(cls, service, tenant: str = "") -> "Client":
        """A client borrowing an existing service (not closed with the
        client), optionally pinned to one tenant's namespace."""
        return cls(_ServiceTransport(service, owned=False, tenant=tenant))

    @classmethod
    def connect(cls, url: str, timeout: float = 30.0,
                tenant: str = "") -> "Client":
        """A client speaking the ``repro serve`` JSON protocol; a
        non-default ``tenant`` is sent as ``X-Repro-Tenant``."""
        return cls(_HTTPTransport(url, timeout=timeout, tenant=tenant))

    # -- registration ------------------------------------------------------

    def register_dataset(self, name: str, abox: ABox,
                         replace: bool = False, shards: int = 0) -> None:
        """Register a dataset; ``shards >= 2`` serves it scatter-gather
        over a component partition (see :mod:`repro.shard`), and
        ``shards="auto"`` sizes the partition from the live CPU count
        and component skew, resharding as updates rebalance."""
        self._transport.register_dataset(name, abox, replace=replace,
                                         shards=shards)

    def unregister_dataset(self, name: str) -> None:
        """Drop a registered dataset (and its subscriptions)."""
        self._transport.unregister_dataset(name)

    def register_tbox(self, name: str, tbox: TBox) -> None:
        self._transport.register_tbox(name, tbox)

    def datasets(self) -> Tuple[str, ...]:
        return self._transport.datasets()

    # -- the pipeline ------------------------------------------------------

    def answer(self, dataset: str, omq: OMQ, options=None,
               trace: bool = False, **overrides) -> Answers:
        """Certain answers to ``omq`` over the named dataset.

        ``options`` / ``overrides`` build one
        :class:`~repro.rewriting.plan.AnswerOptions` (e.g.
        ``client.answer("demo", omq, method="tw", engine="sql")``).
        ``trace=True`` asks for the request's span breakdown, returned
        as ``Answers.trace`` (a nested name/seconds tree).
        """
        options = AnswerOptions.coerce(options, **overrides)
        return self._transport.answer(dataset, omq, options, trace=trace)

    def explain(self, omq: OMQ, options=None, dataset: Optional[str] = None,
                **overrides) -> Dict[str, object]:
        """The :meth:`~repro.rewriting.plan.Plan.explain` report for
        ``omq`` under the given options, without evaluating it.

        ``dataset`` is only needed for the data-dependent stages
        (``method="adaptive"`` or ``optimize=True``).
        """
        options = AnswerOptions.coerce(options, **overrides)
        return self._transport.explain(omq, options, dataset)

    # -- updates -----------------------------------------------------------

    def update(self, dataset: str, inserts: Iterable[GroundAtom] = (),
               deletes: Iterable[GroundAtom] = ()) -> Dict[str, object]:
        """Incrementally mutate a dataset (deletions apply first)."""
        return self._transport.update(dataset, inserts, deletes)

    def insert_facts(self, dataset: str,
                     atoms: Iterable[GroundAtom]) -> Dict[str, object]:
        return self.update(dataset, inserts=atoms)

    def delete_facts(self, dataset: str,
                     atoms: Iterable[GroundAtom]) -> Dict[str, object]:
        return self.update(dataset, deletes=atoms)

    # -- standing queries --------------------------------------------------

    def subscribe(self, dataset: str, omq: OMQ, options=None,
                  **overrides) -> Subscription:
        """Register ``omq`` as a standing query over the dataset.

        The returned :class:`Subscription` holds the initial answer
        set; each update the service applies maintains it
        incrementally, and :meth:`Subscription.poll` fetches the
        resulting deltas.
        """
        options = AnswerOptions.coerce(options, **overrides)
        snapshot = self._transport.subscribe(dataset, omq, options)
        return Subscription(self._transport, snapshot)

    # -- stats and lifecycle -----------------------------------------------

    def stats(self) -> Dict[str, object]:
        return self._transport.stats()

    @property
    def last_trace_id(self) -> Optional[str]:
        """The ``X-Repro-Trace-Id`` echoed by the last HTTP response
        (``None`` for embedded transports)."""
        return getattr(self._transport, "last_trace_id", None)

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Client({self._transport.__class__.__name__[1:]})"

    # -- async bridge ------------------------------------------------------

    # The blocking surface lifted onto a thread, for event-loop code
    # that holds a regular (embedded or HTTP) client.  A server-side
    # event loop should prefer :class:`AsyncClient`, which speaks the
    # wire protocol natively on asyncio streams.

    async def answer_async(self, dataset: str, omq: OMQ, options=None,
                           trace: bool = False, **overrides) -> Answers:
        return await asyncio.to_thread(self.answer, dataset, omq,
                                       options, trace, **overrides)

    async def explain_async(self, omq: OMQ, options=None,
                            dataset: Optional[str] = None,
                            **overrides) -> Dict[str, object]:
        return await asyncio.to_thread(self.explain, omq, options,
                                       dataset, **overrides)

    async def update_async(self, dataset: str,
                           inserts: Iterable[GroundAtom] = (),
                           deletes: Iterable[GroundAtom] = ()
                           ) -> Dict[str, object]:
        return await asyncio.to_thread(self.update, dataset, inserts,
                                       deletes)

    async def stats_async(self) -> Dict[str, object]:
        return await asyncio.to_thread(self.stats)


class AsyncClient:
    """The :class:`Client` surface for asyncio code, over HTTP.

    Speaks the ``repro serve`` JSON protocol on ``asyncio`` streams
    (stdlib only, one connection per request), so hundreds of requests
    can be in flight from one event loop — which is exactly what the
    coalescing server (:mod:`repro.service.aserve`) wants to see.
    Every method mirrors :class:`Client` but is awaitable::

        async with AsyncClient.connect("http://host:8081") as client:
            answers = await client.answer("demo", omq, method="tw")

    Server rejections raise :class:`ServiceError`; a 429 backpressure
    rejection carries ``error.retry_after`` seconds.
    """

    def __init__(self, url: str, timeout: float = 30.0, tenant: str = ""):
        split = urlsplit(url if "//" in url else f"//{url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"AsyncClient speaks plain http, got {url!r}")
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or 80
        self.timeout = timeout
        self.tenant = tenant
        #: Trace ID echoed by the last response (success or error).
        self.last_trace_id: Optional[str] = None

    @classmethod
    def connect(cls, url: str, timeout: float = 30.0,
                tenant: str = "") -> "AsyncClient":
        """A client for the ``repro serve`` JSON protocol at ``url``;
        a non-default ``tenant`` rides as ``X-Repro-Tenant``."""
        return cls(url, timeout=timeout, tenant=tenant)

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self._port}"

    # -- wire --------------------------------------------------------------

    async def _call(self, path: str, payload=None,
                    timeout: Optional[float] = None) -> Dict[str, object]:
        return await asyncio.wait_for(self._call_once(path, payload),
                                      timeout=timeout or self.timeout)

    async def _call_once(self, path: str, payload) -> Dict[str, object]:
        body = b"" if payload is None else json.dumps(payload).encode()
        method = "GET" if payload is None else "POST"
        reader, writer = await asyncio.open_connection(self._host,
                                                       self._port)
        try:
            tenant = (f"X-Repro-Tenant: {self.tenant}\r\n"
                      if self.tenant else "")
            trace_id = current_trace_id()
            # propagate the ambient trace so server-side spans and
            # slow-query log lines correlate with this caller
            trace = (f"{TRACE_HEADER}: {trace_id}\r\n" if trace_id else "")
            head = (f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {self._host}:{self._port}\r\n"
                    f"{tenant}{trace}"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n")
            writer.write(head.encode() + body)
            await writer.drain()
            status, headers, raw = await self._read_response(reader)
            self.last_trace_id = headers.get(TRACE_HEADER)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        try:
            decoded = json.loads(raw.decode()) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": raw.decode(errors="replace")}
        if status >= 400:
            raise ServiceError.from_body(status, decoded, headers)
        return decoded

    @staticmethod
    async def _read_response(reader: asyncio.StreamReader):
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceError("malformed HTTP response from server",
                               status=502, error_type="bad_response")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().title()] = value.strip()
        length = headers.get("Content-Length")
        if length is not None and length.isdigit():
            raw = await reader.readexactly(int(length))
        else:
            raw = await reader.read()
        return status, headers, raw

    # -- surface -----------------------------------------------------------

    async def register_dataset(self, name: str, abox: ABox,
                               replace: bool = False,
                               shards: int = 0) -> None:
        await self._call("/datasets",
                         {"name": name, "data": abox_to_text(abox),
                          "replace": replace, "shards": shards})

    async def unregister_dataset(self, name: str) -> None:
        await self._call("/datasets/drop", {"name": name})

    async def register_tbox(self, name: str, tbox: TBox) -> None:
        await self._call("/tboxes",
                         {"name": name, "tbox": tbox_to_text(tbox)})

    async def datasets(self) -> Tuple[str, ...]:
        return tuple(sorted((await self.stats()).get("datasets", {})))

    async def answer(self, dataset: str, omq: OMQ, options=None,
                     trace: bool = False, **overrides) -> Answers:
        options = AnswerOptions.coerce(options, **overrides)
        body = await self._call("/answer",
                                _request_payload(dataset, omq, options,
                                                 trace=trace))
        return _answers_from_body(body, options)

    async def explain(self, omq: OMQ, options=None,
                      dataset: Optional[str] = None,
                      **overrides) -> Dict[str, object]:
        options = AnswerOptions.coerce(options, **overrides)
        return await self._call("/explain",
                                _request_payload(dataset, omq, options))

    async def update(self, dataset: str,
                     inserts: Iterable[GroundAtom] = (),
                     deletes: Iterable[GroundAtom] = ()
                     ) -> Dict[str, object]:
        return await self._call("/update",
                                {"dataset": dataset,
                                 "insert": _atom_texts(inserts),
                                 "delete": _atom_texts(deletes)})

    async def insert_facts(self, dataset: str,
                           atoms: Iterable[GroundAtom]) -> Dict[str, object]:
        return await self.update(dataset, inserts=atoms)

    async def delete_facts(self, dataset: str,
                           atoms: Iterable[GroundAtom]) -> Dict[str, object]:
        return await self.update(dataset, deletes=atoms)

    # -- standing queries --------------------------------------------------

    async def subscribe(self, dataset: str, omq: OMQ, options=None,
                        **overrides) -> "AsyncSubscription":
        """Register ``omq`` as a standing query; the returned
        :class:`AsyncSubscription` can :meth:`~AsyncSubscription.poll`
        (both servers) or :meth:`~AsyncSubscription.stream` deltas
        over SSE (async server only)::

            sub = await client.subscribe("demo", omq)
            async for delta in sub.stream():
                print(delta.added, delta.removed)
        """
        options = AnswerOptions.coerce(options, **overrides)
        snapshot = await self._call(
            "/subscribe", _request_payload(dataset, omq, options))
        return AsyncSubscription(self, snapshot)

    async def stats(self) -> Dict[str, object]:
        return await self._call("/stats")

    async def close(self) -> None:
        pass

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self) -> str:
        return f"AsyncClient({self.url!r})"


class AsyncSubscription(_SubscriptionState):
    """The asyncio standing-query handle (see :meth:`AsyncClient.subscribe`).

    Two consumption styles over the same local state:

    * :meth:`stream` — an async iterator of
      :class:`~repro.standing.registry.AnswerDelta`, fed by the async
      server's SSE endpoint (``GET /subscribe``); resyncs arrive as a
      single ``resync`` delta carrying the full answer set.
    * :meth:`poll` — one long-poll round trip (works on both servers).
    """

    def __init__(self, client: AsyncClient, snapshot: Dict[str, object]):
        self._client = client
        self._init_state(snapshot)

    async def poll(self, timeout: float = 0.0) -> List[AnswerDelta]:
        """Deltas since the last seen epoch, applied to
        :attr:`answers` (blocking up to ``timeout`` seconds)."""
        body = await self._client._call(
            "/poll", {"subscription": self.subscription_id,
                      "since_epoch": self.epoch, "timeout": timeout},
            timeout=max(self._client.timeout, timeout + 5.0))
        return self._apply_poll(body)

    async def unsubscribe(self) -> None:
        if not self.closed:
            self.closed = True
            await self._client._call(
                "/unsubscribe", {"subscription": self.subscription_id})

    async def stream(self):
        """Async-iterate answer deltas pushed over SSE.

        Ends when the subscription is closed server-side (an
        ``unsubscribe``, a dataset drop, or service shutdown).  Deltas
        already reflected by the snapshot are skipped by epoch, so no
        change is ever seen twice.
        """
        reader, writer = await asyncio.open_connection(
            self._client._host, self._client._port)
        try:
            host = f"{self._client._host}:{self._client._port}"
            tenant = (f"X-Repro-Tenant: {self._client.tenant}\r\n"
                      if self._client.tenant else "")
            writer.write(
                (f"GET /subscribe?subscription={self.subscription_id} "
                 "HTTP/1.1\r\n"
                 f"Host: {host}\r\n"
                 f"{tenant}"
                 "Accept: text/event-stream\r\n"
                 "Connection: close\r\n\r\n").encode())
            await writer.drain()
            status, headers, err_body = await self._read_stream_head(reader)
            if status >= 400:
                try:
                    decoded = json.loads(err_body.decode())
                except Exception:
                    decoded = {"error": err_body.decode(errors="replace")}
                raise ServiceError.from_body(status, decoded, headers)
            async for event, data in self._sse_frames(reader):
                delta = self._decode_event(event, data)
                if delta is None:
                    if event == "closed":
                        self.closed = True
                        return
                    continue
                if self._apply_delta(delta):
                    yield delta
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_stream_head(reader: asyncio.StreamReader):
        """Status + headers (+ error body for non-200s)."""
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceError("malformed HTTP response from server",
                               status=502, error_type="bad_response")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().title()] = value.strip()
        body = b""
        if status >= 400:
            length = headers.get("Content-Length")
            if length is not None and length.isdigit():
                body = await reader.readexactly(int(length))
            else:
                body = await reader.read()
        return status, headers, body

    @staticmethod
    async def _sse_frames(reader: asyncio.StreamReader):
        """``(event, data)`` pairs until the server closes the stream."""
        buffer: List[str] = []
        while True:
            line = await reader.readline()
            if not line:
                return
            text = line.decode().rstrip("\r\n")
            if text:
                buffer.append(text)
                continue
            if buffer:
                yield decode_sse("\n".join(buffer))
                buffer = []

    def _decode_event(self, event: str, data: str) -> Optional[AnswerDelta]:
        """One SSE frame as an :class:`AnswerDelta` (or ``None`` for
        frames that carry no answer change to surface)."""
        try:
            body = json.loads(data) if data else {}
        except json.JSONDecodeError:
            return None
        if event == "delta":
            return AnswerDelta.from_payload(body)
        if event in ("snapshot", "resync"):
            answers = frozenset(tuple(row)
                                for row in body.get("answers", ()))
            epoch = int(body.get("epoch", 0))
            if event == "snapshot" and (epoch <= self.epoch
                                        and answers == self.answers):
                return None  # nothing moved since we subscribed
            return AnswerDelta(epoch=epoch, resync=True, answers=answers)
        return None

    def __repr__(self) -> str:
        return (f"AsyncSubscription({self.subscription_id!r}, "
                f"dataset={self.dataset!r}, epoch={self.epoch}, "
                f"answers={len(self.answers)})")
