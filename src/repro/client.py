"""One client facade over every way to run the query pipeline.

The library grew three front doors — an in-process
:class:`~repro.service.service.OMQService`, the JSON/HTTP server of
:mod:`repro.service.serve`, and bare sessions — each with its own call
shape.  :class:`Client` unifies them behind one surface: the same
``answer`` / ``explain`` / ``update`` / ``stats`` calls work whether
the data lives in this process or behind a URL, always configured by
one :class:`~repro.rewriting.plan.AnswerOptions` and always returning
typed :class:`~repro.rewriting.plan.Answers`.

Usage::

    with Client.local() as client:                  # embedded service
        client.register_dataset("demo", abox)
        client.answer("demo", omq, method="lin")
        client.explain(omq, method="lin")

    with Client.connect("http://host:8080") as client:   # remote
        client.answer("demo", omq)                  # same surface

``Client.wrap(service)`` borrows an existing service (not closed with
the client); text serialisation for the HTTP transport round-trips
through the same ``TBox.parse`` / ``CQ.parse`` / ``ABox.parse`` syntax
the CLI and test suite use.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple
from urllib import request as urllib_request
from urllib.error import HTTPError

from .data.abox import ABox
from .ontology.tbox import TBox
from .queries.cq import CQ
from .rewriting.api import OMQ
from .rewriting.plan import AnswerOptions, Answers

GroundAtom = Tuple[str, Tuple[str, ...]]


def tbox_to_text(tbox: TBox) -> str:
    """``tbox`` in the ``TBox.parse`` surface syntax (round-trips:
    the re-parsed ontology has the same fingerprint)."""
    roles = sorted({role.name for role in tbox.roles})
    lines = []
    if roles:
        lines.append("roles: " + ", ".join(roles))
    lines.extend(str(axiom) for axiom in tbox.user_axioms)
    return "\n".join(lines)


def cq_to_text(cq: CQ) -> str:
    """The CQ body in the ``CQ.parse`` surface syntax (answer
    variables travel separately)."""
    return ", ".join(str(atom) for atom in cq.atoms)


def abox_to_text(abox: ABox) -> str:
    """``abox`` in the ``ABox.parse`` surface syntax."""
    return "\n".join(f"{predicate}({', '.join(args)})"
                     for predicate, args in sorted(abox.atoms()))


def _atom_texts(atoms: Iterable[GroundAtom]) -> List[str]:
    return [f"{predicate}({', '.join(args)})" for predicate, args in atoms]


class _ServiceTransport:
    """The in-process transport: delegates to an ``OMQService``."""

    def __init__(self, service, owned: bool):
        self.service = service
        self._owned = owned

    def register_dataset(self, name: str, abox: ABox,
                         replace: bool = False, shards: int = 0) -> None:
        self.service.register_dataset(name, abox, replace=replace,
                                      shards=shards)

    def register_tbox(self, name: str, tbox: TBox) -> None:
        self.service.register_tbox(name, tbox)

    def datasets(self) -> Tuple[str, ...]:
        return self.service.datasets()

    def answer(self, dataset: str, omq: OMQ,
               options: AnswerOptions) -> Answers:
        result = self.service.answer(dataset, omq, options=options)
        return Answers(answers=result.answers,
                       generated_tuples=result.generated_tuples,
                       relation_sizes=dict(result.relation_sizes),
                       seconds=result.seconds, engine=result.engine,
                       method=result.method,
                       plan_fingerprint=result.plan_fingerprint or "",
                       cached_rewriting=result.cached_rewriting,
                       timed_out=result.timed_out,
                       shards=result.shards)

    def explain(self, omq: OMQ, options: AnswerOptions,
                dataset: Optional[str]) -> Dict[str, object]:
        return self.service.explain(omq, options=options, dataset=dataset)

    def update(self, dataset: str, inserts: Iterable[GroundAtom],
               deletes: Iterable[GroundAtom]) -> Dict[str, object]:
        return self.service.update(dataset, inserts=inserts,
                                   deletes=deletes).as_dict()

    def stats(self) -> Dict[str, object]:
        return self.service.stats()

    def close(self) -> None:
        if self._owned:
            self.service.close()


class _HTTPTransport:
    """The remote transport: speaks the ``repro serve`` JSON protocol."""

    def __init__(self, url: str, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- wire --------------------------------------------------------------

    def _call(self, path: str, payload=None) -> Dict[str, object]:
        url = f"{self.url}{path}"
        if payload is None:
            req = urllib_request.Request(url)
        else:
            req = urllib_request.Request(
                url, data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"})
        try:
            with urllib_request.urlopen(req, timeout=self.timeout) as reply:
                body = json.loads(reply.read().decode())
        except HTTPError as error:
            try:
                message = json.loads(error.read().decode()).get(
                    "error", str(error))
            except Exception:
                message = str(error)
            raise ValueError(message) from None
        return body

    @staticmethod
    def _request_payload(dataset: Optional[str], omq: OMQ,
                         options: AnswerOptions) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "tbox_text": tbox_to_text(omq.tbox),
            "query": cq_to_text(omq.query),
            "answers": list(omq.query.answer_vars),
            "options": options.as_dict(),
        }
        if dataset is not None:
            payload["dataset"] = dataset
        return payload

    # -- surface -----------------------------------------------------------

    def register_dataset(self, name: str, abox: ABox,
                         replace: bool = False, shards: int = 0) -> None:
        self._call("/datasets", {"name": name, "data": abox_to_text(abox),
                                 "replace": replace, "shards": shards})

    def register_tbox(self, name: str, tbox: TBox) -> None:
        self._call("/tboxes", {"name": name, "tbox": tbox_to_text(tbox)})

    def datasets(self) -> Tuple[str, ...]:
        return tuple(sorted(self.stats().get("datasets", {})))

    def answer(self, dataset: str, omq: OMQ,
               options: AnswerOptions) -> Answers:
        body = self._call("/answer",
                          self._request_payload(dataset, omq, options))
        return Answers(
            answers=frozenset(tuple(row) for row in body["answers"]),
            generated_tuples=int(body.get("generated_tuples", 0)),
            seconds=float(body.get("seconds", 0.0)),
            engine=body.get("engine") or "python",
            method=body.get("method", options.method),
            plan_fingerprint=body.get("plan_fingerprint", ""),
            cached_rewriting=bool(body.get("cached_rewriting", False)),
            timed_out=bool(body.get("timed_out", False)),
            shards=int(body.get("shards", 0)))

    def explain(self, omq: OMQ, options: AnswerOptions,
                dataset: Optional[str]) -> Dict[str, object]:
        return self._call("/explain",
                          self._request_payload(dataset, omq, options))

    def update(self, dataset: str, inserts: Iterable[GroundAtom],
               deletes: Iterable[GroundAtom]) -> Dict[str, object]:
        return self._call("/update", {"dataset": dataset,
                                      "insert": _atom_texts(inserts),
                                      "delete": _atom_texts(deletes)})

    def stats(self) -> Dict[str, object]:
        return self._call("/stats")

    def close(self) -> None:
        pass


class Client:
    """The unified front door; see the module docstring.

    Build one with :meth:`local` (embedded service, owned),
    :meth:`wrap` (existing service, borrowed) or :meth:`connect`
    (remote HTTP server).
    """

    def __init__(self, transport):
        self._transport = transport

    @classmethod
    def local(cls, **service_kwargs) -> "Client":
        """A client over a fresh embedded
        :class:`~repro.service.service.OMQService` (closed with the
        client); ``service_kwargs`` pass through (``cache_size``,
        ``max_workers``, ``default_engine``)."""
        from .service.service import OMQService

        return cls(_ServiceTransport(OMQService(**service_kwargs),
                                     owned=True))

    @classmethod
    def wrap(cls, service) -> "Client":
        """A client borrowing an existing service (not closed with the
        client)."""
        return cls(_ServiceTransport(service, owned=False))

    @classmethod
    def connect(cls, url: str, timeout: float = 30.0) -> "Client":
        """A client speaking the ``repro serve`` JSON protocol."""
        return cls(_HTTPTransport(url, timeout=timeout))

    # -- registration ------------------------------------------------------

    def register_dataset(self, name: str, abox: ABox,
                         replace: bool = False, shards: int = 0) -> None:
        """Register a dataset; ``shards >= 2`` serves it scatter-gather
        over a component partition (see :mod:`repro.shard`)."""
        self._transport.register_dataset(name, abox, replace=replace,
                                         shards=shards)

    def register_tbox(self, name: str, tbox: TBox) -> None:
        self._transport.register_tbox(name, tbox)

    def datasets(self) -> Tuple[str, ...]:
        return self._transport.datasets()

    # -- the pipeline ------------------------------------------------------

    def answer(self, dataset: str, omq: OMQ, options=None,
               **overrides) -> Answers:
        """Certain answers to ``omq`` over the named dataset.

        ``options`` / ``overrides`` build one
        :class:`~repro.rewriting.plan.AnswerOptions` (e.g.
        ``client.answer("demo", omq, method="tw", engine="sql")``).
        """
        options = AnswerOptions.coerce(options, **overrides)
        return self._transport.answer(dataset, omq, options)

    def explain(self, omq: OMQ, options=None, dataset: Optional[str] = None,
                **overrides) -> Dict[str, object]:
        """The :meth:`~repro.rewriting.plan.Plan.explain` report for
        ``omq`` under the given options, without evaluating it.

        ``dataset`` is only needed for the data-dependent stages
        (``method="adaptive"`` or ``optimize=True``).
        """
        options = AnswerOptions.coerce(options, **overrides)
        return self._transport.explain(omq, options, dataset)

    # -- updates -----------------------------------------------------------

    def update(self, dataset: str, inserts: Iterable[GroundAtom] = (),
               deletes: Iterable[GroundAtom] = ()) -> Dict[str, object]:
        """Incrementally mutate a dataset (deletions apply first)."""
        return self._transport.update(dataset, inserts, deletes)

    def insert_facts(self, dataset: str,
                     atoms: Iterable[GroundAtom]) -> Dict[str, object]:
        return self.update(dataset, inserts=atoms)

    def delete_facts(self, dataset: str,
                     atoms: Iterable[GroundAtom]) -> Dict[str, object]:
        return self.update(dataset, deletes=atoms)

    # -- stats and lifecycle -----------------------------------------------

    def stats(self) -> Dict[str, object]:
        return self._transport.stats()

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Client({self._transport.__class__.__name__[1:]})"
