"""Structural analysis of NDL queries (Section 3.1).

Implements the notions behind the NL and LOGCFL membership results:
linearity (Theorem 2), weight functions, skinniness and the *skinny
depth* ``sd(Pi, G) = 2 d(Pi, G) + log nu(G) + log e_Pi`` (Lemmas 4-5,
Theorem 6).
"""

from __future__ import annotations

import math
from typing import Dict

from .program import NDLQuery, Program


def is_linear(program: Program) -> bool:
    """True if every clause body has at most one IDB atom."""
    idb = program.idb_predicates
    for clause in program.clauses:
        idb_atoms = [atom for atom in clause.body_literals
                     if atom.predicate in idb]
        if len(idb_atoms) > 1:
            return False
    return True


def is_skinny(program: Program) -> bool:
    """True if every clause body has at most two atoms (the NDL analogue
    of semi-unbounded fan-in circuits)."""
    return all(len(clause.body) <= 2 for clause in program.clauses)


def max_edb_atoms(program: Program) -> int:
    """``e_Pi``: the maximal number of EDB atoms in a clause body."""
    idb = program.idb_predicates
    best = 0
    for clause in program.clauses:
        count = sum(1 for atom in clause.body_literals
                    if atom.predicate not in idb)
        count += len(clause.body_equalities)
        best = max(best, count)
    return best


def minimal_weight_function(program: Program) -> Dict[str, int]:
    """The pointwise-minimal weight function ``nu``.

    ``nu`` maps EDB predicates to 0 and satisfies
    ``nu(Q) >= max(1, sum of nu over each clause body)``; minimality
    follows by induction over the dependence order.
    """
    order = program.topological_order()
    assert order is not None
    nu: Dict[str, int] = {}
    for predicate in program.edb_predicates:
        nu[predicate] = 0
    for predicate in order:
        best = 1
        for clause in program.clauses_for(predicate):
            total = sum(nu.get(atom.predicate, 0)
                        for atom in clause.body_literals)
            best = max(best, total)
        nu[predicate] = max(1, best)
    return nu


def skinny_depth(query: NDLQuery) -> float:
    """``sd(Pi, G)``: ``2 d(Pi, G) + log2 nu(G) + log2 e_Pi``.

    Computed with the minimal weight function, which minimises the
    expression among all weight functions.
    """
    program = query.program
    nu = minimal_weight_function(program)
    goal_weight = max(1, nu.get(query.goal, 1))
    edb = max(1, max_edb_atoms(program))
    return (2 * program.depth(query.goal) + math.log2(goal_weight)
            + math.log2(edb))


def is_skinny_reducible_witness(query: NDLQuery, constant: float,
                                width_bound: int) -> bool:
    """Check the Theorem 6 side conditions for one concrete query:
    ``sd(Pi, G) <= constant * log2 |Pi|`` and ``w(Pi, G) <= width_bound``.

    Used by the tests to confirm that the Log and Tw rewriters produce
    families within a LOGCFL-evaluable fragment.
    """
    size = max(2, query.program.symbol_size())
    return (skinny_depth(query) <= constant * math.log2(size)
            and query.width() <= width_bound)
