"""Nonrecursive-datalog substrate: programs, evaluation, transforms,
magic sets and optimisation."""

from .analysis import (
    is_linear,
    is_skinny,
    max_edb_atoms,
    minimal_weight_function,
    skinny_depth,
)
from .evaluate import EvaluationResult, evaluate, evaluate_on
from .magic import evaluate_magic, is_answer_magic, magic_transform
from .parser import ProgramParseError, parse_program, parse_query
from .optimize import (
    inline_single_definition,
    optimize,
    prune_empty_predicates,
    remove_duplicate_clauses,
)
from .program import ADOM, Clause, Equality, Literal, NDLQuery, Program
from .transform import linear_star_transform, skinny_transform, star_transform

__all__ = [
    "ADOM",
    "Clause",
    "Equality",
    "EvaluationResult",
    "Literal",
    "NDLQuery",
    "Program",
    "evaluate",
    "evaluate_magic",
    "evaluate_on",
    "inline_single_definition",
    "is_answer_magic",
    "is_linear",
    "is_skinny",
    "linear_star_transform",
    "magic_transform",
    "max_edb_atoms",
    "minimal_weight_function",
    "optimize",
    "parse_program",
    "parse_query",
    "ProgramParseError",
    "prune_empty_predicates",
    "remove_duplicate_clauses",
    "skinny_depth",
    "skinny_transform",
    "star_transform",
]
