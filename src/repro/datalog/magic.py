"""Magic-sets transformation for NDL queries.

Appendix D.4 observes that the RDFox version used in the paper's
experiments "simply materialise[d] all the predicates without using
magic sets or optimising programs before execution", and Section 6
lists goal-directed execution among the promising optimisations.  This
module supplies the missing piece: the classical magic-sets rewriting
specialised to *nonrecursive* programs.

For every IDB predicate reachable from the goal we compute the
*adornments* (bound/free patterns) with which it is called; each
adorned predicate ``Q^a`` receives a magic predicate ``magic_Q^a``
collecting the bindings that can actually reach ``Q`` during top-down
evaluation, and every rule for ``Q`` is guarded by it.  Bottom-up
evaluation of the transformed program then materialises only the
*relevant* part of each relation — often orders of magnitude fewer
tuples (``benchmarks/bench_ablation_magic.py``).

The sideways-information-passing strategy is "EDB SIP": inside a
clause, the magic guard and all EDB atoms (plus equalities) pass their
bindings to every IDB atom.  Earlier IDB atoms are deliberately *not*
passed sideways: doing so can make the transformed program recursive
(two calls to the same predicate in one body create a
``magic_Q <-> Q`` cycle), whereas with EDB-only passing every new
dependence edge follows the original acyclic call order, so the result
is again a valid NDL program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..data.abox import ABox
from .evaluate import EvaluationResult, evaluate
from .program import Clause, Equality, Literal, NDLQuery, Program

#: EDB predicate through which callers seed a bound-goal evaluation.
MAGIC_SEED = "__magic_seed__"

Adornment = str  # a string over {'b', 'f'}, one letter per argument


def _adorned_name(predicate: str, adornment: Adornment) -> str:
    return f"{predicate}__{adornment}" if adornment else f"{predicate}__e"


def _magic_name(predicate: str, adornment: Adornment) -> str:
    return f"__magic_{_adorned_name(predicate, adornment)}"


def _bound_args(literal: Literal, adornment: Adornment) -> Tuple[str, ...]:
    return tuple(arg for arg, letter in zip(literal.args, adornment)
                 if letter == "b")


def _close_under_equalities(bound: Set[str],
                            equalities: Sequence[Equality]) -> None:
    """Extend ``bound`` with variables equated to bound ones."""
    changed = True
    while changed:
        changed = False
        for equality in equalities:
            if equality.left in bound and equality.right not in bound:
                bound.add(equality.right)
                changed = True
            elif equality.right in bound and equality.left not in bound:
                bound.add(equality.left)
                changed = True


@dataclass(frozen=True)
class MagicTransform:
    """The result of :func:`magic_transform`.

    ``query`` is the transformed NDL query; ``adornment`` the goal
    adornment it was built for; ``seeded`` tells whether the goal has
    bound positions, in which case evaluation must supply the
    ``__magic_seed__`` relation (see :func:`evaluate_magic`).
    """

    query: NDLQuery
    adornment: Adornment

    @property
    def seeded(self) -> bool:
        return "b" in self.adornment


def magic_transform(query: NDLQuery,
                    adornment: Optional[Adornment] = None) -> MagicTransform:
    """Apply the magic-sets transformation for a goal adornment.

    ``adornment`` defaults to all-free (compute every answer); pass
    ``'b' * len(answer_vars)`` to specialise for answer checking — the
    bound values are then supplied at evaluation time through the
    ``__magic_seed__`` EDB relation.
    """
    program = query.program.restrict_to(query.goal)
    idb = program.idb_predicates
    if adornment is None:
        adornment = "f" * len(query.answer_vars)
    goal_arity = _goal_arity(program, query)
    if len(adornment) != goal_arity:
        raise ValueError(
            f"adornment {adornment!r} does not match the goal arity "
            f"{goal_arity}")
    if set(adornment) - {"b", "f"}:
        raise ValueError(f"adornment must be over 'b'/'f': {adornment!r}")

    clauses: List[Clause] = []
    seen: Set[Tuple[str, Adornment]] = set()
    worklist: List[Tuple[str, Adornment]] = [(query.goal, adornment)]
    while worklist:
        predicate, current = worklist.pop()
        if (predicate, current) in seen:
            continue
        seen.add((predicate, current))
        for clause in program.clauses_for(predicate):
            new_clauses, calls = _transform_clause(clause, current, idb)
            clauses.extend(new_clauses)
            worklist.extend(calls)

    # the seed: an all-free goal is unconditionally relevant, a bound
    # goal receives its binding from the __magic_seed__ EDB relation
    goal_literal = Literal(query.goal,
                           tuple(f"v{i}" for i in range(goal_arity)))
    bound = _bound_args(goal_literal, adornment)
    magic_head = Literal(_magic_name(query.goal, adornment), bound)
    if bound:
        clauses.append(Clause(magic_head,
                              (Literal(MAGIC_SEED, bound),)))
    else:
        clauses.append(Clause(magic_head, ()))

    transformed = NDLQuery(Program(clauses),
                           _adorned_name(query.goal, adornment),
                           query.answer_vars)
    return MagicTransform(transformed, adornment)


def _goal_arity(program: Program, query: NDLQuery) -> int:
    for clause in program.clauses_for(query.goal):
        return len(clause.head.args)
    return len(query.answer_vars)


def _transform_clause(clause: Clause, adornment: Adornment,
                      idb: FrozenSet[str]
                      ) -> Tuple[List[Clause], List[Tuple[str, Adornment]]]:
    """The guarded rule plus the magic rules for one clause."""
    head = clause.head
    equalities = clause.body_equalities
    edb_atoms = [atom for atom in clause.body_literals
                 if atom.predicate not in idb]
    idb_atoms = [atom for atom in clause.body_literals
                 if atom.predicate in idb]

    magic_guard = Literal(_magic_name(head.predicate, adornment),
                          _bound_args(head, adornment))
    bound: Set[str] = set(magic_guard.args)
    for atom in edb_atoms:
        bound.update(atom.args)
    _close_under_equalities(bound, equalities)

    clauses: List[Clause] = []
    calls: List[Tuple[str, Adornment]] = []
    adorned_body: List[object] = [magic_guard]
    adorned_body.extend(edb_atoms)
    adorned_body.extend(equalities)
    for atom in idb_atoms:
        # adornments reflect only what the magic rule below can really
        # bind (guard + EDB + equalities); marking sibling-IDB-bound
        # positions as 'b' would force __adom__ padding in the magic
        # rule and, worse, could make the program recursive
        sub_adornment = "".join(
            "b" if arg in bound else "f" for arg in atom.args)
        calls.append((atom.predicate, sub_adornment))
        sub_bound = _bound_args(atom, sub_adornment)
        magic_body: List[object] = [magic_guard]
        magic_body.extend(edb_atoms)
        magic_body.extend(equalities)
        clauses.append(Clause(
            Literal(_magic_name(atom.predicate, sub_adornment), sub_bound),
            tuple(magic_body)))
        adorned_body.append(
            Literal(_adorned_name(atom.predicate, sub_adornment),
                    atom.args))
    clauses.append(Clause(
        Literal(_adorned_name(head.predicate, adornment), head.args),
        tuple(adorned_body)))
    return clauses, calls


def evaluate_magic(query: NDLQuery, abox: ABox,
                   candidate: Optional[Tuple[str, ...]] = None,
                   extra_relations=None) -> EvaluationResult:
    """Evaluate with magic sets: all answers, or check one candidate.

    Without ``candidate`` this computes the same answers as
    :func:`repro.datalog.evaluate.evaluate` but materialises only the
    goal-relevant tuples.  With ``candidate`` the goal is fully bound,
    which prunes much more aggressively; the result then contains the
    candidate iff it is an answer.
    """
    if candidate is None:
        transform = magic_transform(query)
        return evaluate(transform.query, abox,
                        extra_relations=extra_relations)
    if len(candidate) != len(query.answer_vars):
        raise ValueError("candidate arity mismatch")
    transform = magic_transform(query, "b" * len(query.answer_vars))
    relations = dict(extra_relations or {})
    relations[MAGIC_SEED] = {tuple(candidate)}
    return evaluate(transform.query, abox, extra_relations=relations)


def is_answer_magic(query: NDLQuery, abox: ABox,
                    candidate: Tuple[str, ...]) -> bool:
    """Goal-directed membership check for one candidate tuple."""
    result = evaluate_magic(query, abox, candidate=candidate)
    return tuple(candidate) in result.answers
