"""Nonrecursive datalog (NDL) programs and queries (Section 2).

A datalog program is a finite set of clauses
``gamma_0 <- gamma_1 & ... & gamma_m`` whose ``gamma_i`` are predicate
atoms or equalities; it is *nonrecursive* when the dependence graph of
its IDB predicates is acyclic.  An *NDL query* is a pair
``(Pi, G(x))``; following Section 3.1 all our queries are *ordered*,
with the answer variables ``x`` acting as parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

ADOM = "__adom__"  # the active-domain EDB predicate (the paper's ``T(x)``)


@dataclass(frozen=True)
class Literal:
    """An atom ``Q(args)`` in a clause (args are variable names)."""

    predicate: str
    args: Tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(self.args)})"

    @property
    def variables(self) -> FrozenSet[str]:
        return frozenset(self.args)

    def rename(self, mapping: Dict[str, str]) -> "Literal":
        return Literal(self.predicate,
                       tuple(mapping.get(arg, arg) for arg in self.args))


@dataclass(frozen=True)
class Equality:
    """An equality body atom ``left = right``."""

    left: str
    right: str

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"

    @property
    def variables(self) -> FrozenSet[str]:
        return frozenset((self.left, self.right))

    def rename(self, mapping: Dict[str, str]) -> "Equality":
        return Equality(mapping.get(self.left, self.left),
                        mapping.get(self.right, self.right))


BodyAtom = object  # Literal | Equality


@dataclass(frozen=True)
class Clause:
    """A Horn clause ``head <- body``.

    Every head variable must occur in the body (range restriction); the
    :class:`Program` constructor adds active-domain atoms for head
    variables that would otherwise be unbound.
    """

    head: Literal
    body: Tuple[BodyAtom, ...]

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} <- " + " & ".join(str(b) for b in self.body)

    @property
    def body_literals(self) -> List[Literal]:
        return [atom for atom in self.body if isinstance(atom, Literal)]

    @property
    def body_equalities(self) -> List[Equality]:
        return [atom for atom in self.body if isinstance(atom, Equality)]

    @property
    def variables(self) -> FrozenSet[str]:
        names: Set[str] = set(self.head.args)
        for atom in self.body:
            names |= atom.variables
        return frozenset(names)


class Program:
    """An NDL program: clauses plus the induced IDB/EDB split.

    Construction checks nonrecursiveness and repairs range restriction
    by adding ``__adom__`` atoms for unbound head variables.
    """

    def __init__(self, clauses: Iterable[Clause]):
        self.clauses: List[Clause] = [self._range_restrict(clause)
                                      for clause in clauses]
        self._by_head: Dict[str, List[Clause]] = {}
        for clause in self.clauses:
            self._by_head.setdefault(clause.head.predicate, []).append(clause)
        self._check_nonrecursive()

    @staticmethod
    def _range_restrict(clause: Clause) -> Clause:
        bound: Set[str] = set()
        for atom in clause.body:
            if isinstance(atom, Literal):
                bound |= atom.variables
        # an equality binds a variable when its other side is bound; close off
        changed = True
        while changed:
            changed = False
            for eq in clause.body:
                if isinstance(eq, Equality):
                    if eq.left in bound and eq.right not in bound:
                        bound.add(eq.right)
                        changed = True
                    elif eq.right in bound and eq.left not in bound:
                        bound.add(eq.left)
                        changed = True
        unbound = [v for v in dict.fromkeys(clause.head.args)
                   if v not in bound]
        for eq in clause.body_equalities:
            for v in (eq.left, eq.right):
                if v not in bound and v not in unbound:
                    unbound.append(v)
        if not unbound:
            return clause
        extra = tuple(Literal(ADOM, (v,)) for v in unbound)
        return Clause(clause.head, clause.body + extra)

    # -- structure ---------------------------------------------------------

    @property
    def idb_predicates(self) -> FrozenSet[str]:
        return frozenset(self._by_head)

    @property
    def edb_predicates(self) -> FrozenSet[str]:
        used = {atom.predicate
                for clause in self.clauses
                for atom in clause.body_literals}
        return frozenset(used - self.idb_predicates)

    def clauses_for(self, predicate: str) -> List[Clause]:
        return list(self._by_head.get(predicate, ()))

    def dependence_graph(self) -> Dict[str, Set[str]]:
        """``Q -> {P : Q depends on P}`` restricted to IDB predicates."""
        graph: Dict[str, Set[str]] = {p: set() for p in self._by_head}
        for clause in self.clauses:
            for atom in clause.body_literals:
                if atom.predicate in self._by_head:
                    graph[clause.head.predicate].add(atom.predicate)
        return graph

    def _check_nonrecursive(self) -> None:
        order = self.topological_order()
        if order is None:
            raise ValueError("program is recursive (dependence cycle)")

    def topological_order(self) -> Optional[List[str]]:
        """IDB predicates ordered so dependencies come first, or ``None``
        if the dependence graph has a cycle."""
        graph = self.dependence_graph()
        state: Dict[str, int] = {}
        order: List[str] = []
        for start in sorted(graph):
            if state.get(start, 0):
                continue
            stack = [(start, iter(sorted(graph[start])))]
            state[start] = 1
            while stack:
                node, successors = stack[-1]
                advanced = False
                for succ in successors:
                    mark = state.get(succ, 0)
                    if mark == 1:
                        return None
                    if mark == 0:
                        state[succ] = 1
                        stack.append((succ, iter(sorted(graph[succ]))))
                        advanced = True
                        break
                if not advanced:
                    state[node] = 2
                    order.append(node)
                    stack.pop()
        return order

    def depth(self, goal: str) -> int:
        """``d(Pi, G)``: the longest dependence path from ``goal``."""
        graph = self.dependence_graph()
        memo: Dict[str, int] = {}

        def longest(node: str) -> int:
            if node not in memo:
                memo[node] = 1 + max(
                    (longest(succ) for succ in graph.get(node, ())),
                    default=-1)
            return memo[node]

        if goal not in graph:
            return 0
        return longest(goal)

    def restrict_to(self, goal: str) -> "Program":
        """The subprogram of clauses reachable from ``goal``."""
        graph = self.dependence_graph()
        reachable = {goal}
        stack = [goal]
        while stack:
            node = stack.pop()
            for succ in graph.get(node, ()):
                if succ not in reachable:
                    reachable.add(succ)
                    stack.append(succ)
        return Program([clause for clause in self.clauses
                        if clause.head.predicate in reachable])

    # -- equality elimination ------------------------------------------------

    def normalize_equalities(self) -> "Program":
        """An equivalent program without equality atoms, obtained by
        unifying the variables each equality identifies (clause-local)."""
        new_clauses = []
        for clause in self.clauses:
            equalities = clause.body_equalities
            if not equalities:
                new_clauses.append(clause)
                continue
            parent: Dict[str, str] = {}

            def find(v: str) -> str:
                parent.setdefault(v, v)
                while parent[v] != v:
                    parent[v] = parent[parent[v]]
                    v = parent[v]
                return v

            for eq in equalities:
                left, right = find(eq.left), find(eq.right)
                if left != right:
                    # prefer keeping head variables as representatives
                    if right in clause.head.args and (
                            left not in clause.head.args):
                        left, right = right, left
                    parent[right] = left
            mapping = {v: find(v) for v in clause.variables}
            head = clause.head.rename(mapping)
            body = tuple(atom.rename(mapping)
                         for atom in clause.body
                         if isinstance(atom, Literal))
            new_clauses.append(Clause(head, body))
        return Program(new_clauses)

    # -- sizes -----------------------------------------------------------------

    def __len__(self) -> int:
        """The number of clauses (the size measure of Figure 2/Table 1)."""
        return len(self.clauses)

    def symbol_size(self) -> int:
        """``|Pi|``: the number of predicate/variable symbols."""
        total = 0
        for clause in self.clauses:
            total += 1 + len(clause.head.args)
            for atom in clause.body:
                if isinstance(atom, Literal):
                    total += 1 + len(atom.args)
                else:
                    total += 2
        return total

    def __str__(self) -> str:
        return "\n".join(str(clause) for clause in self.clauses)

    def __repr__(self) -> str:
        return (f"Program({len(self.clauses)} clauses, "
                f"{len(self.idb_predicates)} IDB predicates)")


@dataclass(frozen=True)
class NDLQuery:
    """An NDL query ``(Pi, G(x))`` with the parameter (answer) variables.

    ``answer_vars`` are the parameters of the goal predicate in the
    paper's sense of *ordered* NDL queries; rewriters use the CQ's
    answer variables here.
    """

    program: Program
    goal: str
    answer_vars: Tuple[str, ...] = ()

    def width(self) -> int:
        """``w(Pi, G)``: maximal number of non-parameter variables in a
        clause (parameters are the answer variables)."""
        parameters = set(self.answer_vars)
        return max((len(clause.variables - parameters)
                    for clause in self.program.clauses), default=0)

    def depth(self) -> int:
        return self.program.depth(self.goal)

    def __len__(self) -> int:
        return len(self.program)

    def __str__(self) -> str:
        head = f"{self.goal}({', '.join(self.answer_vars)})"
        return f"goal {head}\n{self.program}"
