"""NDL program optimisation.

Section 6 points to "optimisation techniques for removing redundant
rules or sub-queries from rewritings [53, 50, 28, 39] or exploiting the
emptiness of certain predicates [59]"; Appendix D.4 hand-optimises the
Tw rewriting into ``Tw*`` by inlining predicates "defined by a single
rule and [occurring] not more than twice in the bodies of the rules",
noting that "this substitution could be done automatically by a clever
NDL engine, but [is] not performed by RDFox".  This module is that
clever layer:

* :func:`prune_empty_predicates` — emptiness-aware pruning: clauses
  using a predicate that is provably empty for a given data signature
  are dropped (the [59] optimisation);
* :func:`remove_duplicate_clauses` — syntactic duplicates modulo
  variable renaming and body reordering;
* :func:`inline_single_definition` — the generalised Tw* inlining;
* :func:`optimize` — the full pipeline.

All transformations preserve the answers over every data instance
(checked by differential property tests in ``tests/test_optimize.py``);
``prune_empty_predicates`` preserves answers over every instance
*within the given signature*.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..data.abox import ABox
from .program import ADOM, Clause, Literal, NDLQuery, Program


def nonempty_signature(abox: ABox, include_adom: bool = True
                       ) -> FrozenSet[str]:
    """The predicates with at least one fact in ``abox``.

    ``__adom__`` is included whenever the data has any individual at
    all — it is never empty then, whatever the program.
    """
    names: Set[str] = set(abox.unary_predicates) | set(abox.binary_predicates)
    if include_adom and abox.individuals:
        names.add(ADOM)
    return frozenset(names)


def prune_empty_predicates(query: NDLQuery,
                           nonempty_edb: Iterable[str]) -> NDLQuery:
    """Drop every clause that mentions a provably empty predicate.

    ``nonempty_edb`` lists the EDB predicates that may hold facts (use
    :func:`nonempty_signature`); an IDB predicate is possibly nonempty
    iff at least one of its clauses survives.  Over any data instance
    whose nonempty predicates are within ``nonempty_edb``, the pruned
    query has exactly the same answers.
    """
    program = query.program
    idb = program.idb_predicates
    available: Set[str] = set(nonempty_edb)
    order = program.topological_order()
    assert order is not None
    kept: List[Clause] = []
    for predicate in order:
        survivors = [
            clause for clause in program.clauses_for(predicate)
            if all(atom.predicate in available
                   for atom in clause.body_literals)]
        if survivors:
            available.add(predicate)
            kept.extend(survivors)
    if query.goal not in available and query.goal not in idb:
        # goal is an EDB predicate: nothing to prune
        return query
    pruned = NDLQuery(Program(kept), query.goal, query.answer_vars)
    return _restrict(pruned)


def _restrict(query: NDLQuery) -> NDLQuery:
    return NDLQuery(query.program.restrict_to(query.goal),
                    query.goal, query.answer_vars)


# -- duplicate elimination ------------------------------------------------


def _canonical_clause(clause: Clause) -> Tuple:
    """A renaming- and body-order-invariant key for a clause.

    Variables are renamed in order of first occurrence along the head
    followed by the body sorted on a renaming-independent skeleton;
    equalities are normalised as unordered pairs.  Two clauses with the
    same key are identical up to variable names and body order.
    """
    literals = sorted(
        clause.body_literals,
        key=lambda atom: (atom.predicate, len(atom.args),
                          tuple(clause.head.args.index(a)
                                if a in clause.head.args else -1
                                for a in atom.args)))
    naming: Dict[str, int] = {}

    def rank(variable: str) -> int:
        if variable not in naming:
            naming[variable] = len(naming)
        return naming[variable]

    head_key = (clause.head.predicate,
                tuple(rank(v) for v in clause.head.args))
    body_key = tuple((atom.predicate, tuple(rank(v) for v in atom.args))
                     for atom in literals)
    eq_key = frozenset(
        frozenset((rank(eq.left), rank(eq.right)))
        for eq in clause.body_equalities)
    return (head_key, body_key, eq_key)


def remove_duplicate_clauses(query: NDLQuery) -> NDLQuery:
    """Remove clauses that duplicate an earlier clause of the same
    predicate up to variable renaming and body reordering."""
    seen: Set[Tuple] = set()
    kept: List[Clause] = []
    for clause in query.program.clauses:
        key = _canonical_clause(clause)
        if key in seen:
            continue
        seen.add(key)
        kept.append(clause)
    return NDLQuery(Program(kept), query.goal, query.answer_vars)


# -- Tw*-style inlining -----------------------------------------------------


def _usage_counts(program: Program) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for clause in program.clauses:
        for atom in clause.body_literals:
            counts[atom.predicate] = counts.get(atom.predicate, 0) + 1
    return counts


def _inline_body(inlinable: Dict[str, Clause], call: Literal,
                 counter: "itertools.count") -> List[object]:
    """The definition body with head variables bound to the call's
    arguments and all other variables freshened.

    Atoms of the substituted body that reference another inlinable
    predicate are expanded recursively — their definitions are about to
    be removed, so every call site must be resolved now.  Recursion
    terminates because the program is nonrecursive.
    """
    definition = inlinable[call.predicate]
    mapping: Dict[str, str] = dict(zip(definition.head.args, call.args))
    suffix = f"_i{next(counter)}"
    body: List[object] = []
    for atom in definition.body:
        renamed = atom.rename({
            variable: mapping.get(variable, variable + suffix)
            for variable in atom.variables})
        if isinstance(renamed, Literal) and renamed.predicate in inlinable:
            body.extend(_inline_body(inlinable, renamed, counter))
        else:
            body.append(renamed)
    return body


def inline_single_definition(query: NDLQuery, max_uses: int = 2,
                             max_passes: int = 10) -> NDLQuery:
    """The Appendix D.4 ``Tw*`` optimisation, generalised.

    Every IDB predicate (other than the goal) that is defined by a
    single clause and occurs at most ``max_uses`` times in clause
    bodies is substituted into its callers; passes repeat until a
    fixpoint (or ``max_passes``), so chains of single-use predicates
    collapse completely.  Unlike
    :func:`repro.datalog.transform.inline_edb_leaves`, definitions may
    themselves call IDB predicates.
    """
    current = query
    for _ in range(max_passes):
        program = current.program
        counts = _usage_counts(program)
        inlinable: Dict[str, Clause] = {}
        for predicate in program.idb_predicates:
            if predicate == current.goal:
                continue
            defining = program.clauses_for(predicate)
            if len(defining) != 1:
                continue
            if counts.get(predicate, 0) > max_uses:
                continue
            # do not inline a definition into itself (cannot happen in
            # an NDL program, but keep the guard local and obvious)
            if any(atom.predicate == predicate
                   for atom in defining[0].body_literals):
                continue
            inlinable[predicate] = defining[0]
        if not inlinable:
            return current
        counter = itertools.count()
        clauses: List[Clause] = []
        for clause in program.clauses:
            if clause.head.predicate in inlinable:
                continue
            body: List[object] = []
            for atom in clause.body:
                if isinstance(atom, Literal) and atom.predicate in inlinable:
                    body.extend(_inline_body(inlinable, atom, counter))
                else:
                    body.append(atom)
            clauses.append(Clause(clause.head, tuple(body)))
        current = NDLQuery(Program(clauses), current.goal,
                           current.answer_vars)
    return current


# -- the pipeline -------------------------------------------------------------


def optimize(query: NDLQuery, abox: Optional[ABox] = None,
             inline: bool = True, max_uses: int = 2) -> NDLQuery:
    """The full optimisation pipeline.

    1. restrict to the clauses reachable from the goal;
    2. with ``abox``, prune clauses over predicates empty in the data
       (answers are then only guaranteed for instances over the same
       nonempty signature — re-run after data updates);
    3. drop duplicate clauses;
    4. with ``inline``, apply the generalised Tw* inlining.
    """
    current = _restrict(query)
    if abox is not None:
        current = prune_empty_predicates(current,
                                         nonempty_signature(abox))
    current = remove_duplicate_clauses(current)
    if inline:
        current = inline_single_definition(current, max_uses=max_uses)
    return _restrict(current)
