"""A text format for NDL programs and queries.

The syntax is exactly what :class:`~repro.datalog.program.Program`
prints: one clause per line, ``head <- atom & atom & ...`` with
equalities written ``x = y``, facts written ``head.``, and ``#``
comments.  An optional ``goal G(x, y)`` line turns the program into an
:class:`~repro.datalog.program.NDLQuery` (this is also the first line
of ``NDLQuery.__str__``, so printing and parsing round-trip).

Example::

    goal G(x)
    G(x) <- R(x, y) & Q(y)
    Q(y) <- A(y)
    Q(y) <- B(y) & y = z & C(z)
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .program import Clause, Equality, Literal, NDLQuery, Program

_ATOM = re.compile(r"^([A-Za-z_][\w'\-]*)\s*\(\s*([^()]*)\s*\)$")
_EQUALITY = re.compile(r"^([\w'\-]+)\s*=\s*([\w'\-]+)$")
_GOAL = re.compile(r"^goal\s+(.+)$")


class ProgramParseError(ValueError):
    """Raised on malformed program text, with the offending line."""

    def __init__(self, message: str, line: str):
        super().__init__(f"{message}: {line!r}")
        self.line = line


def _parse_literal(text: str, line: str) -> Literal:
    match = _ATOM.match(text.strip())
    if not match:
        raise ProgramParseError(f"cannot parse atom {text!r}", line)
    predicate, arg_text = match.groups()
    args = tuple(part.strip() for part in arg_text.split(",")
                 if part.strip()) if arg_text.strip() else ()
    return Literal(predicate, args)


def _parse_body_atom(text: str, line: str):
    text = text.strip()
    equality = _EQUALITY.match(text)
    if equality and "(" not in text:
        return Equality(equality.group(1), equality.group(2))
    return _parse_literal(text, line)


def _parse_clause(line: str) -> Clause:
    if "<-" in line:
        head_text, body_text = line.split("<-", 1)
        body = tuple(_parse_body_atom(part, line)
                     for part in body_text.split("&"))
    else:
        head_text = line.rstrip(".")
        body = ()
    return Clause(_parse_literal(head_text, line), body)


def parse_program(text: str) -> Program:
    """Parse a program (no ``goal`` line)."""
    program, goal = _parse(text)
    if goal is not None:
        raise ProgramParseError(
            "unexpected goal line; use parse_query", "goal ...")
    return program


def parse_query(text: str,
                goal: Optional[str] = None,
                answer_vars: Tuple[str, ...] = ()) -> NDLQuery:
    """Parse an NDL query.

    The goal and its parameters come from a ``goal G(x, ...)`` line in
    the text, or from the ``goal``/``answer_vars`` arguments; the
    in-text line wins when both are present.
    """
    program, goal_literal = _parse(text)
    if goal_literal is not None:
        return NDLQuery(program, goal_literal.predicate, goal_literal.args)
    if goal is None:
        raise ProgramParseError("no goal line and no goal argument", text)
    return NDLQuery(program, goal, tuple(answer_vars))


def _parse(text: str) -> Tuple[Program, Optional[Literal]]:
    clauses: List[Clause] = []
    goal: Optional[Literal] = None
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        goal_match = _GOAL.match(line)
        if goal_match:
            if goal is not None:
                raise ProgramParseError("duplicate goal line", raw)
            goal = _parse_literal(goal_match.group(1), raw)
            continue
        clauses.append(_parse_clause(line))
    return Program(clauses), goal
