"""Bottom-up evaluation of NDL queries over data instances.

This is the library's stand-in for the RDFox engine used in the paper's
experiments: every IDB predicate is materialised once, in dependence
order, with no magic sets or program optimisation — exactly the
behaviour Appendix D.4 attributes to RDFox.  Joins are left-deep hash
joins ordered by bound-prefix selectivity, with eager projection of
dead variables.

Evaluation runs over a :class:`repro.engine.database.Database`:
constants are interned to integers and EDB hash indexes are memoised on
the database, so answering many queries over one instance (the
Tables 3-5 workload) only loads and indexes the data once.  Use
:func:`evaluate` for one-shot calls and :func:`evaluate_on` (or the
higher-level :class:`repro.rewriting.api.AnswerSession`) to share a
database across queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from ..data.abox import ABox
from .program import Clause, Literal, NDLQuery

Row = Tuple[str, ...]
Relation = Set[Row]

#: Int-coded rows as stored by :class:`repro.engine.database.Database`.
IntRow = Tuple[int, ...]
IntRelation = Set[IntRow]


@dataclass
class EvaluationResult:
    """Answers plus the statistics reported in Tables 3-5."""

    answers: FrozenSet[Row]
    generated_tuples: int
    relation_sizes: Dict[str, int] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.answers)

    def __len__(self) -> int:
        return len(self.answers)


def evaluate(query: NDLQuery, abox: ABox,
             extra_relations: Optional[Mapping[str, Relation]] = None
             ) -> EvaluationResult:
    """Evaluate ``(Pi, G)`` over ``abox`` and return the goal relation.

    ``generated_tuples`` counts the materialised IDB facts (the paper's
    "number of generated tuples" columns).  ``extra_relations`` supplies
    additional EDB relations of arbitrary arity (used by the OBDA
    mapping layer for wide source schemas); their constants join the
    active domain.

    This one-shot form loads ``abox`` into a fresh
    :class:`~repro.engine.database.Database` every call; amortise that
    over many queries with :func:`evaluate_on`.
    """
    from ..engine.database import Database

    return evaluate_on(query, Database(abox, extra_relations))


def evaluate_on(query: NDLQuery, database) -> EvaluationResult:
    """Evaluate ``(Pi, G)`` over an already-loaded ``database``.

    The database's constants, relations and EDB indexes are reused
    verbatim; only the IDB relations of this query are materialised
    (and discarded afterwards), so repeated calls over one database
    never re-load or re-index the data.
    """
    program = query.program.restrict_to(query.goal)
    order = program.topological_order()
    assert order is not None  # Program construction guarantees this
    pool = _RelationPool(database)
    sizes: Dict[str, int] = {}
    for predicate in order:
        rows: IntRelation = set()
        for clause in program.clauses_for(predicate):
            rows |= _evaluate_clause(clause, pool)
        pool.derived[predicate] = rows
        sizes[predicate] = len(rows)
    goal_rows = pool.relation(query.goal)
    return EvaluationResult(frozenset(database.decode_rows(goal_rows)),
                            sum(sizes.values()), sizes)


class _RelationPool:
    """Resolves predicates to relations and hash indexes.

    EDB lookups go to the shared :class:`Database` (whose indexes are
    memoised across queries); IDB relations materialised by the current
    evaluation shadow same-named EDB relations, with indexes cached for
    this evaluation only — an IDB relation is written exactly once (in
    dependence order), so its indexes never go stale.
    """

    def __init__(self, database):
        self.database = database
        self.derived: Dict[str, IntRelation] = {}
        self._idb_indexes: Dict[Tuple[str, Tuple[int, ...]],
                                Dict[IntRow, Tuple[IntRow, ...]]] = {}

    def relation(self, predicate: str) -> IntRelation:
        derived = self.derived.get(predicate)
        if derived is not None:
            return derived
        return self.database.relation(predicate)

    def size(self, predicate: str) -> int:
        return len(self.relation(predicate))

    def index(self, predicate: str, positions: Tuple[int, ...]
              ) -> Dict[IntRow, Tuple[IntRow, ...]]:
        if predicate not in self.derived:
            return self.database.index(predicate, positions)
        key = (predicate, positions)
        index = self._idb_indexes.get(key)
        if index is None:
            from ..engine.database import build_index

            index = build_index(self.derived[predicate], positions)
            self._idb_indexes[key] = index
        return index

    def distinct_keys(self, predicate: str,
                      positions: Tuple[int, ...]) -> int:
        return len(self.index(predicate, positions))


def _equality_mapping(clause: Clause) -> Dict[str, str]:
    """Union-find over the clause's equalities, preferring head variables
    as class representatives."""
    parent: Dict[str, str] = {}

    def find(v: str) -> str:
        parent.setdefault(v, v)
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    head_vars = set(clause.head.args)
    for eq in clause.body_equalities:
        left, right = find(eq.left), find(eq.right)
        if left == right:
            continue
        if right in head_vars and left not in head_vars:
            left, right = right, left
        parent[right] = left
    return {v: find(v) for v in parent}


def _tuple_getter(positions: List[int]) -> Callable:
    """A function projecting a row onto ``positions`` (always a tuple)."""
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    return itemgetter(*positions)


def _key_getter(positions: List[int]) -> Callable:
    """A function building an index-probe key from a row: the bare value
    for a single position, a tuple otherwise (the
    :func:`repro.engine.database.build_index` key convention)."""
    if len(positions) == 1:
        return itemgetter(positions[0])
    return itemgetter(*positions)


#: Multiplier applied to the estimated output of a cross product so the
#: planner only resorts to one when no connected atom remains.
_CROSS_PRODUCT_PENALTY = 1 << 20


def _fanout(atom: Literal, bound: Set[str],
            pool: _RelationPool) -> Tuple[float, int]:
    """Estimated number of matches per input row when joining ``atom``
    next, given the variables in ``bound`` are already available.

    The estimate is ``|R| / distinct-keys(R, bound positions)`` — the
    average bucket size of the hash index the join would probe.  The
    index is the same one the join then uses, so costing an atom and
    executing it share one memoised structure.  Atoms with no bound
    variable are cross products and are heavily penalised.  The
    secondary component breaks ties towards smaller relations.
    """
    size = pool.size(atom.predicate)
    if size == 0:
        # an empty relation empties the join: take it immediately
        return (-1.0, 0)
    bound_positions = tuple(i for i, arg in enumerate(atom.args)
                            if arg in bound)
    if not bound_positions:
        return (float(size) * _CROSS_PRODUCT_PENALTY, size)
    distinct = pool.distinct_keys(atom.predicate, bound_positions)
    return (size / max(distinct, 1), size)


def _evaluate_clause(clause: Clause, pool: _RelationPool) -> IntRelation:
    mapping = _equality_mapping(clause)
    head = clause.head.rename(mapping)
    atoms = [atom.rename(mapping) for atom in clause.body_literals]
    if not atoms:
        # a fact: only possible for nullary heads (range restriction
        # would have added __adom__ atoms otherwise)
        return {()} if not head.args else set()

    remaining = list(atoms)
    schema: List[str] = []
    rows: List[IntRow] = [()]
    while remaining:
        bound = set(schema)
        atom = min(remaining, key=lambda a: _fanout(a, bound, pool))
        remaining.remove(atom)
        if not pool.size(atom.predicate):
            return set()
        positions = {v: i for i, v in enumerate(schema)}
        bound_positions = tuple(i for i, arg in enumerate(atom.args)
                                if arg in positions)
        # detect repeated variables inside the atom, e.g. P(x, x)
        first_seen: Dict[str, int] = {}
        same_as: List[Optional[int]] = []
        for i, arg in enumerate(atom.args):
            same_as.append(first_seen.get(arg))
            first_seen.setdefault(arg, i)
        repeats = [(i, j) for i, j in enumerate(same_as) if j is not None]
        new_vars = [arg for i, arg in enumerate(atom.args)
                    if arg not in positions and first_seen[arg] == i]
        # project away variables that neither the head nor any remaining
        # body atom will ever look at again
        keep = set(head.args)
        for later in remaining:
            keep.update(later.args)
        out_schema = [v for v in schema + new_vars if v in keep]
        # the output tuple is a projection of row + match concatenated
        width = len(schema)
        project = _tuple_getter([
            positions[v] if v in positions else width + first_seen[v]
            for v in out_schema])
        out_rows: Set[IntRow] = set()
        add = out_rows.add
        if bound_positions:
            index = pool.index(atom.predicate, bound_positions)
            probe = _key_getter([positions[atom.args[i]]
                                 for i in bound_positions])
            lookup = index.get
            if repeats:
                for row in rows:
                    for match in lookup(probe(row), ()):
                        if any(match[i] != match[j] for i, j in repeats):
                            continue
                        add(project(row + match))
            else:
                for row in rows:
                    matches = lookup(probe(row))
                    if matches:
                        for match in matches:
                            add(project(row + match))
        else:
            matches = [match for match in pool.relation(atom.predicate)
                       if not any(match[i] != match[j]
                                  for i, j in repeats)]
            for row in rows:
                for match in matches:
                    add(project(row + match))
        schema = out_schema
        rows = list(out_rows)
        if not rows:
            return set()

    positions = {v: i for i, v in enumerate(schema)}
    head_project = _tuple_getter([positions[arg] for arg in head.args])
    return {head_project(row) for row in rows}
