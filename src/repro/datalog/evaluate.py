"""Bottom-up evaluation of NDL queries over data instances.

This is the library's stand-in for the RDFox engine used in the paper's
experiments: every IDB predicate is materialised once, in dependence
order, with no magic sets or program optimisation — exactly the
behaviour Appendix D.4 attributes to RDFox.  Joins are left-deep hash
joins with greedy atom ordering and eager projection of dead variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..data.abox import ABox
from .program import ADOM, Clause, Equality, Literal, NDLQuery, Program

Row = Tuple[str, ...]
Relation = Set[Row]


@dataclass
class EvaluationResult:
    """Answers plus the statistics reported in Tables 3-5."""

    answers: FrozenSet[Row]
    generated_tuples: int
    relation_sizes: Dict[str, int] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.answers)

    def __len__(self) -> int:
        return len(self.answers)


def edb_relations(abox: ABox) -> Dict[str, Relation]:
    """The EDB relations of a data instance, including the active domain."""
    relations: Dict[str, Relation] = {}
    for predicate in abox.unary_predicates:
        relations[predicate] = {(c,) for c in abox.unary(predicate)}
    for predicate in abox.binary_predicates:
        relations[predicate] = set(abox.binary(predicate))
    relations[ADOM] = {(c,) for c in abox.individuals}
    return relations


def evaluate(query: NDLQuery, abox: ABox,
             extra_relations: Optional[Dict[str, Relation]] = None
             ) -> EvaluationResult:
    """Evaluate ``(Pi, G)`` over ``abox`` and return the goal relation.

    ``generated_tuples`` counts the materialised IDB facts (the paper's
    "number of generated tuples" columns).  ``extra_relations`` supplies
    additional EDB relations of arbitrary arity (used by the OBDA
    mapping layer for wide source schemas); their constants join the
    active domain.
    """
    program = query.program.restrict_to(query.goal)
    relations = edb_relations(abox)
    if extra_relations:
        adom = relations[ADOM]
        for name, rows in extra_relations.items():
            relations[name] = set(rows)
            for row in rows:
                adom.update((constant,) for constant in row)
    order = program.topological_order()
    assert order is not None  # Program construction guarantees this
    sizes: Dict[str, int] = {}
    for predicate in order:
        rows: Relation = set()
        for clause in program.clauses_for(predicate):
            rows |= _evaluate_clause(clause, relations)
        relations[predicate] = rows
        sizes[predicate] = len(rows)
    answers = frozenset(relations.get(query.goal, set()))
    return EvaluationResult(answers, sum(sizes.values()), sizes)


def _equality_mapping(clause: Clause) -> Dict[str, str]:
    """Union-find over the clause's equalities, preferring head variables
    as class representatives."""
    parent: Dict[str, str] = {}

    def find(v: str) -> str:
        parent.setdefault(v, v)
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    head_vars = set(clause.head.args)
    for eq in clause.body_equalities:
        left, right = find(eq.left), find(eq.right)
        if left == right:
            continue
        if right in head_vars and left not in head_vars:
            left, right = right, left
        parent[right] = left
    return {v: find(v) for v in parent}


#: Multiplier applied to the estimated output of a cross product so the
#: planner only resorts to one when no connected atom remains.
_CROSS_PRODUCT_PENALTY = 1 << 20


def _fanout(atom: Literal, bound: Set[str], relations: Dict[str, Relation],
            key_cache: Dict[Tuple[str, Tuple[int, ...]], int]
            ) -> Tuple[float, int]:
    """Estimated number of matches per input row when joining ``atom``
    next, given the variables in ``bound`` are already available.

    The estimate is ``|R| / distinct-keys(R, bound positions)`` — the
    average bucket size of the hash index the join would build.  Atoms
    with no bound variable are cross products and are heavily penalised.
    The secondary component breaks ties towards smaller relations.
    """
    relation = relations.get(atom.predicate, ())
    size = len(relation)
    if size == 0:
        # an empty relation empties the join: take it immediately
        return (-1.0, 0)
    bound_positions = tuple(i for i, arg in enumerate(atom.args)
                            if arg in bound)
    if not bound_positions:
        return (float(size) * _CROSS_PRODUCT_PENALTY, size)
    cache_key = (atom.predicate, bound_positions)
    distinct = key_cache.get(cache_key)
    if distinct is None:
        distinct = len({tuple(row[i] for i in bound_positions)
                        for row in relation})
        key_cache[cache_key] = distinct
    return (size / max(distinct, 1), size)


def _order_atoms(atoms: List[Literal],
                 relations: Dict[str, Relation]) -> List[Literal]:
    """Greedy join order driven by fanout estimates.

    At every step the atom with the smallest estimated matches-per-row
    is joined next; cross products are deferred until no connected atom
    remains.  This mirrors a System-R style greedy planner and keeps
    intermediate results small on the star- and chain-shaped clause
    bodies our rewritings produce.
    """
    remaining = list(atoms)
    ordered: List[Literal] = []
    bound: Set[str] = set()
    key_cache: Dict[Tuple[str, Tuple[int, ...]], int] = {}
    while remaining:
        best = min(remaining,
                   key=lambda atom: _fanout(atom, bound, relations,
                                            key_cache))
        remaining.remove(best)
        ordered.append(best)
        bound |= set(best.args)
    return ordered


def _evaluate_clause(clause: Clause,
                     relations: Dict[str, Relation]) -> Relation:
    mapping = _equality_mapping(clause)
    head = clause.head.rename(mapping)
    atoms = [atom.rename(mapping) for atom in clause.body_literals]
    if not atoms:
        # a fact: only possible for nullary heads (range restriction
        # would have added __adom__ atoms otherwise)
        return {()} if not head.args else set()

    remaining = list(atoms)
    key_cache: Dict[Tuple[str, Tuple[int, ...]], int] = {}
    schema: List[str] = []
    rows: List[Row] = [()]
    while remaining:
        bound = set(schema)
        atom = min(remaining,
                   key=lambda a: _fanout(a, bound, relations, key_cache))
        remaining.remove(atom)
        relation = relations.get(atom.predicate, set())
        if not relation:
            return set()
        positions = {v: i for i, v in enumerate(schema)}
        bound_positions = [i for i, arg in enumerate(atom.args)
                           if arg in positions]
        # detect repeated variables inside the atom, e.g. P(x, x)
        first_seen: Dict[str, int] = {}
        same_as: List[Optional[int]] = []
        for i, arg in enumerate(atom.args):
            same_as.append(first_seen.get(arg))
            first_seen.setdefault(arg, i)
        filtered = [row for row in relation
                    if all(same_as[i] is None or row[i] == row[same_as[i]]
                           for i in range(len(row)))]
        index: Dict[Row, List[Row]] = {}
        for row in filtered:
            key = tuple(row[i] for i in bound_positions)
            index.setdefault(key, []).append(row)
        new_vars = [arg for i, arg in enumerate(atom.args)
                    if arg not in positions and first_seen[arg] == i]
        # project away variables that neither the head nor any remaining
        # body atom will ever look at again
        keep = set(head.args)
        for later in remaining:
            keep.update(later.args)
        out_schema = [v for v in schema + new_vars if v in keep]
        out_positions: List[Tuple[bool, int]] = []
        for v in out_schema:
            if v in positions:
                out_positions.append((True, positions[v]))
            else:
                out_positions.append((False, first_seen[v]))
        out_rows: Set[Row] = set()
        for row in rows:
            key = tuple(row[positions[atom.args[i]]]
                        for i in bound_positions)
            for match in index.get(key, ()):
                out_rows.add(tuple(
                    row[i] if from_row else match[i]
                    for from_row, i in out_positions))
        schema = out_schema
        rows = list(out_rows)
        if not rows:
            return set()

    positions = {v: i for i, v in enumerate(schema)}
    result: Relation = set()
    for row in rows:
        result.add(tuple(row[positions[arg]] for arg in head.args))
    return result
