"""Program transformations from Sections 2 and 3.1.

* :func:`star_transform` — the ``*`` construction of Section 2 turning a
  rewriting over *complete* data instances into one over arbitrary data
  instances (adds one derivation layer below every EDB predicate).
* :func:`linear_star_transform` — the Lemma 3 variant that preserves
  linearity (and hence NL evaluability), at the cost of width +1.
* :func:`skinny_transform` — the Lemma 5 Huffman-coding construction
  producing an equivalent *skinny* program (bodies of at most two
  atoms) of depth at most ``sd(Pi, G)``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Sequence, Set

from ..ontology.terms import Atomic, Exists, Role, Top
from .program import ADOM, Clause, Equality, Literal, NDLQuery, Program


def _role_literal(role: Role, first: str, second: str) -> Literal:
    if role.inverted:
        return Literal(role.name, (second, first))
    return Literal(role.name, (first, second))


def _unary_derivations(tbox, predicate: str, var: str,
                       fresh: "itertools.count") -> List[List[object]]:
    """Bodies deriving ``predicate(var)`` over arbitrary data: one per
    basic concept ``tau`` with ``T |= tau <= predicate``."""
    bodies: List[List[object]] = []
    subs = set(tbox.concept_subs(Atomic(predicate)))
    subs.add(Atomic(predicate))
    for concept in sorted(subs, key=str):
        if isinstance(concept, Atomic):
            bodies.append([Literal(concept.name, (var,))])
        elif isinstance(concept, Exists):
            witness = f"_w{next(fresh)}"
            bodies.append([_role_literal(concept.role, var, witness)])
        elif isinstance(concept, Top):
            bodies.append([Literal(ADOM, (var,))])
    return bodies


def _binary_derivations(tbox, predicate: str, first: str, second: str
                        ) -> List[List[object]]:
    """Bodies deriving ``predicate(first, second)`` over arbitrary data."""
    bodies: List[List[object]] = []
    role = Role(predicate)
    subs = set(tbox.role_subs(role))
    subs.add(role)
    for sub in sorted(subs):
        bodies.append([_role_literal(sub, first, second)])
    if tbox.is_reflexive(role):
        bodies.append([Equality(first, second), Literal(ADOM, (first,))])
    return bodies


def star_transform(query: NDLQuery, tbox) -> NDLQuery:
    """The ``Pi*`` construction of Section 2.

    Every EDB predicate ``S`` is replaced by an IDB predicate ``S*``
    axiomatised by its T-derivations, making the query a rewriting over
    arbitrary (not necessarily complete) data instances.
    ``|Pi*| <= |Pi| + |T|^2`` as in the paper.
    """
    program = query.program
    idb = program.idb_predicates
    starred: Dict[str, str] = {}
    fresh = itertools.count()
    new_clauses: List[Clause] = []
    for clause in program.clauses:
        body: List[object] = []
        for atom in clause.body:
            if isinstance(atom, Literal) and (
                    atom.predicate not in idb and atom.predicate != ADOM):
                name = f"{atom.predicate}__star"
                starred[atom.predicate] = name
                body.append(Literal(name, atom.args))
            else:
                body.append(atom)
        new_clauses.append(Clause(clause.head, tuple(body)))
    for predicate, name in sorted(starred.items()):
        arity = _edb_arity(program, predicate)
        if arity == 1:
            head = Literal(name, ("x",))
            for derivation in _unary_derivations(tbox, predicate, "x", fresh):
                new_clauses.append(Clause(head, tuple(derivation)))
        else:
            head = Literal(name, ("x", "y"))
            for derivation in _binary_derivations(tbox, predicate, "x", "y"):
                new_clauses.append(Clause(head, tuple(derivation)))
    return NDLQuery(Program(new_clauses), query.goal, query.answer_vars)


def _edb_arity(program: Program, predicate: str) -> int:
    for clause in program.clauses:
        for atom in clause.body_literals:
            if atom.predicate == predicate:
                return len(atom.args)
    raise KeyError(predicate)


def linear_star_transform(query: NDLQuery, tbox) -> NDLQuery:
    """The Lemma 3 transformation: a *linear* rewriting over arbitrary
    data instances from a linear rewriting over complete ones.

    Each clause ``Q(z) <- I & EQ & E_1 & ... & E_n`` becomes a chain of
    clauses threading one EDB atom at a time, with each ``E_i`` replaced
    by every atom that T-derives it; the chain keeps exactly the
    variables still needed downstream, so the width grows by at most 1
    (the fresh witness variable).
    """
    program = query.program
    idb = program.idb_predicates
    fresh = itertools.count()
    fresh_pred = itertools.count()
    new_clauses: List[Clause] = []
    for clause in program.clauses:
        idb_atoms = [atom for atom in clause.body_literals
                     if atom.predicate in idb]
        if len(idb_atoms) > 1:
            raise ValueError("linear_star_transform needs a linear program")
        edb_atoms = [atom for atom in clause.body_literals
                     if atom.predicate not in idb]
        equalities = clause.body_equalities
        if not edb_atoms:
            new_clauses.append(clause)
            continue
        # variables needed strictly after step i (for the chain heads)
        tail_vars: List[Set[str]] = []
        future: Set[str] = set(clause.head.args)
        for eq in equalities:
            future |= eq.variables
        tail_vars_rev: List[Set[str]] = []
        for atom in reversed(edb_atoms):
            tail_vars_rev.append(set(future))
            future |= atom.variables
        tail_vars = list(reversed(tail_vars_rev))

        seen: Set[str] = set(idb_atoms[0].variables) if idb_atoms else set()
        previous: object = idb_atoms[0] if idb_atoms else None
        for i, atom in enumerate(edb_atoms):
            seen |= atom.variables
            carried = tuple(sorted(seen & (tail_vars[i] | set(
                v for later in edb_atoms[i + 1:] for v in later.variables))))
            is_last = i == len(edb_atoms) - 1
            if is_last and not equalities:
                head = clause.head
            else:
                head = Literal(f"_chain{next(fresh_pred)}", carried)
            if atom.predicate == ADOM:
                variants: List[List[object]] = [[atom]]
            elif len(atom.args) == 1:
                variants = _unary_derivations(tbox, atom.predicate,
                                              atom.args[0], fresh)
            else:
                variants = _binary_derivations(tbox, atom.predicate,
                                               atom.args[0], atom.args[1])
            for variant in variants:
                body: List[object] = []
                if previous is not None:
                    body.append(previous)
                body.extend(variant)
                new_clauses.append(Clause(head, tuple(body)))
            previous = head
        if equalities:
            new_clauses.append(Clause(
                clause.head, (previous,) + tuple(equalities)))
    return NDLQuery(Program(new_clauses), query.goal, query.answer_vars)


def inline_edb_leaves(query: NDLQuery) -> NDLQuery:
    """The Appendix A.6 display simplification: an IDB predicate defined
    by a *single* clause whose body mentions no IDB predicates is
    substituted into its callers (e.g. ``G_q(x) <- q(x)`` base cases of
    the Tw rewriter and leaf bags of the Log rewriter).

    A single pass over the original program — no cascading — so the
    structure of the rewriting is preserved.
    """
    program = query.program
    idb = program.idb_predicates
    inlinable: Dict[str, Clause] = {}
    for predicate in idb:
        if predicate == query.goal:
            continue
        defining = program.clauses_for(predicate)
        if len(defining) != 1:
            continue
        clause = defining[0]
        if any(atom.predicate in idb for atom in clause.body_literals):
            continue
        inlinable[predicate] = clause
    if not inlinable:
        return query
    counter = itertools.count()
    new_clauses: List[Clause] = []
    for clause in program.clauses:
        if clause.head.predicate in inlinable:
            continue
        body: List[object] = []
        for atom in clause.body:
            if isinstance(atom, Literal) and atom.predicate in inlinable:
                body.extend(_inline_call(inlinable[atom.predicate], atom,
                                         counter))
            else:
                body.append(atom)
        new_clauses.append(Clause(clause.head, tuple(body)))
    return NDLQuery(Program(new_clauses), query.goal, query.answer_vars)


def _inline_call(definition: Clause, call: Literal,
                 counter: "itertools.count") -> List[object]:
    """The body of ``definition`` with head variables bound to the call
    arguments and local variables freshened."""
    mapping: Dict[str, str] = dict(zip(definition.head.args, call.args))
    suffix = f"_l{next(counter)}"
    body: List[object] = []
    for atom in definition.body:
        body.append(atom.rename({
            var: mapping.get(var, var + suffix)
            for var in atom.variables}))
    return body


# -- Lemma 5: skinny transformation -------------------------------------


def skinny_transform(query: NDLQuery) -> NDLQuery:
    """An equivalent skinny NDL query (bodies of at most two atoms).

    EDB atoms of a clause are combined along a balanced binary tree
    (depth ``log e_Pi``) and IDB atoms along a Huffman tree for the
    minimal weight function (depth ``d + log nu``), realising the
    Lemma 5 bound ``d(Pi', G) <= sd(Pi, G)``.
    """
    from .analysis import minimal_weight_function

    program = query.program.normalize_equalities()
    nu = minimal_weight_function(program)
    idb = program.idb_predicates
    fresh = itertools.count()
    new_clauses: List[Clause] = []

    def combine(literals: Sequence[Literal], weights: Sequence[int],
                outside: Set[str]) -> Literal:
        """Huffman-merge ``literals`` into a single literal via fresh
        predicates, emitting skinny clauses along the way.

        ``outside`` are the variables visible elsewhere in the clause;
        each interface predicate keeps exactly the variables shared with
        the rest of the heap or with ``outside``.
        """
        if len(literals) == 1:
            return literals[0]
        heap = [(weights[i], i, literals[i]) for i in range(len(literals))]
        heapq.heapify(heap)
        tiebreak = itertools.count(len(literals))
        while len(heap) > 1:
            weight_a, _, literal_a = heapq.heappop(heap)
            weight_b, _, literal_b = heapq.heappop(heap)
            remaining: Set[str] = set()
            for _, _, other in heap:
                remaining |= set(other.args)
            merged_vars = set(literal_a.args) | set(literal_b.args)
            args = tuple(sorted(merged_vars & (remaining | outside)))
            head = Literal(f"_sk{next(fresh)}", args)
            new_clauses.append(Clause(head, (literal_a, literal_b)))
            heapq.heappush(heap,
                           (weight_a + weight_b, next(tiebreak), head))
        return heap[0][2]

    for clause in program.clauses:
        atoms = clause.body_literals
        if len(atoms) <= 2:
            new_clauses.append(clause)
            continue
        edb_atoms = [a for a in atoms if a.predicate not in idb]
        idb_atoms = [a for a in atoms if a.predicate in idb]
        head_vars = set(clause.head.args)
        parts: List[Literal] = []
        if edb_atoms:
            other_vars = {v for a in idb_atoms for v in a.args} | head_vars
            parts.append(combine(
                edb_atoms, [1] * len(edb_atoms), other_vars))
        if idb_atoms:
            other_vars = {v for a in edb_atoms for v in a.args} | head_vars
            parts.append(combine(
                idb_atoms, [max(1, nu.get(a.predicate, 1))
                            for a in idb_atoms], other_vars))
        new_clauses.append(Clause(clause.head, tuple(parts)))
    return NDLQuery(Program(new_clauses), query.goal, query.answer_vars)
