"""Complexity landscape (Figure 1) and NDL fragment analysis."""

from .fragments import FragmentReport, analyse
from .landscape import (
    LOGCFL,
    NL,
    NP,
    RewritingSizeStatus,
    combined_complexity,
    landscape_grid,
    rewriting_size_status,
)

__all__ = [
    "FragmentReport",
    "LOGCFL",
    "NL",
    "NP",
    "RewritingSizeStatus",
    "analyse",
    "combined_complexity",
    "landscape_grid",
    "rewriting_size_status",
]
