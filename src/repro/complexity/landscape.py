"""The complexity landscape of Figure 1.

``combined_complexity`` encodes Figure 1(a): the combined complexity of
answering OMQs as a function of the bounds on ontology depth, query
treewidth and (for tree-shaped CQs) number of leaves.
``rewriting_size_status`` encodes Figure 1(b): which rewriting targets
admit polynomial-size rewritings in each cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Union

Bound = Union[int, float]  # an int bound or math.inf

NL = "NL"
LOGCFL = "LOGCFL"
NP = "NP"


def combined_complexity(depth: Bound, treewidth: Bound,
                        leaves: Bound) -> str:
    """The combined complexity of OMQ answering (Figure 1a).

    Parameters are the *bounds* defining the OMQ class: maximal ontology
    depth, maximal CQ treewidth and, for tree-shaped CQs
    (``treewidth == 1``), maximal number of leaves (``math.inf`` for
    "unbounded").  The classification:

    * trees, bounded depth, bounded leaves            -> NL
    * trees, bounded depth, unbounded leaves          -> LOGCFL
    * bounded treewidth >= 2, bounded depth           -> LOGCFL
    * trees, unbounded depth, bounded leaves          -> LOGCFL
    * everything else                                 -> NP
    """
    bounded_depth = depth is not math.inf
    if treewidth is math.inf:
        return NP
    if treewidth <= 1:
        bounded_leaves = leaves is not math.inf
        if bounded_depth and bounded_leaves:
            return NL
        if bounded_depth or bounded_leaves:
            return LOGCFL
        return NP
    if bounded_depth:
        return LOGCFL
    return NP


@dataclass(frozen=True)
class RewritingSizeStatus:
    """Size status of the three rewriting targets in one cell of
    Figure 1(b)."""

    poly_ndl: bool
    poly_pe: bool
    poly_fo: str  # unconditional "yes"/"no" or the equivalence condition
    note: str = ""

    def row(self) -> str:
        ndl = "poly NDL" if self.poly_ndl else "no poly NDL"
        pe = "poly PE" if self.poly_pe else "no poly PE"
        return f"{ndl}; {pe}; poly FO {self.poly_fo}"


def rewriting_size_status(depth: Bound, treewidth: Bound,
                          leaves: Bound) -> RewritingSizeStatus:
    """The rewriting-size landscape of Figure 1(b)."""
    bounded_depth = depth is not math.inf
    if treewidth is math.inf:
        if bounded_depth and depth <= 1:
            # depth-1 ontologies admit polynomial Pi_2-PE rewritings
            return RewritingSizeStatus(
                True, True, "yes", note="poly Pi_2-PE")
        if bounded_depth and depth <= 2:
            return RewritingSizeStatus(
                True, True, "yes", note="poly Pi_4-PE")
        if bounded_depth:
            return RewritingSizeStatus(True, True, "yes", note="poly PE")
        return RewritingSizeStatus(
            False, False, "iff NP/poly subset NC^1")
    if treewidth <= 1:
        bounded_leaves = leaves is not math.inf
        if bounded_depth and bounded_leaves:
            return RewritingSizeStatus(
                True, False, "iff NL/poly subset NC^1")
        if bounded_depth:
            return RewritingSizeStatus(
                True, False, "iff LOGCFL/poly subset NC^1")
        if bounded_leaves:
            return RewritingSizeStatus(
                True, False, "iff NL/poly subset NC^1")
        return RewritingSizeStatus(
            False, False, "iff NP/poly subset NC^1")
    if bounded_depth:
        return RewritingSizeStatus(
            True, False, "iff LOGCFL/poly subset NC^1")
    return RewritingSizeStatus(False, False, "iff NP/poly subset NC^1")


def landscape_grid() -> List[Dict[str, str]]:
    """The Figure 1 grid as rows (one per depth bound x shape bound),
    used by the ``bench_figure1`` target to print the figure."""
    rows = []
    depth_bounds: List[Bound] = [0, 1, 2, 3, math.inf]
    shapes = [("trees, <=2 leaves", 1, 2),
              ("trees, <=l leaves", 1, 5),
              ("trees, unbounded leaves", 1, math.inf),
              ("treewidth <=t", 2, math.inf),
              ("unbounded treewidth", math.inf, math.inf)]
    for depth in depth_bounds:
        for label, treewidth, leaves in shapes:
            complexity = combined_complexity(depth, treewidth, leaves)
            sizes = rewriting_size_status(depth, treewidth, leaves)
            rows.append({
                "depth": "inf" if depth is math.inf else str(depth),
                "shape": label,
                "combined": complexity,
                "rewritings": sizes.row(),
            })
    return rows
