"""OMQ-level checks of the NL/LOGCFL fragment conditions of Section 3.1.

The theorems of Section 3 promise that the optimal rewriters always
land inside evaluable fragments; these helpers verify that promise on
concrete rewritings (used by the test suite and the ablation benches).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..datalog.analysis import (
    is_linear,
    is_skinny,
    minimal_weight_function,
    skinny_depth,
)
from ..datalog.program import NDLQuery


@dataclass(frozen=True)
class FragmentReport:
    """Diagnostics of an NDL query against the Section 3.1 fragments."""

    clauses: int
    width: int
    depth: int
    linear: bool
    skinny: bool
    skinny_depth: float
    goal_weight: int

    @property
    def in_nl_fragment(self) -> bool:
        """Theorem 2: linear programs of bounded width evaluate in NL."""
        return self.linear

    def in_logcfl_fragment(self, constant: float, size: int) -> bool:
        """Theorem 6: bounded width and ``sd <= c log |Pi|``."""
        return self.skinny_depth <= constant * math.log2(max(2, size))


def analyse(query: NDLQuery) -> FragmentReport:
    """A :class:`FragmentReport` for an NDL query."""
    program = query.program
    nu = minimal_weight_function(program)
    return FragmentReport(
        clauses=len(program),
        width=query.width(),
        depth=program.depth(query.goal),
        linear=is_linear(program),
        skinny=is_skinny(program),
        skinny_depth=skinny_depth(query),
        goal_weight=nu.get(query.goal, 1),
    )
