"""The W[1]-hardness gadget of Theorem 16 (Section 4.2): reduction from
PartitionedClique to OMQ answering with the number of CQ leaves as the
parameter.

The ontology ``T_G`` unfolds every way of picking one vertex per
partition into a branch of ``p`` blocks of length ``2M`` (vertex ``v_j``
owning block positions ``2j-1`` and ``2j``), marking selected vertices
with ``SS`` and their graph-neighbours with ``YY``; the CQ ``q_G`` forks
into ``p - 1`` branches that verify evenly spaced ``YY`` markers, so
``T_G, {A(a)} |= q_G`` iff the graph has a clique with one vertex per
partition.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from ..data.abox import ABox
from ..ontology.axioms import ConceptInclusion, RoleInclusion
from ..ontology.tbox import TBox
from ..ontology.terms import Atomic, Exists, Role
from ..queries.cq import CQ, Atom


@dataclass(frozen=True)
class PartitionedGraph:
    """A graph on vertices ``1..n`` with a partition into ``p`` parts."""

    vertices: int
    edges: Tuple[FrozenSet[int], ...]
    partition: Tuple[Tuple[int, ...], ...]

    @classmethod
    def of(cls, vertices: int, edges: Sequence[Sequence[int]],
           partition: Sequence[Sequence[int]]) -> "PartitionedGraph":
        frozen_edges = tuple(frozenset(edge) for edge in edges)
        for edge in frozen_edges:
            if len(edge) != 2 or not all(1 <= v <= vertices for v in edge):
                raise ValueError(f"bad edge {sorted(edge)}")
        parts = tuple(tuple(sorted(part)) for part in partition)
        covered = [v for part in parts for v in part]
        if sorted(covered) != list(range(1, vertices + 1)):
            raise ValueError("partition must cover each vertex once")
        return cls(vertices, frozen_edges, parts)

    def adjacent(self, first: int, second: int) -> bool:
        return frozenset((first, second)) in self.edges


def has_partitioned_clique(graph: PartitionedGraph) -> bool:
    """Brute-force reference solver: a clique with one vertex per part."""
    for combo in itertools.product(*graph.partition):
        if all(graph.adjacent(a, b)
               for a, b in itertools.combinations(combo, 2)):
            return True
    return False


def clique_tbox(graph: PartitionedGraph) -> TBox:
    """The ontology ``T_G`` in normal form.

    Block positions are 1-based: vertex ``v_j`` owns positions ``2j-1``
    and ``2j`` of each block of length ``2M``.
    """
    m2 = 2 * graph.vertices
    p = len(graph.partition)
    axioms: List[object] = []
    s_role, y_role, u_role = Role("S"), Role("Y"), Role("U")

    def chain_role(position: int, vertex: int) -> Role:
        return Role(f"L{position}_{vertex}")

    for vertex in graph.partition[0]:
        axioms.append(ConceptInclusion(Atomic("A"),
                                       Exists(chain_role(1, vertex))))
    for vertex in range(1, graph.vertices + 1):
        for position in range(1, m2):
            axioms.append(ConceptInclusion(
                Exists(chain_role(position, vertex).inverse()),
                Exists(chain_role(position + 1, vertex))))
    for part_index in range(p - 1):
        for vertex in graph.partition[part_index]:
            for successor in graph.partition[part_index + 1]:
                axioms.append(ConceptInclusion(
                    Exists(chain_role(m2, vertex).inverse()),
                    Exists(chain_role(1, successor))))
    for vertex in range(1, graph.vertices + 1):
        own = (2 * vertex - 1, 2 * vertex)
        for position in range(1, m2 + 1):
            role = chain_role(position, vertex)
            axioms.append(RoleInclusion(role, u_role.inverse()))
            if position in own:
                axioms.append(RoleInclusion(role, s_role.inverse()))
        for neighbour in range(1, graph.vertices + 1):
            if graph.adjacent(vertex, neighbour):
                for position in (2 * neighbour - 1, 2 * neighbour):
                    axioms.append(RoleInclusion(chain_role(position, vertex),
                                                y_role.inverse()))
    for vertex in graph.partition[-1]:
        axioms.append(ConceptInclusion(
            Exists(chain_role(m2, vertex).inverse()), Atomic("B")))
    # B(x) -> exists y (U(x, y) & U(y, x)), via the helper role PP
    pp = Role("PP")
    axioms.append(ConceptInclusion(Atomic("B"), Exists(pp)))
    axioms.append(RoleInclusion(pp, u_role))
    axioms.append(RoleInclusion(pp, u_role.inverse()))
    return TBox(axioms)


def clique_query(graph: PartitionedGraph) -> CQ:
    """The Boolean CQ ``q_G``: ``B(y)`` plus, for each ``1 <= i < p``,
    the branch ``U^{2M-2} (YY U^{2M-2})^i SS`` from ``y`` to ``z_i``."""
    m2 = 2 * graph.vertices
    p = len(graph.partition)
    atoms: List[Atom] = [Atom("B", ("y",))]
    for i in range(1, p):
        labels: List[str] = ["U"] * (m2 - 2)
        for _ in range(i):
            labels += ["Y", "Y"] + ["U"] * (m2 - 2)
        labels += ["S", "S"]
        previous = "y"
        for step, label in enumerate(labels):
            is_last = step == len(labels) - 1
            current = f"z{i}" if is_last else f"w{i}_{step}"
            atoms.append(Atom(label, (previous, current)))
            previous = current
    return CQ(atoms, ())


def clique_abox() -> ABox:
    """The single-atom data instance ``{A(a)}``."""
    return ABox([("A", ("a",))])


def clique_omq(graph: PartitionedGraph) -> Tuple[TBox, CQ, ABox]:
    """The full Theorem 16 instance ``(T_G, q_G, {A(a)})``."""
    return clique_tbox(graph), clique_query(graph), clique_abox()
