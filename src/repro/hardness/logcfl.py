"""The fixed-ontology LOGCFL-hardness gadget of Theorem 22 (Section 5,
Appendix C.4): reduction from Greibach's hardest context-free language.

``T_DDAGGER`` is a fixed ontology such that a word ``w`` over the
alphabet of the hardest LOGCFL language ``L`` belongs to ``L`` iff
``T_ddagger, {A(a)} |= q_w`` for the linear Boolean CQ ``q_w`` produced
by a (logspace) transducer.

The base language ``B0`` is the two-pair Dyck language
``S -> SS | eps | a1 S b1 | a2 S b2``; ``L`` wraps it in blocks
``[x1#x2#...#xn]`` from each of which one *choice* must be drawn.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from ..data.abox import ABox
from ..ontology.axioms import ConceptInclusion, RoleInclusion
from ..ontology.tbox import TBox
from ..ontology.terms import Atomic, Exists, Role
from ..queries.cq import CQ, Atom

#: The alphabet of the base language B0.
SIGMA0 = ("a1", "b1", "a2", "b2")
#: The full alphabet of the hardest language L.
SIGMA = SIGMA0 + ("[", "]", "#")

_SYMBOL_NAMES = {"[": "LB", "]": "RB", "#": "HH",
                 "a1": "a1", "b1": "b1", "a2": "a2", "b2": "b2"}


def _r(symbol: str) -> str:
    return f"R{_SYMBOL_NAMES[symbol]}"


def _s(symbol: str) -> str:
    return f"S{_SYMBOL_NAMES[symbol]}"


def in_b0(word: Sequence[str]) -> bool:
    """Membership in the Dyck base language ``B0`` (stack check)."""
    stack: List[str] = []
    pairs = {"b1": "a1", "b2": "a2"}
    for symbol in word:
        if symbol in ("a1", "a2"):
            stack.append(symbol)
        elif symbol in pairs:
            if not stack or stack.pop() != pairs[symbol]:
                return False
        else:
            return False
    return not stack


def parse_blocks(word: Sequence[str]) -> Optional[List[List[List[str]]]]:
    """Split a block-formed word into blocks of choices, or ``None``
    when the word is not block-formed."""
    if not word or word[0] != "[" or word[-1] != "]":
        return None
    blocks: List[List[List[str]]] = []
    current: Optional[List[List[str]]] = None
    content = 0
    for index, symbol in enumerate(word):
        if symbol == "[":
            if current is not None:
                return None
            current = [[]]
            content = 0
        elif symbol == "]":
            if current is None or content == 0:
                return None  # unmatched or empty block "[]"
            blocks.append(current)
            current = None
            if index + 1 < len(word) and word[index + 1] != "[":
                return None
        elif symbol == "#":
            if current is None:
                return None
            current.append([])
            content += 1
        elif symbol in SIGMA0:
            if current is None:
                return None
            current[-1].append(symbol)
            content += 1
        else:
            return None
    if current is not None:
        return None
    return blocks


def is_block_formed(word: Sequence[str]) -> bool:
    return parse_blocks(word) is not None


def in_hardest_language(word: Sequence[str]) -> bool:
    """Membership in the hardest LOGCFL language ``L``: a sequence of
    blocks from each of which some choice concatenates into ``B0``."""
    blocks = parse_blocks(word)
    if blocks is None:
        return False
    for combo in itertools.product(*blocks):
        chosen: List[str] = []
        for choice in combo:
            chosen.extend(choice)
        if in_b0(chosen):
            return True
    return False


def ddagger_tbox() -> TBox:
    """The fixed ontology ``T_ddagger`` (axioms (11) and (16)-(21) of
    Appendix C.4, in normal form with helper roles)."""
    axioms: List[object] = []

    def double_step(trigger: str, outer: Role, first_r: str, first_s: str,
                    inner: Role, second_s: str, second_r: str,
                    target: str) -> None:
        """``trigger(x) -> exists y (R(x,y) & S(y,x) &
        exists z (S'(y,z) & R'(z,y) & target(z)))``."""
        axioms.append(ConceptInclusion(Atomic(trigger), Exists(outer)))
        axioms.append(RoleInclusion(outer, Role(first_r)))
        axioms.append(RoleInclusion(outer.inverse(), Role(first_s)))
        axioms.append(ConceptInclusion(Exists(outer.inverse()),
                                       Exists(inner)))
        axioms.append(RoleInclusion(inner, Role(second_s)))
        axioms.append(RoleInclusion(inner.inverse(), Role(second_r)))
        axioms.append(ConceptInclusion(Exists(inner.inverse()),
                                       Atomic(target)))

    # (11): the base-language gadget, for i = 1, 2
    for i in (1, 2):
        double_step("D", Role(f"g{i}"), _r(f"a{i}"), _s(f"b{i}"),
                    Role(f"f{i}"), _s(f"a{i}"), _r(f"b{i}"), "D")
    # (16): A(x) -> D(x)
    axioms.append(ConceptInclusion(Atomic("A"), Atomic("D")))
    # (17): D -> exists y (R[(x,y) & S[(y,x))
    t1 = Role("t1")
    axioms.append(ConceptInclusion(Atomic("D"), Exists(t1)))
    axioms.append(RoleInclusion(t1, Role(_r("["))))
    axioms.append(RoleInclusion(t1.inverse(), Role(_s("["))))
    # (18): the skip-prefix gadget
    double_step("D", Role("t2"), _r("["), _s("#"),
                Role("t3"), _s("["), _r("#"), "F")
    # (19): D -> exists y (R](x,y) & S](y,x))
    t4 = Role("t4")
    axioms.append(ConceptInclusion(Atomic("D"), Exists(t4)))
    axioms.append(RoleInclusion(t4, Role(_r("]"))))
    axioms.append(RoleInclusion(t4.inverse(), Role(_s("]"))))
    # (20): the skip-suffix gadget
    double_step("D", Role("t5"), _r("#"), _s("]"),
                Role("t6"), _s("#"), _r("]"), "F")
    # (21): F -> exists y (Rc(x,y) & Sc(y,x)) for c in Sigma0 + {#}
    for symbol in SIGMA0 + ("#",):
        u = Role(f"u{_SYMBOL_NAMES[symbol]}")
        axioms.append(ConceptInclusion(Atomic("F"), Exists(u)))
        axioms.append(RoleInclusion(u, Role(_r(symbol))))
        axioms.append(RoleInclusion(u.inverse(), Role(_s(symbol))))
    return TBox(axioms)


def word_query(word: Sequence[str]) -> CQ:
    """The transducer of Theorem 22: a linear Boolean CQ ``q_w``.

    Block-formed words yield
    ``A(u_0) & gamma_w(u_0, v_0, ..., u_{n+1}) & A(u_{n+1})``;
    non-block-formed words yield a prefix ending in the error concept
    ``E(u_i)`` (false in the canonical model, as ``E`` never holds)."""
    atoms: List[Atom] = [Atom("A", ("u0",))]
    for index, symbol in enumerate(word):
        if symbol not in SIGMA:
            atoms.append(Atom("Err", (f"u{index}",)))
            return CQ(atoms, ())
        atoms.append(Atom(_r(symbol), (f"u{index}", f"v{index}")))
        atoms.append(Atom(_s(symbol), (f"v{index}", f"u{index + 1}")))
    if is_block_formed(word):
        atoms.append(Atom("A", (f"u{len(word)}",)))
    else:
        atoms.append(Atom("Err", (f"u{len(word)}",)))
    return CQ(atoms, ())


def word_abox() -> ABox:
    """The fixed data instance ``{A(a)}``."""
    return ABox([("A", ("a",))])


def word_omq(word: Sequence[str]) -> Tuple[TBox, CQ, ABox]:
    """The full Theorem 22 instance ``(T_ddagger, q_w, {A(a)})``."""
    return ddagger_tbox(), word_query(word), word_abox()


def tokenize(text: str) -> List[str]:
    """Split ``"[a1a2#b2b1]"`` into symbols of ``SIGMA``."""
    tokens: List[str] = []
    index = 0
    while index < len(text):
        if text[index] in "[]#":
            tokens.append(text[index])
            index += 1
        else:
            tokens.append(text[index:index + 2])
            index += 2
    if any(token not in SIGMA for token in tokens):
        raise ValueError(f"not a word over Sigma: {text!r}")
    return tokens
