"""Theorem 21 / Theorem 28 (Appendix C.3): evaluating PE-queries over
the tree instances ``A_m^alpha`` is NP-hard.

For the 3-CNF ``phi_k`` consisting of *all* clauses over ``k``
variables (``m = 8 * C(k, 3)`` of them), the construction builds a
polynomial-size PE-query ``q_m(x)`` such that
``A_m^alpha |= q_m(root)`` iff the CNF ``phi_k^{-alpha}`` (the clauses
*not* flagged by ``alpha``) is satisfiable — reducing 3-SAT to
PE-evaluation over trees.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

from ..queries.pe import And, Or, PEAtom, PEQuery, conj, disj

#: In ``A_m^alpha`` (see :func:`repro.hardness.sat.tree_abox`), ``Pm``
#: is the left-child edge (bit 0) and ``Pp`` the right-child edge.
LEFT, RIGHT = "Pm", "Pp"


def all_three_clauses(k: int) -> List[Tuple[int, int, int]]:
    """Every 3-literal clause over variables ``1..k`` with three
    distinct variables (the CNF ``phi_k`` of Appendix C.3)."""
    clauses = []
    for trio in itertools.combinations(range(1, k + 1), 3):
        for signs in itertools.product((1, -1), repeat=3):
            clauses.append(tuple(sign * var
                                 for sign, var in zip(signs, trio)))
    return clauses


def _p_pm(first: str, second: str) -> Or:
    """``P_pm(x, y) = Pm(x, y) | Pp(x, y)`` (any tree edge)."""
    return disj(PEAtom(LEFT, (first, second)), PEAtom(RIGHT, (first, second)))


def pe_query_qm(k: int) -> Tuple[PEQuery, List[Tuple[int, int, int]]]:
    """The PE-query ``q_m(x)`` of Theorem 28 plus the clause list.

    The number of clauses must be a power of two for the tree
    instances; ``k = 3`` gives exactly ``m = 8``.
    """
    clauses = all_three_clauses(k)
    m = len(clauses)
    if m & (m - 1):
        raise ValueError(
            f"phi_{k} has {m} clauses - not a power of two; use k = 3 "
            "or pad the clause list")
    bits = m.bit_length() - 1

    def literal_var(literal: int) -> str:
        return f"x{literal}" if literal > 0 else f"xn{-literal}"

    parts: List[object] = []
    # r: the clause variables z_i sit at the leaf addressed by i-1
    for i in range(1, m + 1):
        previous = "x"
        address = i - 1
        for level in range(bits):
            is_last = level == bits - 1
            current = f"z{i}" if is_last else f"y{level + 1}_{i}"
            predicate = (RIGHT if (address >> (bits - 1 - level)) & 1
                         else LEFT)
            parts.append(PEAtom(predicate, (previous, current)))
            previous = current
    # s: each propositional variable picks a leaf pair (x_j, x'_j) with
    # exactly one of them carrying B0 (the truth value)
    for j in range(1, k + 1):
        previous = "x"
        for level in range(1, bits):
            current = f"u{level}_{j}"
            parts.append(_p_pm(previous, current))
            previous = current
        positive, negative = literal_var(j), literal_var(-j)
        parts.append(disj(
            conj(_p_pm(previous, positive), _p_pm(negative, previous),
                 PEAtom("B0", (positive,))),
            conj(_p_pm(previous, negative), _p_pm(positive, previous),
                 PEAtom("B0", (negative,)))))
    # t: clause i is inert (B0 at its leaf: it was deleted by alpha) or
    # one of its literals is true
    for i, clause in enumerate(clauses, start=1):
        parts.append(disj(
            PEAtom("B0", (f"z{i}",)),
            *[PEAtom("B0", (literal_var(literal),))
              for literal in clause]))
    return PEQuery(And(tuple(parts)), ("x",)), clauses


def cnf_minus_alpha(clauses: Sequence[Tuple[int, ...]],
                    alpha: Sequence[int]) -> List[List[int]]:
    """``phi^{-alpha}``: the clauses not flagged by ``alpha``."""
    return [list(clause) for clause, bit in zip(clauses, alpha) if not bit]
