"""The W[2]-hardness gadget of Theorem 15 (Section 4.1, Appendix B.1):
reduction from p-HittingSet to OMQ answering with the ontology depth as
the parameter.

Given a hypergraph ``H = (V, E)`` and ``k``, the ontology ``T_H^k``
(depth ``2k``) generates a tree whose level-``k`` points encode the
size-``k`` subsets of ``V``, with "pendant" chains checking hyperedge
intersection, and the star-shaped Boolean CQ ``q_H^k`` has one ray per
hyperedge; then ``T_H^k, {V^0_0(a)} |= q_H^k`` iff ``H`` has a hitting
set of size ``k``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from ..data.abox import ABox
from ..ontology.axioms import ConceptInclusion, RoleInclusion
from ..ontology.tbox import TBox
from ..ontology.terms import Atomic, Exists, Role
from ..queries.cq import CQ, Atom


@dataclass(frozen=True)
class Hypergraph:
    """A hypergraph on vertices ``1..n`` with hyperedges as vertex sets."""

    vertices: int
    edges: Tuple[FrozenSet[int], ...]

    @classmethod
    def of(cls, vertices: int, edges: Sequence[Sequence[int]]
           ) -> "Hypergraph":
        frozen = tuple(frozenset(edge) for edge in edges)
        for edge in frozen:
            if not edge or not all(1 <= v <= vertices for v in edge):
                raise ValueError(f"bad hyperedge {sorted(edge)}")
        return cls(vertices, frozen)


def has_hitting_set(hypergraph: Hypergraph, k: int) -> bool:
    """Brute-force reference solver: is there ``A`` with ``|A| = k`` and
    ``e intersect A != empty`` for every hyperedge ``e``?"""
    if k > hypergraph.vertices:
        return False
    universe = range(1, hypergraph.vertices + 1)
    for subset in itertools.combinations(universe, k):
        chosen = set(subset)
        if all(edge & chosen for edge in hypergraph.edges):
            return True
    return False


def hitting_set_tbox(hypergraph: Hypergraph, k: int) -> TBox:
    """The ontology ``T_H^k`` in OWL 2 QL normal form, using the helper
    roles ``u^l_i`` and ``h^l_j`` of Appendix B.1."""
    n = hypergraph.vertices
    axioms: List[object] = []
    p_role = Role("P")
    for level in range(1, k + 1):
        for target in range(1, n + 1):
            up = Role(f"u{level}_{target}")
            # u^l_{i'}(x, z) -> P(z, x) and V^l_{i'}(z)
            axioms.append(RoleInclusion(up, p_role.inverse()))
            axioms.append(ConceptInclusion(Exists(up.inverse()),
                                           Atomic(f"V{level}_{target}")))
            for source in range(0, target):
                # V^{l-1}_i(x) -> exists z u^l_{i'}(x, z), i < i'
                axioms.append(ConceptInclusion(
                    Atomic(f"V{level - 1}_{source}"), Exists(up)))
    for level in range(1, k + 1):
        for j, edge in enumerate(hypergraph.edges, start=1):
            for vertex in sorted(edge):
                axioms.append(ConceptInclusion(
                    Atomic(f"V{level}_{vertex}"),
                    Atomic(f"E{level}_{j}")))
    for level in range(1, k + 1):
        for j in range(1, len(hypergraph.edges) + 1):
            down = Role(f"h{level}_{j}")
            # E^l_j(x) -> exists z h^l_j(x, z), h(x, z) -> P(x, z) and
            # E^{l-1}_j(z)
            axioms.append(ConceptInclusion(Atomic(f"E{level}_{j}"),
                                           Exists(down)))
            axioms.append(RoleInclusion(down, p_role))
            axioms.append(ConceptInclusion(Exists(down.inverse()),
                                           Atomic(f"E{level - 1}_{j}")))
    return TBox(axioms)


def hitting_set_query(hypergraph: Hypergraph, k: int) -> CQ:
    """The star-shaped Boolean CQ ``q_H^k`` with one ray of length ``k``
    per hyperedge, ending in ``E^0_j``."""
    atoms: List[Atom] = []
    for j in range(1, len(hypergraph.edges) + 1):
        previous = "y"
        for level in range(k - 1, -1, -1):
            current = f"z{level}_{j}"
            atoms.append(Atom("P", (previous, current)))
            previous = current
        atoms.append(Atom(f"E0_{j}", (f"z0_{j}",)))
    return CQ(atoms, ())


def hitting_set_abox() -> ABox:
    """The single-atom data instance ``{V^0_0(a)}``."""
    return ABox([("V0_0", ("a",))])


def hitting_set_omq(hypergraph: Hypergraph,
                    k: int) -> Tuple[TBox, CQ, ABox]:
    """The full Theorem 15 instance ``(T_H^k, q_H^k, {V^0_0(a)})``."""
    return (hitting_set_tbox(hypergraph, k),
            hitting_set_query(hypergraph, k),
            hitting_set_abox())
