"""The fixed-ontology NP-hardness gadget of Theorem 17 (Section 5,
Appendix C.1) and its Theorem 20 variant.

``T_DAGGER`` is a *fixed* infinite-depth ontology such that answering
Boolean tree-shaped OMQs ``(T_DAGGER, q_phi)`` over the single-atom data
``{A(a)}`` decides SAT: the canonical model spins an infinite binary
tree of truth assignments, and the star-shaped ``q_phi`` maps into it
iff the CNF ``phi`` is satisfiable.

Also provided: a DPLL SAT solver (the reference semantics), the
modified query ``q_bar_phi(x)`` of Appendix C.2 and the binary-tree data
instances ``A_m^alpha`` used by Theorem 20's monotone-function argument.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..data.abox import ABox
from ..ontology.axioms import ConceptInclusion, RoleInclusion
from ..ontology.tbox import TBox
from ..ontology.terms import Atomic, Exists, Role
from ..queries.cq import CQ, Atom

#: A CNF formula: a list of clauses, each a list of non-zero ints
#: (DIMACS style: ``3`` means ``p3``, ``-3`` means ``not p3``).
CNF = Sequence[Sequence[int]]


def _dagger_axioms() -> List[object]:
    """The axioms of ``T_dagger`` in normal form (Appendix C.1), with
    helper roles ``up/um`` (upsilon+-) and ``hp/hm/h0`` (eta+-0)."""
    axioms: List[object] = []
    pp, pm, p0 = Role("Pp"), Role("Pm"), Role("P0")

    def branch(upsilon: Role, sign_role: Role, b_concept: str,
               eta: Role, eta_sign: Role) -> None:
        # A(x) -> exists y upsilon(x, y);
        # upsilon(x, y) -> sign(y, x) & P0(y, x) & B_pm(y) & A(y)
        axioms.append(ConceptInclusion(Atomic("A"), Exists(upsilon)))
        axioms.append(RoleInclusion(upsilon, sign_role.inverse()))
        axioms.append(RoleInclusion(upsilon, p0.inverse()))
        axioms.append(ConceptInclusion(Exists(upsilon.inverse()),
                                       Atomic(b_concept)))
        axioms.append(ConceptInclusion(Exists(upsilon.inverse()),
                                       Atomic("A")))
        # B_pm(y) -> exists x' eta(y, x'); eta(y, x') -> eta_sign(y, x')
        # & B0(x')
        axioms.append(ConceptInclusion(Atomic(b_concept), Exists(eta)))
        axioms.append(RoleInclusion(eta, eta_sign))
        axioms.append(ConceptInclusion(Exists(eta.inverse()), Atomic("B0")))

    branch(Role("up"), pp, "Bm", Role("hm"), pm)
    branch(Role("um"), pm, "Bp", Role("hp"), pp)
    # B0(x) -> exists y eta0(x, y);
    # eta0(x, y) -> Pp(x, y) & Pm(x, y) & P0(x, y) & B0(y)
    h0 = Role("h0")
    axioms.append(ConceptInclusion(Atomic("B0"), Exists(h0)))
    for sign_role in (pp, pm, p0):
        axioms.append(RoleInclusion(h0, sign_role))
    axioms.append(ConceptInclusion(Exists(h0.inverse()), Atomic("B0")))
    return axioms


#: The fixed ontology of Theorem 17.
def dagger_tbox() -> TBox:
    return TBox(_dagger_axioms())


def _sign_predicate(literal_sign: int) -> str:
    return {1: "Pp", -1: "Pm", 0: "P0"}[literal_sign]


def _clause_sign(clause: Sequence[int], variable: int) -> int:
    for literal in clause:
        if abs(literal) == variable:
            return 1 if literal > 0 else -1
    return 0


def _is_tautological(clause: Sequence[int]) -> bool:
    literals = set(clause)
    return any(-literal in literals for literal in literals)


def sat_query(cnf: CNF, variables: Optional[int] = None) -> CQ:
    """The Boolean star CQ ``q_phi`` of Theorem 17: centre ``A(y)`` and
    one ray per clause encoding the clause's literals over
    ``Pp/Pm/P0``.

    The paper's encoding gives each (clause, variable) position exactly
    one of ``Pp``/``Pm``/``P0``, so it cannot represent a clause
    containing both ``p`` and ``not p``; such tautological clauses are
    always satisfied and are dropped up front (which preserves
    satisfiability, hence the reduction).
    """
    kept = [clause for clause in cnf if not _is_tautological(clause)]
    k = variables if variables is not None else max(
        (abs(lit) for clause in cnf for lit in clause), default=1)
    atoms: List[Atom] = [Atom("A", ("y",))]
    for j, clause in enumerate(kept, start=1):
        previous = "y"  # z^k_j = y; atoms run P(z^l_j, z^{l-1}_j)
        for level in range(k, 0, -1):
            current = f"z{level - 1}_{j}"
            predicate = _sign_predicate(_clause_sign(clause, level))
            atoms.append(Atom(predicate, (previous, current)))
            previous = current
        atoms.append(Atom("B0", (f"z0_{j}",)))
    return CQ(atoms, ())


def sat_abox() -> ABox:
    """The fixed data instance ``{A(a)}``."""
    return ABox([("A", ("a",))])


def sat_omq(cnf: CNF, variables: Optional[int] = None
            ) -> Tuple[TBox, CQ, ABox]:
    """The full Theorem 17 instance ``(T_dagger, q_phi, {A(a)})``."""
    return dagger_tbox(), sat_query(cnf, variables), sat_abox()


# -- reference SAT solver ---------------------------------------------------


def dpll(cnf: CNF) -> Optional[Dict[int, bool]]:
    """A DPLL SAT solver with unit propagation; returns a satisfying
    assignment or ``None``."""
    clauses = [frozenset(clause) for clause in cnf]
    assignment: Dict[int, bool] = {}

    def propagate(clauses, assignment):
        changed = True
        while changed:
            changed = False
            pending = []
            for clause in clauses:
                live = []
                satisfied = False
                for literal in clause:
                    var, value = abs(literal), literal > 0
                    if var in assignment:
                        if assignment[var] == value:
                            satisfied = True
                            break
                    else:
                        live.append(literal)
                if satisfied:
                    continue
                if not live:
                    return None
                if len(live) == 1:
                    literal = live[0]
                    assignment[abs(literal)] = literal > 0
                    changed = True
                else:
                    pending.append(frozenset(live))
            clauses = pending
        return clauses

    def solve(clauses, assignment):
        clauses = propagate(clauses, assignment)
        if clauses is None:
            return None
        if not clauses:
            return assignment
        literal = next(iter(clauses[0]))
        for value in (literal > 0, literal <= 0):
            attempt = dict(assignment)
            attempt[abs(literal)] = value
            result = solve(clauses, attempt)
            if result is not None:
                return result
        return None

    return solve(clauses, assignment)


def is_satisfiable(cnf: CNF) -> bool:
    return dpll(cnf) is not None


# -- Theorem 20: the q_bar variant and the A_m^alpha tree instances ----------


def sat_query_bar(cnf: CNF, variables: Optional[int] = None) -> CQ:
    """The modified query ``q_bar_phi(x)`` of Appendix C.2 (one answer
    variable; requires the number of clauses to be a power of two)."""
    m = len(cnf)
    if m & (m - 1) or m == 0:
        raise ValueError("q_bar_phi needs a power-of-two number of clauses")
    if any(_is_tautological(clause) for clause in cnf):
        # unlike sat_query, the clause *positions* carry meaning here
        # (the alpha flags address them), so dropping is not an option
        raise ValueError("q_bar_phi cannot encode tautological clauses")
    bits = m.bit_length() - 1
    k = variables if variables is not None else max(
        (abs(lit) for clause in cnf for lit in clause), default=1)
    atoms: List[Atom] = [Atom("P0", ("y1", "x"))]
    for level in range(2, k + 1):
        atoms.append(Atom("P0", (f"y{level}", f"y{level - 1}")))
    centre = f"y{k}"
    for j, clause in enumerate(cnf, start=1):
        previous = centre  # z^k_j = y^k; atoms run P(z^l_j, z^{l-1}_j)
        for level in range(k, 0, -1):
            current = f"z{level - 1}_{j}"
            predicate = _sign_predicate(_clause_sign(clause, level))
            atoms.append(Atom(predicate, (previous, current)))
            previous = current
        # the address part: bit l of (j-1) selects Pm (0) or Pp (1)
        for bit in range(bits):
            current = f"z{-bit - 1}_{j}"
            predicate = "Pp" if (j - 1) >> bit & 1 else "Pm"
            atoms.append(Atom(predicate, (previous, current)))
            previous = current
        atoms.append(Atom("B0", (previous,)))
    return CQ(atoms, ("x",))


def tree_abox(alpha: Sequence[int]) -> ABox:
    """The data instance ``A_m^alpha``: a full binary tree over ``Pm``
    (left) / ``Pp`` (right) with ``A`` at the root and ``B0`` at the
    leaves selected by the bit-vector ``alpha``."""
    m = len(alpha)
    if m & (m - 1) or m == 0:
        raise ValueError("alpha must have power-of-two length")
    bits = m.bit_length() - 1
    abox = ABox([("A", ("t",))])
    for depth in range(bits):
        for index in range(1 << depth):
            node = _node_name(depth, index)
            abox.add("Pm", node, _node_name(depth + 1, 2 * index))
            abox.add("Pp", node, _node_name(depth + 1, 2 * index + 1))
    for index, bit in enumerate(alpha):
        if bit:
            abox.add("B0", _node_name(bits, index))
    return abox


def _node_name(depth: int, index: int) -> str:
    return "t" if depth == 0 else f"t{depth}_{index}"


def monotone_function(cnf: CNF, alpha: Sequence[int]) -> bool:
    """``f_phi(alpha)``: satisfiability of ``phi`` with the clauses
    flagged by ``alpha`` removed (Lemma 26's reference function)."""
    remaining = [clause for clause, bit in zip(cnf, alpha) if not bit]
    return is_satisfiable(remaining)
