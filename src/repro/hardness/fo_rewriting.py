"""Theorem 19: the SAT OMQs ``Q_phi`` have polynomial FO-rewritings.

Corollary 18 shows no *polynomial-time algorithm* can construct FO- or
NDL-rewritings of the OMQs ``Q_phi = (T_dagger, q_phi)`` unless
P = NP; Theorem 19 complements it: polynomial-*size* FO-rewritings do
exist.  The rewriting is

    q'_phi  =  forall x y ((x = y) & A(x) & phi*)
               or exists x y ((x != y) & q*_phi(x, y)),

where ``phi*`` is ``true`` iff ``phi`` is satisfiable and ``q*_phi``
is the polynomial rewriting over instances with at least two constants
of [25, Corollary 14].  The theorem's point is precisely that the
*existence* of the small rewriting does not contradict Corollary 18:
writing it down requires deciding SAT once, which is exactly what no
polynomial-time constructor can do.

We reproduce the construction faithfully:

* :func:`phi_star` decides satisfiability (with the library's DPLL
  solver standing in for the oracle);
* :func:`single_constant_rewriting` builds the first disjunct, which by
  the proof of Theorem 17 is an FO-rewriting of ``Q_phi`` over all
  data instances with a single constant;
* :func:`fo_rewriting` assembles the full ``q'_phi`` with the second
  disjunct kept abstract (a caller-supplied ``q*_phi``), defaulting to
  the sound single-constant fragment.

``tests/test_fo_rewriting.py`` verifies equation (2) against the
certain-answer oracle on single-constant instances for both
satisfiable and unsatisfiable CNFs, and checks the size bound is
polynomial (in fact constant) in ``|phi|``.
"""

from __future__ import annotations

from typing import Optional

from ..data.abox import ABox
from ..queries.fo import (
    FOAtom,
    FOEq,
    FOExists,
    FOFalse,
    FOForall,
    FOFormula,
    FONot,
    FOTrue,
    evaluate_fo,
    fo_and,
    fo_or,
)
from .sat import CNF, is_satisfiable


def phi_star(cnf: CNF) -> FOFormula:
    """``phi*``: ``true`` if ``phi`` is satisfiable, else ``false``.

    This is the one non-uniform ingredient of Theorem 19 — a single
    bit whose computation is NP-hard, hard-wired into the rewriting.
    """
    return FOTrue() if is_satisfiable(cnf) else FOFalse()


def single_constant_rewriting(cnf: CNF) -> FOFormula:
    """The first disjunct of ``q'_phi``:
    ``forall x y ((x = y) & A(x) & phi*)``.

    Over a data instance with exactly one constant ``a`` this holds iff
    ``A(a)`` is in the data and ``phi`` is satisfiable — which, by the
    proof of Theorem 17, is exactly when ``T_dagger, A |= q_phi``.
    """
    body = fo_and(FOEq("x", "y"), FOAtom("A", ("x",)), phi_star(cnf))
    return FOForall(("x", "y"), body)


def multi_constant_guard() -> FOFormula:
    """``exists x y (x != y)``: the guard selecting instances with at
    least two constants (where [25, Corollary 14] applies)."""
    return FOExists(("x", "y"), FONot(FOEq("x", "y")))


def fo_rewriting(cnf: CNF,
                 q_star: Optional[FOFormula] = None) -> FOFormula:
    """The full Theorem 19 rewriting ``q'_phi``.

    ``q_star`` is the body of the second disjunct — the rewriting over
    instances with >= 2 constants of [25, Corollary 14], with free
    variables ``x`` and ``y``.  The paper only needs its existence; by
    default we plug in ``false``, making the result a *sound* rewriting
    everywhere and a complete one on single-constant instances (the
    case Theorems 17 and 19 revolve around).
    """
    if q_star is None:
        q_star = FOFalse()
    second = FOExists(("x", "y"),
                      fo_and(FONot(FOEq("x", "y")), q_star))
    return fo_or(single_constant_rewriting(cnf), second)


def holds_single_constant(cnf: CNF, abox: ABox) -> bool:
    """Evaluate ``q'_phi`` over a (single-constant) instance.

    The Boolean rewriting has no free variables, so this is plain
    sentence evaluation of (2)'s right-hand side.
    """
    return evaluate_fo(fo_rewriting(cnf), abox)
