"""The OBDA mapping layer: GAV mappings, ``M(D)`` and unfolding."""

from .mapping import (
    Database,
    Mapping,
    MappingAssertion,
    SourceAtom,
    evaluate_over_database,
)

__all__ = [
    "Database",
    "Mapping",
    "MappingAssertion",
    "SourceAtom",
    "evaluate_over_database",
]
