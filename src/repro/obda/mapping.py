"""GAV mappings: connecting the ontology vocabulary to a data schema.

Section 1 of the paper describes the full OBDA setting: a mapping ``M``
relates the source schema to the ontology vocabulary, the certain
answers are ``T, M(D) |= q(a)``, and for GAV mappings the FO/NDL
rewriting ``q'`` can be *unfolded* through ``M`` so that it can be
evaluated directly over the source database ``D`` without materialising
``M(D)``.

A GAV mapping is a set of assertions ``S(x) <- phi(x, y)`` with ``S`` a
unary/binary ontology predicate and ``phi`` a conjunction of source
atoms (of arbitrary arity).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..data.abox import ABox
from ..datalog.evaluate import evaluate
from ..datalog.program import ADOM, Clause, Literal, NDLQuery, Program


@dataclass(frozen=True)
class SourceAtom:
    """An atom over the source schema (any arity)."""

    relation: str
    args: Tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.args)})"


@dataclass(frozen=True)
class MappingAssertion:
    """One GAV assertion ``target(head_vars) <- body``."""

    target: str
    head_vars: Tuple[str, ...]
    body: Tuple[SourceAtom, ...]

    def __post_init__(self):
        bound = {var for atom in self.body for var in atom.args}
        if not set(self.head_vars) <= bound:
            raise ValueError(
                f"unsafe mapping assertion for {self.target}: head "
                "variables must occur in the body")

    def __str__(self) -> str:
        body = " & ".join(str(atom) for atom in self.body)
        return f"{self.target}({', '.join(self.head_vars)}) <- {body}"


class Database:
    """A source database instance: named relations of constant tuples."""

    def __init__(self):
        self._relations: Dict[str, set] = {}

    def add(self, relation: str, *row: str) -> None:
        self._relations.setdefault(relation, set()).add(tuple(row))

    def rows(self, relation: str) -> frozenset:
        return frozenset(self._relations.get(relation, ()))

    @property
    def relations(self) -> frozenset:
        return frozenset(self._relations)

    @property
    def constants(self) -> frozenset:
        return frozenset(constant
                         for rows in self._relations.values()
                         for row in rows
                         for constant in row)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._relations.values())


class Mapping:
    """A GAV mapping ``M``: a finite set of assertions."""

    def __init__(self, assertions: Iterable[MappingAssertion] = ()):
        self.assertions: List[MappingAssertion] = list(assertions)

    def add(self, target: str, head_vars: Sequence[str],
            body: Sequence[Tuple[str, Sequence[str]]]) -> None:
        """Convenience: ``add("A", ["x"], [("emp", ["x", "d"])])``."""
        atoms = tuple(SourceAtom(rel, tuple(args)) for rel, args in body)
        self.assertions.append(
            MappingAssertion(target, tuple(head_vars), atoms))

    def assertions_for(self, target: str) -> List[MappingAssertion]:
        return [a for a in self.assertions if a.target == target]

    @property
    def targets(self) -> frozenset:
        return frozenset(a.target for a in self.assertions)

    # -- materialisation ---------------------------------------------------

    def apply(self, database: Database) -> ABox:
        """``M(D)``: the virtual ABox, materialised.

        Each assertion is evaluated as a conjunctive query over the
        source database.
        """
        abox = ABox()
        for assertion in self.assertions:
            for row in self._evaluate_body(assertion, database):
                abox.add(assertion.target, *row)
        return abox

    @staticmethod
    def _evaluate_body(assertion: MappingAssertion,
                       database: Database) -> Iterable[Tuple[str, ...]]:
        bindings: List[Dict[str, str]] = [{}]
        for atom in assertion.body:
            rows = database.rows(atom.relation)
            extended: List[Dict[str, str]] = []
            for binding in bindings:
                for row in rows:
                    if len(row) != len(atom.args):
                        continue
                    candidate = dict(binding)
                    consistent = True
                    for var, value in zip(atom.args, row):
                        if candidate.get(var, value) != value:
                            consistent = False
                            break
                        candidate[var] = value
                    if consistent:
                        extended.append(candidate)
            bindings = extended
            if not bindings:
                return []
        return {tuple(binding[var] for var in assertion.head_vars)
                for binding in bindings}

    # -- unfolding -----------------------------------------------------------

    def unfold(self, query: NDLQuery) -> NDLQuery:
        """Unfold an NDL rewriting through the mapping: every ontology
        EDB atom is replaced by the union of its mapping definitions,
        yielding an NDL query over the *source schema* (so ``M(D)``
        never needs to be materialised — the classical OBDA pipeline of
        Section 1)."""
        program = query.program
        idb = program.idb_predicates
        fresh = itertools.count()
        clauses: List[Clause] = []
        defined: Dict[str, str] = {}
        for target in sorted(self.targets):
            name = f"_m_{target}"
            defined[target] = name
            for assertion in self.assertions_for(target):
                suffix = f"_m{next(fresh)}"
                rename = {
                    var: (var if var in assertion.head_vars
                          else var + suffix)
                    for atom in assertion.body for var in atom.args}
                body = tuple(Literal(atom.relation,
                                     tuple(rename[v] for v in atom.args))
                             for atom in assertion.body)
                clauses.append(
                    Clause(Literal(name, assertion.head_vars), body))
        adom_clauses_needed = False
        for clause in program.clauses:
            body: List[object] = []
            for atom in clause.body:
                if isinstance(atom, Literal) and atom.predicate not in idb:
                    if atom.predicate in defined:
                        body.append(Literal(defined[atom.predicate],
                                            atom.args))
                    elif atom.predicate == ADOM:
                        adom_clauses_needed = True
                        body.append(Literal("_m_adom", atom.args))
                    else:
                        # an ontology predicate with no mapping assertion
                        # has an empty extension; drop the clause
                        body = None
                        break
                else:
                    body.append(atom)
            if body is not None:
                clauses.append(Clause(clause.head, tuple(body)))
        if adom_clauses_needed:
            for target in sorted(self.targets):
                arity = len(self.assertions_for(target)[0].head_vars)
                for position in range(arity):
                    args = tuple(f"v{i}" for i in range(arity))
                    clauses.append(Clause(
                        Literal("_m_adom", (args[position],)),
                        (Literal(defined[target], args),)))
        return NDLQuery(Program(clauses), query.goal, query.answer_vars)


def evaluate_over_database(query: NDLQuery, mapping: Mapping,
                           database: Database):
    """Evaluate an unfolded NDL query directly over the source database
    (source relations of any arity become EDB facts of the engine)."""
    unfolded = mapping.unfold(query)
    extra = {relation: set(database.rows(relation))
             for relation in database.relations}
    return evaluate(unfolded, ABox(), extra_relations=extra)
