"""Command-line interface: rewrite and answer OMQs from files.

Usage (after ``pip install -e .``)::

    python -m repro rewrite --tbox onto.txt --query "R(x,y), S(y,z)" \
        --answers x --method lin
    python -m repro answer --tbox onto.txt --data data.txt \
        --query "R(x,y)" --answers x,y
    python -m repro answer --tbox onto.txt --data data.txt \
        --query "R(x,y)" --query "S(x,y)" --answers x   # one session
    python -m repro classify --tbox onto.txt --query "R(x,y), S(y,z)"
    python -m repro landscape
    python -m repro serve --port 8080 --dataset demo=data.txt

The TBox file uses the :meth:`repro.ontology.TBox.parse` syntax and the
data file the :meth:`repro.data.ABox.parse` syntax.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .chase.consistency import is_consistent
from .data import ABox
from .ontology import TBox
from .queries import CQ
from .rewriting import OMQ, AnswerSession, rewrite


def _load_tbox(path: str) -> TBox:
    with open(path) as handle:
        return TBox.parse(handle.read())


def _load_query(text: str, answers: Optional[str]) -> CQ:
    answer_vars = [v.strip() for v in answers.split(",")] if answers else []
    return CQ.parse(text, answer_vars=answer_vars)


def _cmd_rewrite(args) -> int:
    tbox = _load_tbox(args.tbox)
    query = _load_query(args.query, args.answers)
    ndl = rewrite(OMQ(tbox, query), method=args.method, over=args.over)
    print(f"# method={args.method} clauses={len(ndl)} "
          f"width={ndl.width()} depth={ndl.depth()}")
    print(ndl)
    return 0


def _cmd_answer(args) -> int:
    import time

    tbox = _load_tbox(args.tbox)
    answer_specs = args.answers or [None]
    if len(answer_specs) == 1:
        answer_specs = answer_specs * len(args.query)
    if len(answer_specs) != len(args.query):
        print(f"# got {len(args.query)} --query but "
              f"{len(args.answers)} --answers (need one per query, "
              "or a single one shared by all)", file=sys.stderr)
        return 1
    queries = [_load_query(text, answers)
               for text, answers in zip(args.query, answer_specs)]
    with open(args.data) as handle:
        abox = ABox.parse(handle.read())
    if not is_consistent(tbox, abox):
        print("# data is INCONSISTENT with the ontology: every tuple is "
              "a certain answer", file=sys.stderr)
        return 2
    # one session for all queries: the data is completed, loaded and
    # indexed once, each --query only pays rewriting + evaluation
    with AnswerSession(abox, engine=args.engine) as session:
        for position, query in enumerate(queries):
            started = time.perf_counter()
            result = session.answer(OMQ(tbox, query), method=args.method,
                                    optimize_program=args.optimize,
                                    magic=args.magic)
            elapsed = time.perf_counter() - started
            if len(queries) > 1:
                print(f"# [{position}] {query}")
            for row in sorted(result.answers):
                print("\t".join(row) if row else "true")
            if not result.answers and query.is_boolean:
                print("false")
            print(f"# {len(result.answers)} answers, "
                  f"{result.generated_tuples} tuples materialised, "
                  f"{elapsed * 1000:.1f} ms",
                  file=sys.stderr)
    return 0


def _cmd_sql(args) -> int:
    from .sql import compile_query

    tbox = _load_tbox(args.tbox)
    query = _load_query(args.query, args.answers)
    ndl = rewrite(OMQ(tbox, query), method=args.method)
    compilation = compile_query(ndl, materialised=args.materialised)
    print(compilation.script())
    return 0


def _cmd_classify(args) -> int:
    tbox = _load_tbox(args.tbox)
    query = _load_query(args.query, args.answers)
    omq = OMQ(tbox, query)
    from .complexity import combined_complexity

    import math

    depth = omq.depth
    leaves = omq.leaves if omq.leaves is not None else math.inf
    treewidth = 1 if query.is_tree_shaped else omq.treewidth
    print(f"class:    {omq.omq_class()}")
    print(f"depth:    {depth}")
    print(f"shape:    tree={query.is_tree_shaped} linear={query.is_linear} "
          f"leaves={omq.leaves} treewidth={omq.treewidth}")
    print(f"combined: {combined_complexity(depth, treewidth, leaves)}")
    return 0


def _cmd_landscape(_args) -> int:
    from .complexity import landscape_grid
    from .experiments.reporting import format_table

    grid = landscape_grid()
    print(format_table(
        ["depth", "query shape", "combined", "rewriting sizes"],
        [[row["depth"], row["shape"], row["combined"], row["rewritings"]]
         for row in grid]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OMQ rewriting and answering "
                    "(Bienvenu et al., PODS 2017 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_data=False, multi_query=False):
        p.add_argument("--tbox", required=True,
                       help="path to the ontology file")
        if multi_query:
            p.add_argument("--query", required=True, action="append",
                           help="CQ body, e.g. 'R(x,y), S(y,z)'; repeat "
                                "to answer several queries over one "
                                "loaded session")
            p.add_argument("--answers", default=None, action="append",
                           help="comma-separated answer variables (once "
                                "per --query, or once for all)")
        else:
            p.add_argument("--query", required=True,
                           help="CQ body, e.g. 'R(x,y), S(y,z)'")
            p.add_argument("--answers", default=None,
                           help="comma-separated answer variables")
        if with_data:
            p.add_argument("--data", required=True,
                           help="path to the data file")
        p.add_argument("--method", default="auto",
                       help="auto|lin|log|tw|tw_star|ucq|perfectref|presto")

    rewrite_parser = sub.add_parser("rewrite",
                                    help="print the NDL rewriting")
    common(rewrite_parser)
    rewrite_parser.add_argument("--over", default="complete",
                                choices=("complete", "arbitrary"))
    rewrite_parser.set_defaults(func=_cmd_rewrite)

    answer_parser = sub.add_parser("answer",
                                   help="compute certain answers")
    common(answer_parser, with_data=True, multi_query=True)
    answer_parser.add_argument("--engine", default="python",
                               choices=("python", "sql", "sql-views"),
                               help="evaluation backend")
    answer_parser.add_argument("--optimize", action="store_true",
                               help="run the Appendix D.4 optimiser on "
                                    "the rewriting first")
    answer_parser.add_argument("--magic", action="store_true",
                               help="apply the magic-sets transformation")
    answer_parser.set_defaults(func=_cmd_answer)

    sql_parser = sub.add_parser(
        "sql", help="print the rewriting compiled to SQL (Section 6's "
                    "'views in standard DBMSs')")
    common(sql_parser)
    sql_parser.add_argument("--materialised", action="store_true",
                            help="CREATE TABLE statements instead of views")
    sql_parser.set_defaults(func=_cmd_sql)

    classify_parser = sub.add_parser("classify",
                                     help="classify the OMQ (Figure 1)")
    common(classify_parser)
    classify_parser.set_defaults(func=_cmd_classify)

    landscape_parser = sub.add_parser("landscape",
                                      help="print the Figure 1 grid")
    landscape_parser.set_defaults(func=_cmd_landscape)

    serve_parser = sub.add_parser(
        "serve", help="serve OMQ answering over JSON/HTTP "
                      "(see repro.service)")
    from .service.serve import add_serve_arguments

    add_serve_arguments(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)
    return parser


def _cmd_serve(args) -> int:
    from .service.serve import run

    return run(args)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
