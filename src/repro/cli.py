"""Command-line interface: rewrite and answer OMQs from files.

Usage (after ``pip install -e .``)::

    python -m repro rewrite --tbox onto.txt --query "R(x,y), S(y,z)" \
        --answers x --method lin
    python -m repro answer --tbox onto.txt --data data.txt \
        --query "R(x,y)" --answers x,y
    python -m repro answer --tbox onto.txt --data data.txt \
        --query "R(x,y)" --query "S(x,y)" --answers x   # one session
    python -m repro explain --tbox onto.txt --query "R(x,y)" \
        --answers x --method tw --json
    python -m repro classify --tbox onto.txt --query "R(x,y), S(y,z)"
    python -m repro landscape
    python -m repro serve --port 8080 --dataset demo=data.txt
    python -m repro serve --async-io --port 8081   # coalescing asyncio
    python -m repro subscribe --url http://127.0.0.1:8080 \
        --dataset demo --tbox onto.txt --query "R(x,y)" --answers x,y

The TBox file uses the :meth:`repro.ontology.TBox.parse` syntax and the
data file the :meth:`repro.data.ABox.parse` syntax.  Every pipeline
subcommand builds one :class:`~repro.rewriting.plan.AnswerOptions`
from its flags and runs the compiled :mod:`repro.rewriting.plan`
pipeline; ``explain`` prints the plan report without evaluating.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .chase.consistency import is_consistent
from .data import ABox
from .ontology import TBox
from .queries import CQ
from .engine import ENGINES
from .rewriting import OMQ, AnswerSession
from .rewriting.plan import AnswerOptions, compile_omq, format_explain
from .shard import ShardedSession


def _load_tbox(path: str) -> TBox:
    with open(path) as handle:
        return TBox.parse(handle.read())


def _load_query(text: str, answers: Optional[str]) -> CQ:
    answer_vars = [v.strip() for v in answers.split(",")] if answers else []
    return CQ.parse(text, answer_vars=answer_vars)


def shard_count(value: str):
    """``--shards`` values: a non-negative int or the string 'auto'."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}") from None


def _options(args, **extra) -> AnswerOptions:
    """One ``AnswerOptions`` from a parsed namespace's pipeline flags."""
    fields = {"method": getattr(args, "method", None),
              "magic": getattr(args, "magic", None),
              "optimize": getattr(args, "optimize", None),
              "optimize_sql": getattr(args, "optimize_sql", None),
              "engine": getattr(args, "engine", None),
              "timeout": getattr(args, "timeout", None),
              "over": getattr(args, "over", None)}
    fields.update(extra)
    return AnswerOptions.coerce(
        {key: value for key, value in fields.items() if value is not None})


def _cmd_rewrite(args) -> int:
    tbox = _load_tbox(args.tbox)
    query = _load_query(args.query, args.answers)
    plan = compile_omq(OMQ(tbox, query), _options(args))
    print(f"# method={args.method} clauses={plan.rules} "
          f"width={plan.width} depth={plan.depth}")
    print(plan.ndl)
    return 0


def _cmd_explain(args) -> int:
    import json

    tbox = _load_tbox(args.tbox)
    query = _load_query(args.query, args.answers)
    data = None
    options = _options(args)
    if args.data:
        with open(args.data) as handle:
            abox = ABox.parse(handle.read())
        # same variant rule as AnswerSession.compile: arbitrary-
        # instance rewritings are explained against the raw data
        raw = (options.method == "perfectref"
               or options.over == "arbitrary")
        data = abox if raw else abox.complete(tbox)
    try:
        plan = compile_omq(OMQ(tbox, query), options, data=data)
    except ValueError as error:
        print(f"# {error}", file=sys.stderr)
        return 1
    report = plan.explain()
    print(json.dumps(report, indent=2) if args.json
          else format_explain(report))
    return 0


def _cmd_answer(args) -> int:
    tbox = _load_tbox(args.tbox)
    answer_specs = args.answers or [None]
    if len(answer_specs) == 1:
        answer_specs = answer_specs * len(args.query)
    if len(answer_specs) != len(args.query):
        print(f"# got {len(args.query)} --query but "
              f"{len(args.answers)} --answers (need one per query, "
              "or a single one shared by all)", file=sys.stderr)
        return 1
    queries = [_load_query(text, answers)
               for text, answers in zip(args.query, answer_specs)]
    with open(args.data) as handle:
        abox = ABox.parse(handle.read())
    if not is_consistent(tbox, abox):
        print("# data is INCONSISTENT with the ontology: every tuple is "
              "a certain answer", file=sys.stderr)
        return 2
    options = _options(args)
    # one session for all queries: the data is completed, loaded and
    # indexed once, each --query only pays compilation + evaluation
    # (--shards >= 2, or 'auto', partitions the data by Gaifman
    # components and scatter-gathers every plan over per-shard engines)
    if args.shards == "auto" or args.shards >= 2:
        session = ShardedSession(
            abox, shards=args.shards, engine=args.engine,
            start_method=getattr(args, "start_method", None))
    else:
        session = AnswerSession(abox, engine=args.engine)
    with session:
        for position, query in enumerate(queries):
            active = None
            if getattr(args, "trace", False):
                from .obs.trace import Trace, tracing

                active = Trace(wanted=True)
                with tracing(active):
                    plan = session.compile(OMQ(tbox, query), options)
                    result = plan.execute(session)
            else:
                plan = session.compile(OMQ(tbox, query), options)
                result = plan.execute(session)
            if len(queries) > 1:
                print(f"# [{position}] {query}")
            for row in sorted(result.answers):
                print("\t".join(row) if row else "true")
            if not result.answers and query.is_boolean:
                print("false")
            # compile + evaluate, matching what this query actually
            # cost (and what the pre-plan CLI reported)
            elapsed = sum(plan.timings.values()) + result.seconds
            print(f"# {len(result.answers)} answers, "
                  f"{result.generated_tuples} tuples materialised, "
                  f"{elapsed * 1000:.1f} ms",
                  file=sys.stderr)
            if active is not None:
                print(f"# trace {active.trace_id}", file=sys.stderr)
                for entry in active.flat_spans():
                    print(f"#   {entry['name']}: "
                          f"{entry['seconds'] * 1000:.2f} ms",
                          file=sys.stderr)
    return 0


def _cmd_sql(args) -> int:
    from .sql import compile_query

    tbox = _load_tbox(args.tbox)
    query = _load_query(args.query, args.answers)
    plan = compile_omq(OMQ(tbox, query), _options(args))
    compilation = compile_query(plan.ndl, materialised=args.materialised,
                                optimize=args.optimize_sql,
                                dialect=args.dialect)
    for entry in compilation.passes:
        mark = " *" if entry.get("changed") else ""
        print(f"-- pass {entry['pass']}: {entry['before']} -> "
              f"{entry['after']} nodes{mark}")
    print(compilation.script())
    return 0


def _cmd_classify(args) -> int:
    tbox = _load_tbox(args.tbox)
    query = _load_query(args.query, args.answers)
    omq = OMQ(tbox, query)
    from .complexity import combined_complexity

    import math

    depth = omq.depth
    leaves = omq.leaves if omq.leaves is not None else math.inf
    treewidth = 1 if query.is_tree_shaped else omq.treewidth
    print(f"class:    {omq.omq_class()}")
    print(f"depth:    {depth}")
    print(f"shape:    tree={query.is_tree_shaped} linear={query.is_linear} "
          f"leaves={omq.leaves} treewidth={omq.treewidth}")
    print(f"combined: {combined_complexity(depth, treewidth, leaves)}")
    return 0


def _cmd_landscape(_args) -> int:
    from .complexity import landscape_grid
    from .experiments.reporting import format_table

    grid = landscape_grid()
    print(format_table(
        ["depth", "query shape", "combined", "rewriting sizes"],
        [[row["depth"], row["shape"], row["combined"], row["rewritings"]]
         for row in grid]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OMQ rewriting and answering "
                    "(Bienvenu et al., PODS 2017 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_data=False, multi_query=False):
        p.add_argument("--tbox", required=True,
                       help="path to the ontology file")
        if multi_query:
            p.add_argument("--query", required=True, action="append",
                           help="CQ body, e.g. 'R(x,y), S(y,z)'; repeat "
                                "to answer several queries over one "
                                "loaded session")
            p.add_argument("--answers", default=None, action="append",
                           help="comma-separated answer variables (once "
                                "per --query, or once for all)")
        else:
            p.add_argument("--query", required=True,
                           help="CQ body, e.g. 'R(x,y), S(y,z)'")
            p.add_argument("--answers", default=None,
                           help="comma-separated answer variables")
        if with_data:
            p.add_argument("--data", required=True,
                           help="path to the data file")
        p.add_argument("--method", default="auto",
                       help="auto|lin|log|tw|tw_star|ucq|perfectref|presto")

    rewrite_parser = sub.add_parser("rewrite",
                                    help="print the NDL rewriting")
    common(rewrite_parser)
    rewrite_parser.add_argument("--over", default="complete",
                                choices=("complete", "arbitrary"))
    rewrite_parser.set_defaults(func=_cmd_rewrite)

    explain_parser = sub.add_parser(
        "explain", help="compile the OMQ and print the plan report "
                        "(method chosen, rewriting size/width/depth, "
                        "per-stage timings) without evaluating")
    common(explain_parser)
    explain_parser.add_argument("--over", default="complete",
                                choices=("complete", "arbitrary"))
    explain_parser.add_argument("--engine", default=None,
                                choices=ENGINES,
                                help="execution engine to record in the "
                                     "plan")
    explain_parser.add_argument("--optimize-sql", action="store_true",
                                dest="optimize_sql",
                                help="run the SQL optimizer pass "
                                     "pipeline (reported in the plan's "
                                     "sql section)")
    explain_parser.add_argument("--magic", action="store_true",
                                help="apply the magic-sets transformation")
    explain_parser.add_argument("--optimize", action="store_true",
                                help="run the Appendix D.4 optimiser")
    explain_parser.add_argument("--timeout", type=float, default=None,
                                help="soft evaluation budget (seconds) to "
                                     "record in the plan")
    explain_parser.add_argument("--data", default=None,
                                help="data file for the data-dependent "
                                     "stages (adaptive / --optimize "
                                     "pruning)")
    explain_parser.add_argument("--json", action="store_true",
                                help="print the report as JSON")
    explain_parser.set_defaults(func=_cmd_explain)

    answer_parser = sub.add_parser("answer",
                                   help="compute certain answers")
    common(answer_parser, with_data=True, multi_query=True)
    answer_parser.add_argument("--engine", default="python",
                               choices=ENGINES,
                               help="evaluation backend")
    answer_parser.add_argument("--optimize-sql", action="store_true",
                               dest="optimize_sql",
                               help="run the SQL optimizer pass "
                                    "pipeline on SQL engines")
    answer_parser.add_argument("--shards", type=shard_count, default=0,
                               help="partition the data into this many "
                                    "component shards and evaluate "
                                    "scatter-gather (>= 2 to enable, "
                                    "'auto' to size from CPUs and "
                                    "component skew)")
    answer_parser.add_argument("--start-method", default=None,
                               dest="start_method",
                               choices=("fork", "forkserver", "spawn"),
                               help="worker start method for process-"
                                    "backed sharding (default: auto-"
                                    "select)")
    answer_parser.add_argument("--optimize", action="store_true",
                               help="run the Appendix D.4 optimiser on "
                                    "the rewriting first")
    answer_parser.add_argument("--trace", action="store_true",
                               help="print a per-span timing breakdown "
                                    "(compile stages, cache lookups, "
                                    "per-shard execution) to stderr")
    answer_parser.add_argument("--magic", action="store_true",
                               help="apply the magic-sets transformation")
    answer_parser.set_defaults(func=_cmd_answer)

    sql_parser = sub.add_parser(
        "sql", help="print the rewriting compiled to SQL (Section 6's "
                    "'views in standard DBMSs')")
    common(sql_parser)
    sql_parser.add_argument("--materialised", action="store_true",
                            help="CREATE TABLE statements instead of views")
    sql_parser.add_argument("--optimize-sql", action="store_true",
                            dest="optimize_sql",
                            help="run the optimizer pass pipeline first "
                                 "(pass log printed as -- comments)")
    sql_parser.add_argument("--dialect", default="sqlite",
                            choices=("sqlite", "duckdb"),
                            help="SQL dialect to render")
    sql_parser.set_defaults(func=_cmd_sql)

    classify_parser = sub.add_parser("classify",
                                     help="classify the OMQ (Figure 1)")
    common(classify_parser)
    classify_parser.set_defaults(func=_cmd_classify)

    landscape_parser = sub.add_parser("landscape",
                                      help="print the Figure 1 grid")
    landscape_parser.set_defaults(func=_cmd_landscape)

    serve_parser = sub.add_parser(
        "serve", help="serve OMQ answering over JSON/HTTP "
                      "(see repro.service)")
    from .service.serve import add_serve_arguments

    add_serve_arguments(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    subscribe_parser = sub.add_parser(
        "subscribe", help="register a standing query against a running "
                          "server and print its answer deltas as they "
                          "arrive (long-poll; see repro.standing)")
    common(subscribe_parser)
    subscribe_parser.add_argument("--url", default="http://127.0.0.1:8080",
                                  help="server base URL")
    subscribe_parser.add_argument("--dataset", required=True,
                                  help="registered dataset to watch")
    subscribe_parser.add_argument("--tenant", default="",
                                  help="tenant namespace to subscribe in "
                                       "(sent as X-Repro-Tenant)")
    subscribe_parser.add_argument("--engine", default=None, choices=ENGINES,
                                  help="evaluation backend for maintenance")
    subscribe_parser.add_argument("--poll-timeout", type=float, default=25.0,
                                  dest="poll_timeout",
                                  help="seconds each long-poll may block")
    subscribe_parser.add_argument("--max-deltas", type=int, default=0,
                                  dest="max_deltas",
                                  help="exit after this many deltas "
                                       "(0 = run until interrupted)")
    subscribe_parser.set_defaults(func=_cmd_subscribe)
    return parser


def _cmd_serve(args) -> int:
    from .service.serve import run

    return run(args)


def _cmd_subscribe(args) -> int:
    from .client import Client

    tbox = _load_tbox(args.tbox)
    query = _load_query(args.query, args.answers)
    client = Client.connect(args.url, timeout=args.poll_timeout + 30.0,
                            tenant=args.tenant)
    sub = client.subscribe(args.dataset, OMQ(tbox, query), _options(args))
    print(f"# subscribed {sub.subscription_id} to dataset "
          f"{args.dataset!r} at epoch {sub.epoch} "
          f"({len(sub.answers)} answers)", file=sys.stderr)
    for row in sorted(sub.answers):
        print("\t".join(row) if row else "true")
    received = 0
    try:
        while args.max_deltas <= 0 or received < args.max_deltas:
            for delta in sub.poll(timeout=args.poll_timeout):
                received += 1
                if delta.resync:
                    print(f"# resync epoch={delta.epoch}")
                    for row in sorted(delta.answers or ()):
                        print("= " + ("\t".join(row) if row else "true"))
                else:
                    print(f"# delta epoch={delta.epoch}")
                    for row in sorted(delta.added):
                        print("+ " + ("\t".join(row) if row else "true"))
                    for row in sorted(delta.removed):
                        print("- " + ("\t".join(row) if row else "true"))
                if args.max_deltas > 0 and received >= args.max_deltas:
                    break
    except KeyboardInterrupt:
        pass
    finally:
        try:
            sub.unsubscribe()
        except Exception:
            pass  # server already gone; nothing to clean up
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
