"""Asyncio front-end: request coalescing, micro-batching, backpressure.

The threaded server (:mod:`repro.service.serve`) spends one blocking
thread per connection and evaluates every request, even when dozens of
clients ask the same question at the same moment — the norm for a hot
OMQ under heavy traffic.  This front-end serves the same protocol
(:mod:`repro.service.protocol`) over stdlib ``asyncio`` streams and
buys throughput three ways:

* **Request coalescing** — concurrent ``/answer`` requests with the
  same ``(dataset, data version, engine, timeout, plan-cache key)``
  await *one* shared execution future instead of running N identical
  ``Plan.execute`` calls.  The plan-cache key is canonical up to
  variable renaming, so clients that regenerate variable names still
  coalesce.  The data version is a per-dataset epoch bumped whenever
  an update (or re-registration) completes: a request that arrives
  after an update never joins an execution that read the old data.
* **Micro-batching** — admitted ``/answer`` requests gather for a
  short window (``batch_window`` seconds, or until ``max_batch`` are
  queued) and run as one :meth:`OMQService.answer_batch` call on a
  bounded worker-thread pool, sharing read locks and in-batch
  deduplication.
* **Admission control** — once ``max_pending`` requests are queued or
  executing, new work is rejected with ``429`` and a ``Retry-After``
  header instead of growing an unbounded queue.  Joining an in-flight
  coalesced execution is always admitted: it adds no work.

Standing queries (:mod:`repro.standing`) get their push transport
here: ``GET /subscribe?subscription=ID`` streams incremental answer
deltas as Server-Sent Events (``snapshot``, then ``delta`` /
``resync`` / ``closed`` frames), and ``POST /poll`` long-polls on a
dedicated thread so parked pollers never occupy the worker pool.
Parked polls are bounded separately (``max_polls``, each costs an OS
thread): past the cap new polls are rejected with 429.

Counters for all three (plus queue depth high-water marks) are served
under ``"async_serving"`` in ``GET /stats`` and as ``repro_async_*``
families on ``GET /metrics`` (Prometheus text format, identical
family set to the threaded server).  Every response echoes the
request's trace ID as ``X-Repro-Trace-Id``.  Start it with
``python -m repro serve --async-io`` or embed it in tests via
:func:`serve_in_background`.

The async front-end is also the natural *shard worker* for multi-node
sharded execution: a front node running an
:class:`~repro.shard.executor.HttpExecutor` registers one dataset per
shard on a pool of these servers and scatter-gathers ``/answer``
requests over them concurrently, trace IDs riding along — see
``repro serve --shard-executor http://worker1,http://worker2``.
"""

from __future__ import annotations

import asyncio
import contextvars
import dataclasses
import functools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from ..obs.trace import Trace, span, tracing
from ..standing.push import RESYNC, SubscriberStream, sse_event
from .protocol import (
    TENANT_HEADER,
    TRACE_HEADER,
    ProtocolError,
    Router,
    begin_trace,
    decode_json_body,
    encode_body,
    error_payload,
    overloaded_error,
    parse_content_length,
    resolve_tenant,
)
from .service import BatchRequest, OMQService

#: Routes whose successful POST changes what a dataset's answers are —
#: each bumps the touched dataset's coalescing epoch.
_DATA_ROUTES = ("/update", "/datasets")


class AsyncServiceServer:
    """The asyncio HTTP server bound to one :class:`OMQService`.

    All mutable coordination state (the in-flight map, the pending
    micro-batch, the counters) is confined to the event loop thread;
    only ``OMQService`` calls run on the worker pool, so no locks are
    needed here.
    """

    def __init__(self, service: OMQService, host: str = "127.0.0.1",
                 port: int = 8081, *, workers: int = 4,
                 max_pending: int = 128, batch_window: float = 0.002,
                 max_batch: int = 16, max_polls: int = 64,
                 verbose: bool = False):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_polls < 1:
            raise ValueError("max_polls must be >= 1")
        self.service = service
        self.host = host
        self.port = port
        self.workers = max(1, workers)
        self.max_pending = max_pending
        self.batch_window = max(0.0, batch_window)
        self.max_batch = max_batch
        self.max_polls = max_polls
        self.verbose = verbose
        # no extra_stats hook: the counters are event-loop-confined, so
        # /stats snapshots them on the loop and merges after the
        # service part is fetched on the worker pool
        self.router = Router(service)
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # event-loop-confined serving state
        self._inflight: Dict[Tuple, asyncio.Future] = {}
        self._pending: List[Tuple[Tuple, BatchRequest]] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._executing = 0
        self._active_polls = 0
        #: ``(tenant, dataset)`` -> coalescing epoch.
        self._epochs: Dict[Tuple[str, str], int] = {}
        self._connections: set = set()
        # counters live in the service's metrics registry (and are
        # served both under "async_serving" in /stats and as the
        # repro_async_* families on GET /metrics); the high-water
        # marks stay loop-confined ints mirrored into gauges
        self._obs = service.obs
        self._peak_pending = 0
        self._peak_polls = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (port 0 auto-assigns) and the
        worker pool; returns with :attr:`address` resolved."""
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-aserve")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, close open connections, fail queued work,
        release the worker pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # idle keep-alive connections park their handler tasks in a
        # readline; they must be cancelled and awaited before the
        # caller tears the event loop down under them
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        self._connections.clear()
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        for key, _ in self._pending:
            future = self._inflight.pop(key, None)
            if future is not None and not future.done():
                future.set_exception(
                    ProtocolError("server shutting down", status=503,
                                  error_type="overloaded"))
        self._pending.clear()
        if self.service.store is not None and self._executor is not None:
            # checkpoint before the pool goes away: a graceful async
            # stop must leave fully-folded store files, same as the
            # threaded server's shutdown path
            await self._loop.run_in_executor(self._executor,
                                             self.service.checkpoint)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- coalescing + micro-batching -----------------------------------------

    def _coalesce_key(self, request: BatchRequest) -> Tuple:
        """Identity of one unit of answer work.

        Folds in everything that changes the bytes of the response:
        the tenant and dataset with its current epoch (updates bump
        it), the engine, the execution timeout, and the canonical
        plan-cache key (TBox, CQ up to variable renaming, compile
        options).  The tenant is part of the identity — two tenants'
        same-named datasets are different data.
        """
        options = request.answer_options()
        engine = options.engine or self.service.default_engine
        scoped = (request.tenant, request.dataset)
        return (scoped, self._epochs.get(scoped, 0),
                engine, options.timeout,
                self.service.cache.key(request.omq, options))

    def _queue_depth(self) -> int:
        return len(self._pending) + self._executing

    def _note_depth(self) -> None:
        """Mirror the queue depth (and its high-water mark) into the
        ``repro_async_pending`` / ``repro_async_peak_pending`` gauges."""
        depth = self._queue_depth()
        self._obs.async_pending.set(depth)
        if depth > self._peak_pending:
            self._peak_pending = depth
            self._obs.async_peak_pending.set(depth)

    def _admit(self, units: int = 1) -> None:
        """Reject new work with 429 once the queue is saturated."""
        depth = self._queue_depth()
        if depth + units > self.max_pending:
            self._obs.async_rejected.inc(units)
            raise overloaded_error(depth, self.max_pending)

    async def _handle_answer(self, payload: Dict, tenant: str = "",
                             trace: Optional[Trace] = None
                             ) -> Tuple[int, Dict]:
        with span("decode"):
            request = self.router.decode_answer(payload, tenant=tenant)
        key = self._coalesce_key(request)
        future = self._inflight.get(key)
        if future is not None:
            # joining in-flight identical work is free: no admission.
            # The joiner's trace stays shallow (decode + encode only);
            # the execution spans belong to the leader's trace.
            self._obs.async_coalesced.inc()
            result = await asyncio.shield(future)
            body = dict(self.router.result_payload(result))
            body["coalesced"] = True
            return 200, body
        self._admit()
        # the worker thread that runs the micro-batch activates this
        # trace around the leader's job, so execute/cache spans and
        # plan-fingerprint annotations land on the originating request
        if trace is not None:
            request = dataclasses.replace(request, trace=trace)
        future = self._loop.create_future()
        self._inflight[key] = future
        self._pending.append((key, request))
        self._note_depth()
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._flush_handle is None:
            self._flush_handle = self._loop.call_later(self.batch_window,
                                                       self._flush)
        result = await asyncio.shield(future)
        body = dict(self.router.result_payload(result))
        body["coalesced"] = False
        return 200, body

    def _flush(self) -> None:
        """Hand the gathered micro-batch to the worker pool."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self._executing += len(batch)
        self._obs.async_batches.inc()
        self._obs.async_batched_requests.inc(len(batch))
        self._loop.create_task(self._run_batch(batch))

    async def _run_batch(self, batch: List[Tuple[Tuple, BatchRequest]]) -> None:
        requests = [request for _, request in batch]
        try:
            results = await self._loop.run_in_executor(
                self._executor, self.service.answer_batch, requests)
        except Exception:
            # answer_batch fails as a unit (e.g. one unknown dataset
            # aborts lock acquisition for all).  One bad request must
            # not poison its batchmates: retry each alone so only the
            # offender's waiters see its error.
            await self._settle_individually(batch)
            return
        finally:
            self._executing -= len(batch)
            self._note_depth()
        for (key, _), result in zip(batch, results):
            # pop before resolving: once resolved the result is no
            # longer "in flight" and must not absorb later arrivals
            future = self._inflight.pop(key, None)
            if future is not None and not future.done():
                future.set_result(result)

    async def _settle_individually(
            self, batch: List[Tuple[Tuple, BatchRequest]]) -> None:
        for key, request in batch:
            future = self._inflight.pop(key, None)
            if future is None or future.done():
                continue
            try:
                result = await self._loop.run_in_executor(
                    self._executor, self._answer_one, request)
            except Exception as error:
                future.set_exception(error)
            else:
                future.set_result(result)

    def _answer_one(self, request: BatchRequest):
        return self.service.answer(request.dataset, request.omq,
                                   options=request.answer_options(),
                                   tenant=request.tenant)

    # -- other routes --------------------------------------------------------

    def _counters_payload(self) -> Dict[str, object]:
        obs = self._obs
        return {"async_serving": {
            "requests": int(obs.async_requests.value),
            "coalesced": int(obs.async_coalesced.value),
            "batches": int(obs.async_batches.value),
            "batched_requests": int(obs.async_batched_requests.value),
            "rejected": int(obs.async_rejected.value),
            "pending": self._queue_depth(),
            "peak_pending": self._peak_pending,
            "max_pending": self.max_pending,
            "parked_polls": self._active_polls,
            "peak_parked_polls": self._peak_polls,
            "max_polls": self.max_polls,
            "batch_window": self.batch_window,
            "max_batch": self.max_batch,
            "workers": self.workers,
        }}

    def _traced(self, fn):
        """Bind the current context (the request's active trace) to
        ``fn`` — worker threads reached through ``run_in_executor`` or
        :meth:`_call_in_thread` don't inherit the loop task's
        contextvars on their own."""
        ctx = contextvars.copy_context()
        return functools.partial(ctx.run, fn)

    async def _dispatch(self, method: str, path: str, body: bytes,
                        headers: Optional[Dict[str, str]] = None,
                        trace: Optional[Trace] = None) -> Tuple[int, Dict]:
        self._obs.async_requests.inc()
        payload = decode_json_body(body)
        if trace is not None:
            trace.wanted = bool(payload.get("trace"))
        tenant = resolve_tenant(
            (headers or {}).get(TENANT_HEADER.lower()), payload)
        # same enforcement point as the threaded server: per-tenant
        # token bucket before any work is queued (429 + Retry-After)
        self.router.throttle(tenant, method, path)
        if method == "POST" and path == "/answer":
            return await self._handle_answer(payload, tenant=tenant,
                                             trace=trace)
        if method == "GET" and path == "/health":
            return 200, self.router.health_payload()
        if method == "POST" and path == "/batch":
            # decode on the loop (cheap), admit by batch size, run on
            # the pool; entries coalesce among themselves through
            # answer_batch's own in-batch deduplication
            with span("decode"):
                requests = self.router.decode_batch(payload, tenant=tenant)
            self._admit(len(requests))
            self._executing += len(requests)
            self._note_depth()
            try:
                results = await self._loop.run_in_executor(
                    self._executor,
                    self._traced(functools.partial(
                        self.service.answer_batch, requests)))
            finally:
                self._executing -= len(requests)
                self._note_depth()
            return 200, {"results": [self.router.result_payload(result)
                                     for result in results]}
        if method == "POST" and path == "/poll":
            # a long-poll may park for up to MAX_POLL_TIMEOUT seconds;
            # a dedicated thread per poll keeps the bounded worker pool
            # free for answer/update work.  Parked polls have their own
            # (generous) cap separate from max_pending — each costs an
            # OS thread, so past max_polls new ones get 429 instead of
            # growing the thread count without bound
            if self._active_polls >= self.max_polls:
                self._obs.async_rejected.inc()
                raise overloaded_error(self._active_polls, self.max_polls)
            self._active_polls += 1
            self._peak_polls = max(self._peak_polls, self._active_polls)
            self._obs.async_parked_polls.set(self._active_polls)
            self._obs.async_peak_polls.set(self._peak_polls)
            future = self._call_in_thread(
                self._traced(functools.partial(self.router.handle,
                                               method, path, payload,
                                               tenant=tenant)))
            future.add_done_callback(self._poll_finished)
            return await future
        # every remaining route (register/update/explain/stats) may
        # block on locks or compile, so it runs on the worker pool
        # through the same Router the threaded server uses
        counters_snapshot = None  # counters are loop-confined
        if method == "GET" and path == "/stats":
            counters_snapshot = self._counters_payload()
        status, body_payload = await self._loop.run_in_executor(
            self._executor,
            self._traced(functools.partial(self.router.handle, method,
                                           path, payload,
                                           tenant=tenant)))
        if counters_snapshot is not None:
            body_payload = {**body_payload, **counters_snapshot}
        if method == "POST" and path in _DATA_ROUTES and status < 400:
            dataset = payload.get("dataset") or payload.get("name")
            if dataset:
                self._bump_epoch((tenant, str(dataset)))
        return status, body_payload

    def _poll_finished(self, _future: asyncio.Future) -> None:
        """Release a parked poll's slot (runs on the loop)."""
        self._active_polls -= 1
        self._obs.async_parked_polls.set(self._active_polls)

    def _bump_epoch(self, scoped: Tuple[str, str]) -> None:
        """Invalidate coalescing for a ``(tenant, dataset)`` whose
        data changed."""
        self._epochs[scoped] = self._epochs.get(scoped, 0) + 1

    def _call_in_thread(self, fn, *args) -> asyncio.Future:
        """Run ``fn`` on a fresh daemon thread, resolving an asyncio
        future on the loop — for calls that may block far longer than
        a bounded pool slot should be held."""
        future = self._loop.create_future()
        loop = self._loop

        def settle(resolve) -> None:
            if not future.done():
                resolve()

        def work() -> None:
            # partial() binds the outcome by value: a closure over the
            # ``except ... as error`` name would read its cell after
            # the implicit del at block exit — a NameError race that
            # leaves the future unresolved and the poller hanging
            try:
                result = fn(*args)
            except BaseException as error:  # delivered to the awaiter
                loop.call_soon_threadsafe(
                    settle, functools.partial(future.set_exception, error))
            else:
                loop.call_soon_threadsafe(
                    settle, functools.partial(future.set_result, result))

        threading.Thread(target=work, name="repro-aserve-poll",
                         daemon=True).start()
        return future

    # -- standing-query push (SSE) -------------------------------------------

    async def _handle_subscribe_stream(self, writer: asyncio.StreamWriter,
                                       path: str) -> bool:
        """Stream one subscription's deltas as Server-Sent Events.

        The response has no Content-Length, so the connection is
        single-use: the return value is always ``False`` once the
        stream head has been written.
        """
        self._obs.async_requests.inc()
        query = path.partition("?")[2]
        params = dict(pair.split("=", 1)
                      for pair in query.split("&") if "=" in pair)
        sid = params.get("subscription", "")
        registry = self.service.standing
        stream = SubscriberStream(self._loop)
        try:
            if not sid:
                raise ProtocolError(
                    "GET /subscribe needs ?subscription=<id> "
                    "(create one with POST /subscribe)")
            snapshot = registry.attach(sid, stream.listener)
        except Exception as error:
            status, payload, extra = error_payload(error)
            self._respond(writer, status, payload, extra)
            await writer.drain()
            return True
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        writer.write(sse_event("snapshot", snapshot))
        try:
            await writer.drain()
            while True:
                event = await stream.next_event()
                if event is None:  # subscription closed
                    writer.write(sse_event("closed",
                                           {"subscription": sid}))
                    await writer.drain()
                    return False
                if event is RESYNC:
                    # re-admit deltas *before* snapshotting so nothing
                    # committed after the snapshot is lost
                    stream.begin_resync()
                    registry.record_resync()
                    body = registry.snapshot(sid)
                    body["resync"] = True
                    writer.write(sse_event("resync", body))
                else:
                    writer.write(sse_event("delta", event))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception:
            return False  # e.g. the subscription vanished mid-resync
        finally:
            registry.detach(sid, stream.listener)

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> bool:
        """Serve one request; returns whether to keep the connection."""
        request_line = await reader.readline()
        if not request_line or not request_line.strip():
            return False
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            self._respond(writer, 400,
                          {"error": "malformed request line",
                           "error_type": "bad_request"})
            await writer.drain()
            return False
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "").lower() != "close"
        if method == "GET" and path.partition("?")[0] == "/subscribe":
            # SSE: an unframed streaming response, written directly —
            # _respond's fixed Content-Length cannot carry it
            return await self._handle_subscribe_stream(writer, path)
        started = time.perf_counter()
        trace = begin_trace(headers.get(TRACE_HEADER.lower()))
        extra: Dict[str, str] = {TRACE_HEADER: trace.trace_id}
        if method == "GET" and path.partition("?")[0] == "/metrics":
            body_bytes, content_type = self.router.metrics_text()
            self._write_head(writer, 200, len(body_bytes),
                             content_type, extra)
            writer.write(body_bytes)
            await writer.drain()
            self.router.observe_request(method, path, 200,
                                        time.perf_counter() - started,
                                        trace)
            return keep_alive
        try:
            length = parse_content_length(headers.get("content-length"))
        except ProtocolError as error:
            # framing is broken: the body (whose length we cannot
            # know) is still on the wire, so answering and keeping the
            # connection would parse those bytes as the next request
            status, payload, more = error_payload(error, trace.trace_id)
            extra.update(more)
            self._respond(writer, status, payload, extra)
            await writer.drain()
            self.router.observe_request(method, path, status,
                                        time.perf_counter() - started,
                                        trace)
            return False
        try:
            body = await reader.readexactly(length) if length else b""
            with tracing(trace):
                status, payload = await self._dispatch(method, path,
                                                       body, headers,
                                                       trace)
        except asyncio.IncompleteReadError:
            raise
        except Exception as error:
            status, payload, more = error_payload(error, trace.trace_id)
            extra.update(more)
            if self.verbose and status >= 500:
                print(f"repro aserve: {method} {path} -> {status}: {error}")
        self._respond(writer, status, payload, extra, trace=trace)
        await writer.drain()
        self.router.observe_request(method, path, status,
                                    time.perf_counter() - started, trace)
        return keep_alive

    _REASONS = {200: "OK", 201: "Created", 400: "Bad Request",
                403: "Forbidden", 404: "Not Found",
                429: "Too Many Requests",
                500: "Internal Server Error", 501: "Not Implemented",
                503: "Service Unavailable"}

    def _write_head(self, writer: asyncio.StreamWriter, status: int,
                    length: int, content_type: str,
                    headers: Optional[Dict[str, str]] = None) -> None:
        reason = self._REASONS.get(status, "OK")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {length}"]
        head.extend(f"{name}: {value}"
                    for name, value in (headers or {}).items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode())

    def _respond(self, writer: asyncio.StreamWriter, status: int,
                 payload: Dict,
                 headers: Optional[Dict[str, str]] = None,
                 trace: Optional[Trace] = None) -> None:
        body = encode_body(payload, trace)
        self._write_head(writer, status, len(body), "application/json",
                         headers)
        writer.write(body)


class BackgroundAsyncServer:
    """An :class:`AsyncServiceServer` on its own event-loop thread.

    The synchronous harness the tests and benchmarks need::

        with BackgroundAsyncServer(service, port=0) as handle:
            Client.connect(handle.url).answer(...)
    """

    def __init__(self, service: OMQService, **kwargs):
        kwargs.setdefault("port", 0)
        self.server = AsyncServiceServer(service, **kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-aserve-loop", daemon=True)

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    def start(self) -> "BackgroundAsyncServer":
        if not self._thread.is_alive():
            self._thread.start()
            asyncio.run_coroutine_threadsafe(self.server.start(),
                                             self._loop).result(timeout=30)
        return self

    def stop(self) -> None:
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(self.server.stop(),
                                         self._loop).result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()

    def __enter__(self) -> "BackgroundAsyncServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_background(service: OMQService,
                        **kwargs) -> BackgroundAsyncServer:
    """Start an async server for ``service`` on a background thread
    (``port=0`` by default) and return the running handle."""
    return BackgroundAsyncServer(service, **kwargs).start()


def run_async(args, parser=None) -> int:
    """Run the asyncio front-end from a parsed ``serve`` namespace
    (the ``--async-io`` path of ``python -m repro serve``)."""
    from .serve import build_service

    def error(message: str) -> int:
        if parser is not None:
            parser.error(message)
        raise SystemExit(message)

    service = build_service(args, error)
    try:
        asyncio.run(_serve_until_signalled(service, args))
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    print("repro async service stopped")
    return 0


async def _serve_until_signalled(service: OMQService, args) -> None:
    import signal

    server = AsyncServiceServer(
        service, args.host, args.port, workers=args.workers,
        max_pending=args.max_pending, batch_window=args.batch_window,
        max_batch=args.max_batch,
        max_polls=getattr(args, "max_polls", 64), verbose=True)
    await server.start()
    print(f"repro async service on {server.url} "
          f"(datasets: {', '.join(service.datasets()) or 'none'}; "
          f"coalescing on, window={server.batch_window * 1000:g}ms, "
          f"max_pending={server.max_pending})")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for name in ("SIGTERM", "SIGINT"):
        signum = getattr(signal, name, None)
        if signum is None:
            continue
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            break
    try:
        await stop.wait()
    finally:
        await server.stop()
