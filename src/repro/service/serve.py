"""JSON-over-HTTP front-end for :class:`OMQService` (stdlib only).

``python -m repro serve`` turns the service into a process.  The
protocol is deliberately small and text-based — TBoxes, queries and
data use the same surface syntax as the CLI and test suite:

===========================  ============================================
``GET  /health``             liveness probe
``GET  /stats``              :meth:`OMQService.stats` as JSON
``POST /datasets``           ``{"name": ..., "data": "<ABox text>",
                             "shards": K}`` (``shards >= 2`` serves
                             the dataset scatter-gather over a
                             component partition)
``POST /tboxes``             ``{"name": ..., "tbox": "<TBox text>"}``
``POST /answer``             one request (see below)
``POST /explain``            a request minus ``dataset`` (optional):
                             the compiled plan's report
``POST /batch``              ``{"requests": [<request>, ...]}``
``POST /update``             ``{"dataset": ..., "insert": ["R(a,b)",
                             ...], "delete": [...]}`` — the response
                             carries the dataset's new ``epoch``
``POST /subscribe``          an answer request: register a standing
                             query, returns the snapshot + ``epoch``
                             + ``subscription`` id
``POST /poll``               ``{"subscription": ..., "since_epoch":
                             N, "timeout": S}`` — long-poll for
                             answer deltas
``POST /unsubscribe``        ``{"subscription": ...}``
===========================  ============================================

Every route is tenant-aware: the ``X-Repro-Tenant`` header (or a
``tenant`` payload field, which wins) scopes dataset/ontology/
subscription names into that tenant's namespace and charges its
quotas and token-bucket rate limit (429 + ``Retry-After`` past the
rate, 403 past a quota); requests without a tenant keep today's
un-scoped behavior.  ``--data-dir`` makes the service durable: state
is persisted per tenant as it changes, checkpointed on graceful
shutdown, and warm-restored on the next start (see
:mod:`repro.store`).

Standing queries are served long-poll only here; SSE streaming
(``GET /subscribe``) needs the asyncio front-end (``--async-io``).
POSTs are admission-controlled: past ``--max-pending`` concurrent
requests the server answers 429 with ``Retry-After`` (the same shape
as the async front-end, via
:func:`repro.service.protocol.overloaded_error`).  ``/poll`` counts
against its own ``--max-polls`` budget instead, so parked long-pollers
neither starve answer/update work nor park in unbounded numbers.

An answer request names a dataset and an ontology — ``"tbox"`` is a
registered name, ``"tbox_text"`` inline TBox text (inline text in
``"tbox"`` is also accepted when unambiguous) — and carries the CQ::

    {"dataset": "demo", "tbox": "uni", "query": "R(x,y), S(y,z)",
     "answers": ["x"], "method": "auto", "engine": "python"}

Pipeline configuration may also travel as one ``"options"`` object
(the JSON form of :class:`~repro.rewriting.plan.AnswerOptions` —
``{"method": ..., "magic": ..., "optimize": ..., "engine": ...,
"timeout": ..., "over": ...}``); flat legacy keys override its
fields.  ``POST /explain`` takes the same request shape and returns
the compiled plan's :meth:`~repro.rewriting.plan.Plan.explain` report
without evaluating it (``dataset`` is only required for the
data-dependent ``adaptive``/``optimize`` stages).

Responses are ``{"answers": [[...], ...], "seconds": ...,
"cached_rewriting": ...}`` with the answer tuples sorted.  Errors come
back as ``{"error": <message>, "error_type": <kind>}`` with a 4xx
status — including malformed JSON bodies and bad ``Content-Length``
headers, which are the client's bugs, not internal errors.  Inline
TBox texts are interned by fingerprint, so re-sending the same
ontology per request costs one parse but never a second completion.

Request decoding and dispatch live in
:mod:`repro.service.protocol`, shared with the asyncio front-end
(:mod:`repro.service.aserve`, ``repro serve --async-io``) so the two
servers parse and error identically.
"""

from __future__ import annotations

import argparse
import time
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional

from ..data.abox import ABox
from ..engine import ENGINES
from ..obs import configure_logging
from ..obs.trace import tracing
from ..ontology import TBox
from ..store import TenantQuota
from .protocol import (
    TENANT_HEADER,
    TRACE_HEADER,
    ProtocolError,
    Router,
    begin_trace,
    decode_json_body,
    encode_body,
    error_payload,
    overloaded_error,
    parse_content_length,
    resolve_tenant,
)
from .service import OMQService


class _Handler(BaseHTTPRequestHandler):
    """One request; the service lives on the server object."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, payload: Dict, status: int = 200,
              headers: Optional[Dict[str, str]] = None,
              trace=None) -> None:
        self._send_bytes(encode_body(payload, trace), status,
                         "application/json", headers)

    def _send_bytes(self, body: bytes, status: int, content_type: str,
                    headers: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict:
        try:
            length = parse_content_length(self.headers.get("Content-Length"))
        except ProtocolError:
            # broken framing: the body of unknowable length is still
            # on the wire, so a kept-alive connection would parse it
            # as the next request line — close instead
            self.close_connection = True
            raise
        return decode_json_body(self.rfile.read(length) if length else b"")

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        trace = begin_trace(self.headers.get(TRACE_HEADER))
        echo = {TRACE_HEADER: trace.trace_id}
        status = 500
        try:
            with tracing(trace):
                try:
                    if (method == "GET"
                            and self.path.split("?", 1)[0] == "/metrics"):
                        body, content_type = \
                            self.server.router.metrics_text()
                        status = 200
                        self._send_bytes(body, status, content_type,
                                         echo)
                        return
                    admitted = self.server.admit(method, self.path)
                    try:
                        payload = (self._read_json()
                                   if method == "POST" else {})
                        trace.wanted = bool(payload.get("trace"))
                        tenant = resolve_tenant(
                            self.headers.get(TENANT_HEADER), payload)
                        self.server.router.throttle(tenant, method,
                                                    self.path)
                        status, body = self.server.router.handle(
                            method, self.path, payload, tenant=tenant)
                        self._send(body, status, echo, trace=trace)
                    finally:
                        if admitted:
                            self.server.release(admitted)
                except Exception as error:  # never drop a request
                    status, body, headers = error_payload(
                        error, trace.trace_id)
                    headers.update(echo)
                    self._send(body, status, headers, trace=trace)
        finally:
            self.server.router.observe_request(
                method, self.path, status,
                time.perf_counter() - started, trace)

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`OMQService`."""

    daemon_threads = True

    def __init__(self, service: OMQService, host: str = "127.0.0.1",
                 port: int = 8080, verbose: bool = True,
                 max_pending: int = 128, max_polls: int = 64):
        super().__init__((host, port), _Handler)
        self.service = service
        self.router = Router(service)
        self.verbose = verbose
        self.max_pending = max_pending
        self.max_polls = max_polls
        self._inflight = 0
        self._polling = 0
        self._inflight_lock = threading.Lock()

    def admit(self, method: str, path: str) -> Optional[str]:
        """Count a request against its admission budget; 429 past the
        cap.  Returns the token to pass back to :meth:`release` (or
        ``None`` for uncounted GETs).

        Only POSTs carry real work.  ``/poll`` has its own (generous)
        budget, ``max_polls``, separate from ``max_pending``: parked
        long-pollers must not eat the answer/update budget, but each
        holds a connection thread for up to its timeout, so they
        cannot be unbounded either.
        """
        if method != "POST":
            return None
        if path == "/poll":
            with self._inflight_lock:
                if self._polling >= self.max_polls:
                    raise overloaded_error(self._polling, self.max_polls)
                self._polling += 1
            return "poll"
        with self._inflight_lock:
            if self._inflight >= self.max_pending:
                raise overloaded_error(self._inflight, self.max_pending)
            self._inflight += 1
        return "work"

    def release(self, token: str) -> None:
        with self._inflight_lock:
            if token == "poll":
                self._polling -= 1
            else:
                self._inflight -= 1


def build_server(service: OMQService, host: str = "127.0.0.1",
                 port: int = 8080, verbose: bool = True,
                 max_pending: int = 128,
                 max_polls: int = 64) -> ServiceServer:
    """Bind (but do not run) the HTTP front-end; port 0 auto-assigns."""
    return ServiceServer(service, host, port, verbose=verbose,
                         max_pending=max_pending, max_polls=max_polls)


def add_serve_arguments(parser) -> None:
    """Install the ``serve`` options on an (argparse) parser."""
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--engine", default="python", choices=ENGINES,
                        help="default evaluation backend")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="rewriting cache entries")
    parser.add_argument("--workers", type=int, default=4,
                        help="batch threads / SQLite sessions per dataset")
    from ..cli import shard_count

    parser.add_argument("--shards", type=shard_count, default=0,
                        help="serve preloaded --dataset instances over "
                             "this many component shards (>= 2 enables "
                             "scatter-gather execution, 'auto' sizes "
                             "from CPUs and component skew)")
    parser.add_argument("--shard-executor", default="auto",
                        dest="shard_executor",
                        help="executor for sharded datasets: 'auto', "
                             "'serial', 'process', or comma-separated "
                             "http:// worker URLs for multi-node "
                             "scatter-gather over other repro serve "
                             "instances")
    parser.add_argument("--dataset", action="append", default=[],
                        metavar="NAME=PATH",
                        help="preload a dataset from an ABox file")
    parser.add_argument("--tbox", action="append", default=[],
                        metavar="NAME=PATH",
                        help="preload an ontology from a TBox file")
    parser.add_argument("--async-io", action="store_true",
                        help="serve on the asyncio front-end (request "
                             "coalescing, micro-batching, queue-depth "
                             "backpressure; see repro.service.aserve)")
    parser.add_argument("--max-pending", type=int, default=128,
                        help="reject new POST work with 429 + Retry-After "
                             "once this many requests are queued or "
                             "executing (both front-ends; /poll has its "
                             "own budget, see --max-polls)")
    parser.add_argument("--max-polls", type=int, default=64,
                        help="reject new long-polls with 429 once this "
                             "many are parked (both front-ends; each "
                             "parked poll holds a thread)")
    parser.add_argument("--batch-window", type=float, default=0.002,
                        help="async front-end: micro-batch gathering "
                             "window in seconds")
    parser.add_argument("--max-batch", type=int, default=16,
                        help="async front-end: flush a micro-batch at "
                             "this many queued requests")
    parser.add_argument("--data-dir", default=None, metavar="DIR",
                        help="persist datasets, ontologies and "
                             "subscriptions to per-tenant SQLite files "
                             "under DIR (WAL mode); on startup the "
                             "server warm-restores everything the "
                             "directory holds")
    parser.add_argument("--max-datasets", type=int, default=None,
                        help="per-tenant dataset quota (403 past it)")
    parser.add_argument("--max-facts", type=int, default=None,
                        help="per-tenant stored-fact quota (403 past it)")
    parser.add_argument("--max-subscriptions", type=int, default=None,
                        help="per-tenant standing-query quota "
                             "(403 past it)")
    parser.add_argument("--rate-limit", type=float, default=None,
                        metavar="RPS",
                        help="per-tenant sustained requests/second; a "
                             "tenant exceeding it gets 429 + "
                             "Retry-After while others are unaffected")
    parser.add_argument("--rate-burst", type=float, default=20.0,
                        help="token-bucket burst headroom on top of "
                             "--rate-limit")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        metavar="MS",
                        help="log requests slower than MS milliseconds "
                             "(trace ID, plan fingerprint and per-span "
                             "timings; also kept in /stats under "
                             "observability.slow_query_log)")
    parser.add_argument("--log-level", default="info",
                        choices=["debug", "info", "warning", "error"],
                        help="repro.* logger level")
    parser.add_argument("--log-json", action="store_true",
                        help="emit structured JSON log lines (one "
                             "object per line, trace-aware) instead of "
                             "plain text")


def build_service(args, error) -> OMQService:
    """An :class:`OMQService` from a parsed ``serve`` namespace, with
    the ``--dataset``/``--tbox`` preloads applied (shared by the
    threaded and asyncio front-ends)."""
    quota = TenantQuota(
        max_datasets=getattr(args, "max_datasets", None),
        max_facts=getattr(args, "max_facts", None),
        max_subscriptions=getattr(args, "max_subscriptions", None),
        rate_limit=getattr(args, "rate_limit", None),
        rate_burst=getattr(args, "rate_burst", 20.0))
    service = OMQService(cache_size=args.cache_size,
                         max_workers=args.workers,
                         default_engine=args.engine,
                         data_dir=getattr(args, "data_dir", None),
                         quota=quota,
                         shard_executor=getattr(args, "shard_executor",
                                                "auto"))
    if service.store is not None:
        restored = service.restore()
        if restored["datasets"] or restored["subscriptions"]:
            print(f"warm restart: restored {restored['datasets']} "
                  f"dataset(s), {restored['subscriptions']} "
                  f"subscription(s) across {restored['tenants']} "
                  f"tenant(s) from {service.store.data_dir}")
    for spec in args.dataset:
        name, _, path = spec.partition("=")
        if not path:
            return error(f"--dataset expects NAME=PATH, got {spec!r}")
        with open(path) as handle:
            # an explicit preload wins over a restored copy of the
            # same name (the file is the operator's source of truth)
            service.register_dataset(name, ABox.parse(handle.read()),
                                     shards=args.shards,
                                     replace=service.store is not None)
    for spec in args.tbox:
        name, _, path = spec.partition("=")
        if not path:
            return error(f"--tbox expects NAME=PATH, got {spec!r}")
        with open(path) as handle:
            service.register_tbox(name, TBox.parse(handle.read()))
    slow_ms = getattr(args, "slow_query_ms", None)
    if slow_ms is not None:
        service.obs.slow_query_ms = float(slow_ms)
    return service


def run(args, parser: Optional[argparse.ArgumentParser] = None) -> int:
    """Run the server from a parsed ``serve`` namespace."""
    def error(message: str) -> int:
        if parser is not None:
            parser.error(message)
        raise SystemExit(message)

    configure_logging(getattr(args, "log_level", "info"),
                      bool(getattr(args, "log_json", False)))
    if getattr(args, "async_io", False):
        from .aserve import run_async

        return run_async(args, parser)

    service = build_service(args, error)
    server = build_server(service, args.host, args.port,
                          max_pending=args.max_pending,
                          max_polls=getattr(args, "max_polls", 64))
    host, port = server.server_address[:2]
    print(f"repro service on http://{host}:{port} "
          f"(datasets: {', '.join(service.datasets()) or 'none'})")
    _install_shutdown_handlers(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # graceful teardown in either exit path: stop accepting, let
        # in-flight handler threads drain, then release the sessions
        # (and any shard worker processes) the service holds
        server.server_close()
        service.close()
    print("repro service stopped")
    return 0


def _install_shutdown_handlers(server: "ServiceServer") -> None:
    """SIGTERM/SIGINT stop the server *gracefully*: in-flight requests
    finish, the listening socket closes, ``serve_forever`` returns.

    ``shutdown()`` blocks until the serve loop exits, and the signal
    handler runs on the very thread that loop lives on — so the stop
    is handed to a helper thread instead of deadlocking.
    """
    import signal
    import threading

    def stop(signum, _frame):
        if server.verbose:
            print(f"received signal {signum}; shutting down gracefully")
        threading.Thread(target=server.shutdown,
                         name="repro-serve-shutdown").start()

    for name in ("SIGTERM", "SIGINT"):
        signum = getattr(signal, name, None)
        if signum is not None:
            try:
                signal.signal(signum, stop)
            except ValueError:  # not on the main thread (tests)
                return


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve OMQ answering over JSON/HTTP")
    add_serve_arguments(parser)
    return run(parser.parse_args(argv), parser)


if __name__ == "__main__":
    raise SystemExit(main())
