"""JSON-over-HTTP front-end for :class:`OMQService` (stdlib only).

``python -m repro serve`` turns the service into a process.  The
protocol is deliberately small and text-based — TBoxes, queries and
data use the same surface syntax as the CLI and test suite:

===========================  ============================================
``GET  /health``             liveness probe
``GET  /stats``              :meth:`OMQService.stats` as JSON
``POST /datasets``           ``{"name": ..., "data": "<ABox text>",
                             "shards": K}`` (``shards >= 2`` serves
                             the dataset scatter-gather over a
                             component partition)
``POST /tboxes``             ``{"name": ..., "tbox": "<TBox text>"}``
``POST /answer``             one request (see below)
``POST /explain``            a request minus ``dataset`` (optional):
                             the compiled plan's report
``POST /batch``              ``{"requests": [<request>, ...]}``
``POST /update``             ``{"dataset": ..., "insert": ["R(a,b)",
                             ...], "delete": [...]}``
===========================  ============================================

An answer request names a dataset and an ontology — ``"tbox"`` is a
registered name, ``"tbox_text"`` inline TBox text (inline text in
``"tbox"`` is also accepted when unambiguous) — and carries the CQ::

    {"dataset": "demo", "tbox": "uni", "query": "R(x,y), S(y,z)",
     "answers": ["x"], "method": "auto", "engine": "python"}

Pipeline configuration may also travel as one ``"options"`` object
(the JSON form of :class:`~repro.rewriting.plan.AnswerOptions` —
``{"method": ..., "magic": ..., "optimize": ..., "engine": ...,
"timeout": ..., "over": ...}``); flat legacy keys override its
fields.  ``POST /explain`` takes the same request shape and returns
the compiled plan's :meth:`~repro.rewriting.plan.Plan.explain` report
without evaluating it (``dataset`` is only required for the
data-dependent ``adaptive``/``optimize`` stages).

Responses are ``{"answers": [[...], ...], "seconds": ...,
"cached_rewriting": ...}`` with the answer tuples sorted.  Errors come
back as ``{"error": ...}`` with a 4xx status.  Inline TBox texts are
interned by fingerprint, so re-sending the same ontology per request
costs one parse but never a second completion.
"""

from __future__ import annotations

import argparse
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from ..data.abox import ABox
from ..engine import ENGINES
from ..ontology import TBox
from ..queries import CQ
from ..rewriting.api import OMQ
from ..rewriting.plan import AnswerOptions
from .service import BatchRequest, OMQService


def _parse_atoms(texts) -> List[Tuple[str, Tuple[str, ...]]]:
    """Ground atoms from strings like ``"R(a, b)"``."""
    atoms: List[Tuple[str, Tuple[str, ...]]] = []
    for text in texts:
        parsed = list(ABox.parse(text).atoms())
        if not parsed:
            raise ValueError(f"no ground atom found in {text!r}")
        atoms.extend(parsed)
    return atoms


def _answer_vars(raw) -> List[str]:
    if raw is None:
        return []
    if isinstance(raw, str):
        return [v.strip() for v in raw.split(",") if v.strip()]
    if not isinstance(raw, (list, tuple)):
        raise ValueError("'answers' must be a string or a list")
    return [str(v) for v in raw]


class _Handler(BaseHTTPRequestHandler):
    """One request; the service lives on the server object."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, payload: Dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return {}
        payload = json.loads(self.rfile.read(length).decode())
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- request decoding ----------------------------------------------------

    def _tbox(self, payload: Dict) -> TBox:
        """The request ontology: ``tbox_text`` (inline) beats ``tbox``.

        ``tbox`` is a registered name; as a convenience an inline text
        is also accepted there when it is unambiguous (contains ``<=``
        or a newline — impossible in a registered name).
        """
        service = self.server.service
        text = payload.get("tbox_text")
        if text is not None:
            if not isinstance(text, str) or not text.strip():
                raise ValueError("'tbox_text' must be TBox text")
            return service.intern_tbox(TBox.parse(text))
        spec = payload.get("tbox")
        if not isinstance(spec, str) or not spec.strip():
            raise ValueError("missing 'tbox' (name) or 'tbox_text'")
        try:
            return service.named_tbox(spec)
        except ValueError:
            if "<=" not in spec and "\n" not in spec:
                raise
        return service.intern_tbox(TBox.parse(spec))

    @staticmethod
    def _options(payload: Dict) -> AnswerOptions:
        """The request's :class:`AnswerOptions`: an ``"options"``
        object, with the legacy flat keys (``method``, ``engine``,
        ``magic``, ``optimize``) applied on top."""
        raw = payload.get("options")
        if raw is not None and not isinstance(raw, dict):
            raise ValueError("'options' must be a JSON object")
        engine = payload.get("engine")
        if engine is not None and engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"expected one of {ENGINES}")
        overrides: Dict[str, object] = {
            "method": payload.get("method"), "engine": engine,
            "timeout": payload.get("timeout")}
        if "magic" in payload:
            overrides["magic"] = bool(payload["magic"])
        if "optimize" in payload:
            overrides["optimize"] = bool(payload["optimize"])
        return AnswerOptions.coerce(raw, **overrides)

    def _omq(self, payload: Dict) -> OMQ:
        query = payload.get("query")
        if not query or not isinstance(query, str):
            raise ValueError("'query' must be a non-empty string")
        cq = CQ.parse(query, answer_vars=_answer_vars(payload.get("answers")))
        return OMQ(self._tbox(payload), cq)

    def _request(self, payload: Dict) -> BatchRequest:
        dataset = payload.get("dataset")
        if not dataset:
            raise ValueError("missing 'dataset'")
        options = self._options(payload)
        return BatchRequest(dataset=dataset, omq=self._omq(payload),
                            engine=options.engine, options=options)

    @staticmethod
    def _result_payload(result) -> Dict:
        return {"answers": sorted(list(row) for row in result.answers),
                "count": len(result.answers),
                "dataset": result.dataset, "method": result.method,
                "engine": result.engine,
                "seconds": round(result.seconds, 6),
                "cached_rewriting": result.cached_rewriting,
                "generated_tuples": result.generated_tuples,
                "plan_fingerprint": result.plan_fingerprint,
                "timed_out": result.timed_out,
                "shards": result.shards}

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/health":
                self._send({"status": "ok"})
            elif self.path == "/stats":
                self._send(self.server.service.stats())
            else:
                self._send({"error": f"unknown path {self.path!r}"}, 404)
        except Exception as error:  # never drop the connection
            self._send({"error": f"internal error: {error}"}, 500)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        try:
            payload = self._read_json()
            if self.path == "/datasets":
                name = payload.get("name")
                if not name:
                    raise ValueError("missing 'name'")
                service.register_dataset(
                    name, ABox.parse(payload.get("data", "")),
                    replace=bool(payload.get("replace", False)),
                    shards=int(payload.get("shards", 0)))
                self._send({"registered": name}, 201)
            elif self.path == "/tboxes":
                name = payload.get("name")
                if not name:
                    raise ValueError("missing 'name'")
                service.register_tbox(name,
                                      TBox.parse(payload.get("tbox", "")))
                self._send({"registered": name}, 201)
            elif self.path == "/answer":
                request = self._request(payload)
                result = service.answer(request.dataset, request.omq,
                                        options=request.options)
                self._send(self._result_payload(result))
            elif self.path == "/explain":
                report = service.explain(self._omq(payload),
                                         options=self._options(payload),
                                         dataset=payload.get("dataset"))
                self._send(report)
            elif self.path == "/batch":
                raw = payload.get("requests")
                if not isinstance(raw, list) or not raw:
                    raise ValueError("'requests' must be a non-empty list")
                results = service.answer_batch(
                    [self._request(entry) for entry in raw])
                self._send({"results": [self._result_payload(result)
                                        for result in results]})
            elif self.path == "/update":
                dataset = payload.get("dataset")
                if not dataset:
                    raise ValueError("missing 'dataset'")
                result = service.update(
                    dataset,
                    inserts=_parse_atoms(payload.get("insert", ())),
                    deletes=_parse_atoms(payload.get("delete", ())))
                self._send(result.as_dict())
            else:
                self._send({"error": f"unknown path {self.path!r}"}, 404)
        except (ValueError, KeyError, TypeError,
                json.JSONDecodeError) as error:
            self._send({"error": str(error)}, 400)
        except Exception as error:  # never drop the connection
            self._send({"error": f"internal error: {error}"}, 500)


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`OMQService`."""

    daemon_threads = True

    def __init__(self, service: OMQService, host: str = "127.0.0.1",
                 port: int = 8080, verbose: bool = True):
        super().__init__((host, port), _Handler)
        self.service = service
        self.verbose = verbose


def build_server(service: OMQService, host: str = "127.0.0.1",
                 port: int = 8080, verbose: bool = True) -> ServiceServer:
    """Bind (but do not run) the HTTP front-end; port 0 auto-assigns."""
    return ServiceServer(service, host, port, verbose=verbose)


def add_serve_arguments(parser) -> None:
    """Install the ``serve`` options on an (argparse) parser."""
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--engine", default="python", choices=ENGINES,
                        help="default evaluation backend")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="rewriting cache entries")
    parser.add_argument("--workers", type=int, default=4,
                        help="batch threads / SQLite sessions per dataset")
    parser.add_argument("--shards", type=int, default=0,
                        help="serve preloaded --dataset instances over "
                             "this many component shards (>= 2 enables "
                             "scatter-gather execution)")
    parser.add_argument("--dataset", action="append", default=[],
                        metavar="NAME=PATH",
                        help="preload a dataset from an ABox file")
    parser.add_argument("--tbox", action="append", default=[],
                        metavar="NAME=PATH",
                        help="preload an ontology from a TBox file")


def run(args, parser: Optional[argparse.ArgumentParser] = None) -> int:
    """Run the server from a parsed ``serve`` namespace."""
    def error(message: str) -> int:
        if parser is not None:
            parser.error(message)
        raise SystemExit(message)

    service = OMQService(cache_size=args.cache_size,
                         max_workers=args.workers,
                         default_engine=args.engine)
    for spec in args.dataset:
        name, _, path = spec.partition("=")
        if not path:
            return error(f"--dataset expects NAME=PATH, got {spec!r}")
        with open(path) as handle:
            service.register_dataset(name, ABox.parse(handle.read()),
                                     shards=args.shards)
    for spec in args.tbox:
        name, _, path = spec.partition("=")
        if not path:
            return error(f"--tbox expects NAME=PATH, got {spec!r}")
        with open(path) as handle:
            service.register_tbox(name, TBox.parse(handle.read()))

    server = build_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"repro service on http://{host}:{port} "
          f"(datasets: {', '.join(service.datasets()) or 'none'})")
    _install_shutdown_handlers(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # graceful teardown in either exit path: stop accepting, let
        # in-flight handler threads drain, then release the sessions
        # (and any shard worker processes) the service holds
        server.server_close()
        service.close()
    print("repro service stopped")
    return 0


def _install_shutdown_handlers(server: "ServiceServer") -> None:
    """SIGTERM/SIGINT stop the server *gracefully*: in-flight requests
    finish, the listening socket closes, ``serve_forever`` returns.

    ``shutdown()`` blocks until the serve loop exits, and the signal
    handler runs on the very thread that loop lives on — so the stop
    is handed to a helper thread instead of deadlocking.
    """
    import signal
    import threading

    def stop(signum, _frame):
        if server.verbose:
            print(f"received signal {signum}; shutting down gracefully")
        threading.Thread(target=server.shutdown,
                         name="repro-serve-shutdown").start()

    for name in ("SIGTERM", "SIGINT"):
        signum = getattr(signal, name, None)
        if signum is not None:
            try:
                signal.signal(signum, stop)
            except ValueError:  # not on the main thread (tests)
                return


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve OMQ answering over JSON/HTTP")
    add_serve_arguments(parser)
    return run(parser.parse_args(argv), parser)


if __name__ == "__main__":
    raise SystemExit(main())

