"""Incremental ABox updates: patch loaded engines instead of reloading.

An :class:`~repro.rewriting.api.AnswerSession` owns up to three loaded
copies of a data instance per variant (interned/indexed Python
database, two SQLite modes) plus one cached completion per TBox.
Reloading all of that on every data change would forfeit exactly the
amortisation the session exists for, so this module computes *atom
level deltas* once and pushes them everywhere:

* the raw ABox is mutated in place (``add``/``discard``);
* each cached completion is patched with its own delta.  OWL 2 QL
  completion is a per-atom closure (axioms have single atoms on the
  left), so ``complete(A ∪ Δ) = complete(A) ∪ complete(Δ)`` and the
  insert delta is just the completion of the inserted atoms.  For
  deletion, an entailed atom survives iff it is re-derivable from the
  remaining atoms that mention an affected individual — only that
  *support set* is re-completed, never the whole instance;
* each loaded :class:`~repro.engine.backends.Engine` receives the
  per-variant delta via :meth:`~repro.engine.backends.Engine.apply_delta`
  (insertions maintain the memoised hash indexes incrementally;
  deletions invalidate only the touched predicates' indexes).

Deletions are applied before insertions throughout.  The correctness
contract — answers after an update equal a from-scratch load of the
final ABox, on every engine — is enforced by
``tests/test_service_updates.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..data.abox import ABox, GroundAtom

RowsByPredicate = Dict[str, List[Tuple[str, ...]]]


@dataclass
class UpdateDelta:
    """The shape of one update, as standing-query maintenance needs it.

    ``atoms`` are every effective base atom the update touched —
    inserts and deletes together, and for sharded datasets also the
    atoms a rebalance moved between shards (a move changes two shards'
    local extensions even though the global data is unchanged).
    ``completed_changed`` maps ``id(tbox)`` to the *exact* set of
    predicates whose extension changed in that cached completion;
    variants without an entry fall back to a sound over-approximation
    (the completion of the touched atoms).
    """

    atoms: List[GroundAtom] = field(default_factory=list)
    #: Any deletions applied (inserts alone keep every variant
    #: monotone).
    deletes: bool = False
    #: ``id(tbox) -> frozenset of predicate names`` whose extension
    #: changed in that completion (exact; an empty set means the
    #: completion provably did not change).
    completed_changed: Dict[int, FrozenSet[str]] = field(
        default_factory=dict)
    #: Whether the active domain gained or lost individuals.
    adom_changed: bool = False
    #: Shards whose local data changed (sharded datasets only).
    touched_shards: Optional[FrozenSet[int]] = None

    @property
    def raw_changed(self) -> FrozenSet[str]:
        """Predicates whose raw extension (may have) changed."""
        return frozenset(predicate for predicate, _ in self.atoms)

    @property
    def empty(self) -> bool:
        return not self.atoms and not self.adom_changed


@dataclass
class UpdateResult:
    """What one :func:`apply_update` call actually changed."""

    #: Effective base-atom insertions/deletions (requested atoms that
    #: were absent/present, respectively).
    inserted: int = 0
    deleted: int = 0
    #: Entailed atoms added to / removed from cached completions.
    completion_inserted: int = 0
    completion_deleted: int = 0
    #: Loaded engines that received a delta.
    backends_updated: int = 0
    #: The dataset's epoch after this update (set by the service layer;
    #: ``None`` for bare-session updates, which have no epoch).
    epoch: Optional[int] = None
    #: The change in the shape maintenance consumes (never on the wire).
    delta: Optional[UpdateDelta] = None

    def as_dict(self) -> Dict[str, int]:
        payload = {"inserted": self.inserted, "deleted": self.deleted,
                   "completion_inserted": self.completion_inserted,
                   "completion_deleted": self.completion_deleted,
                   "backends_updated": self.backends_updated}
        if self.epoch is not None:
            payload["epoch"] = self.epoch
        return payload


def _dedup(atoms: Iterable[GroundAtom]) -> List[GroundAtom]:
    seen: Set[GroundAtom] = set()
    unique: List[GroundAtom] = []
    for predicate, args in atoms:
        atom = (predicate, tuple(args))
        if atom not in seen:
            seen.add(atom)
            unique.append(atom)
    return unique


def rows_by_predicate(atoms: Iterable[GroundAtom]) -> RowsByPredicate:
    """Group ``(predicate, args)`` atoms into the engine-delta shape."""
    rows: RowsByPredicate = {}
    for predicate, args in atoms:
        rows.setdefault(predicate, []).append(tuple(args))
    return rows


def completed_insert_delta(tbox, completed: ABox,
                           inserted: Iterable[GroundAtom]
                           ) -> List[GroundAtom]:
    """Atoms the completion gains when ``inserted`` joins the data.

    By distributivity of the single-pass OWL 2 QL completion over
    unions, this is the completion of the inserted atoms alone, minus
    what the completion already contains.
    """
    delta = ABox(inserted).complete(tbox)
    return [atom for atom in delta.atoms() if atom not in completed]


def completed_delete_delta(tbox, abox_after: ABox, completed: ABox,
                           deleted: Iterable[GroundAtom]
                           ) -> List[GroundAtom]:
    """Atoms the completion loses when ``deleted`` leaves the data.

    ``abox_after`` is the raw ABox *after* the base deletions.  Every
    candidate casualty lies in the completion of the deleted atoms (all
    of whose atoms mention only affected individuals); it survives iff
    the remaining atoms mentioning an affected individual still derive
    it, which only requires completing that support set.
    """
    deleted = list(deleted)
    affected = {constant for _, args in deleted for constant in args}
    candidates = ABox(deleted).complete(tbox)
    support = ABox(atom for atom in abox_after.atoms()
                   if affected.intersection(atom[1]))
    still_entailed = support.complete(tbox)
    return [atom for atom in candidates.atoms()
            if atom not in still_entailed and atom in completed]


def apply_update(abox: ABox, completions: Dict[int, Tuple[object, ABox]],
                 sessions: Iterable,
                 inserts: Iterable[GroundAtom] = (),
                 deletes: Iterable[GroundAtom] = ()) -> UpdateResult:
    """Apply one update to an ABox, its completions and its sessions.

    ``completions`` is the (possibly shared) completion table of the
    sessions — ``id(tbox) -> (tbox, completed ABox)`` — and
    ``sessions`` every :class:`~repro.rewriting.api.AnswerSession`
    whose loaded backends must be patched.  All sessions must be built
    over ``abox`` and share ``completions`` (the service's pool
    invariant); none may be answering concurrently.
    """
    result = UpdateResult(delta=UpdateDelta())
    raw_deletes: RowsByPredicate = {}
    raw_inserts: RowsByPredicate = {}
    completed_deletes: Dict[int, RowsByPredicate] = {}
    completed_inserts: Dict[int, RowsByPredicate] = {}
    individuals_before = set(abox.individuals)

    effective_deletes = [atom for atom in _dedup(deletes) if atom in abox]
    if effective_deletes:
        for predicate, args in effective_deletes:
            abox.discard(predicate, *args)
        raw_deletes = rows_by_predicate(effective_deletes)
        result.deleted = len(effective_deletes)
        for key, (tbox, completed) in completions.items():
            delta = completed_delete_delta(tbox, abox, completed,
                                           effective_deletes)
            for predicate, args in delta:
                completed.discard(predicate, *args)
            completed_deletes[key] = rows_by_predicate(delta)
            result.completion_deleted += len(delta)

    effective_inserts = [atom for atom in _dedup(inserts)
                         if atom not in abox]
    if effective_inserts:
        for predicate, args in effective_inserts:
            abox.add(predicate, *args)
        raw_inserts = rows_by_predicate(effective_inserts)
        result.inserted = len(effective_inserts)
        for key, (tbox, completed) in completions.items():
            delta = completed_insert_delta(tbox, completed,
                                           effective_inserts)
            for predicate, args in delta:
                completed.add(predicate, *args)
            completed_inserts[key] = rows_by_predicate(delta)
            result.completion_inserted += len(delta)

    individuals_after = set(abox.individuals)
    adom_add = sorted(individuals_after - individuals_before)
    adom_remove = sorted(individuals_before - individuals_after)

    result.delta.atoms = effective_deletes + effective_inserts
    result.delta.deletes = bool(effective_deletes)
    result.delta.adom_changed = bool(adom_add or adom_remove)
    for key in completions:
        changed = set(completed_inserts.get(key, ()))
        changed.update(completed_deletes.get(key, ()))
        result.delta.completed_changed[key] = frozenset(changed)

    for session in sessions:
        # extra_relations keep their constants in the active domain
        # regardless of what the ABox update removed
        pinned = session.pinned_constants()
        session_adom_remove = ([c for c in adom_remove if c not in pinned]
                               if pinned else adom_remove)
        for (_, variant), backend in session.loaded_backends():
            if variant == "raw":
                backend_inserts: RowsByPredicate = raw_inserts
                backend_deletes: RowsByPredicate = raw_deletes
            else:
                key = variant[1]
                backend_inserts = completed_inserts.get(key, {})
                backend_deletes = completed_deletes.get(key, {})
            if (backend_inserts or backend_deletes
                    or adom_add or session_adom_remove):
                backend.apply_delta(backend_inserts, backend_deletes,
                                    adom_add=adom_add,
                                    adom_remove=session_adom_remove)
                result.backends_updated += 1
    return result
