"""An LRU cache of compiled plans keyed by canonical OMQ fingerprints.

Compilation (rewriting + magic sets) dominates the cost of a repeat
query (the data side is already amortised by
:class:`~repro.rewriting.api.AnswerSession`), and a serving workload
repeats queries constantly — often under different variable names,
since clients generate them.  The cache therefore keys entries by the
*canonical* fingerprints of :mod:`repro.fingerprint`: two OMQs that
differ only by a bijective renaming of query variables (answer tuple
order preserved) hash to the same ``(tbox, cq, options)`` key, and the
cached :class:`~repro.rewriting.plan.Plan` answers both — NDL
evaluation returns constant tuples positioned by the answer tuple,
which renaming does not move.

Keys take an :class:`~repro.rewriting.plan.AnswerOptions` and use only
its compile-relevant subset (method, magic, optimize, over) — the
execution knobs (engine, timeout) never partition the cache, so the
hit-rate is independent of how clients evaluate.  Cached plans are
data-independent, so data updates never invalidate the cache; the
data-dependent stages (``optimize``, ``adaptive``) bypass it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..obs import Observability
from ..obs.trace import span

# Re-exported for backwards compatibility: the canonical fingerprint
# implementation moved to :mod:`repro.fingerprint` (one code path for
# the cache, ``OMQ.fingerprint()`` and ``Plan.fingerprint``).
from ..fingerprint import (  # noqa: F401  (re-exports)
    PERMUTATION_LIMIT,
    cq_fingerprint,
    omq_fingerprint,
    tbox_fingerprint,
)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of a :class:`RewritingCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": self.size,
                "maxsize": self.maxsize,
                "hit_rate": round(self.hit_rate, 4)}


class RewritingCache:
    """A thread-safe LRU cache from OMQ fingerprints to compiled plans."""

    def __init__(self, maxsize: int = 256,
                 obs: Optional[Observability] = None):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._obs = obs or Observability()
        self._hits = self._obs.cache_hits
        self._misses = self._obs.cache_misses
        self._evictions = self._obs.cache_evictions
        self._size_gauge = self._obs.cache_entries

    def key(self, omq, options=None, method: str = "auto",
            magic: bool = False) -> Tuple:
        """The ``(tbox-fp, cq-fp, options-fp)`` cache key of ``omq``.

        Pass an :class:`~repro.rewriting.plan.AnswerOptions` (or give
        the legacy ``method``/``magic`` flags, which build one); only
        the compile-relevant options partition keys.
        """
        from ..rewriting.plan import AnswerOptions

        if options is None:
            options = AnswerOptions(method=method, magic=magic)
        return (tbox_fingerprint(omq.tbox), cq_fingerprint(omq.query),
                options.rewrite_fingerprint())

    def get(self, key: Tuple):
        """The cached plan for ``key`` (``None`` on a miss)."""
        with span("cache-lookup") as entry_span:
            with self._lock:
                entry = self._entries.get(key)
                if entry is None:
                    self._misses.inc()
                    entry_span.attrs["hit"] = False
                    return None
                self._entries.move_to_end(key)
                self._hits.inc()
            entry_span.attrs["hit"] = True
            return entry

    def put(self, key: Tuple, value) -> None:
        with self._lock:
            self._store(key, value)

    def _store(self, key: Tuple, value) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._evictions.inc()
        self._size_gauge.set(len(self._entries))

    def get_or_compute(self, key: Tuple, compute: Callable[[], object]):
        """The cached value for ``key``, filling it via ``compute``.

        ``compute`` runs outside the lock (rewriting can be slow);
        concurrent fillers of one key may both compute, last write
        wins — acceptable because rewriting is deterministic.
        """
        cached = self.get(key)
        if cached is not None:
            return cached
        value = compute()
        self.put(key, value)
        return value

    def contains(self, key: Tuple) -> bool:
        """Membership probe that does not touch the LRU order/stats."""
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._size_gauge.set(0)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=int(self._hits.value),
                              misses=int(self._misses.value),
                              evictions=int(self._evictions.value),
                              size=len(self._entries),
                              maxsize=self.maxsize)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        stats = self.stats()
        return (f"RewritingCache({stats.size}/{stats.maxsize} entries, "
                f"{stats.hits} hits, {stats.misses} misses)")
