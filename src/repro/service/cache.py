"""An LRU cache of NDL rewritings keyed by canonical OMQ fingerprints.

Rewriting dominates the cost of a repeat query (the data side is
already amortised by :class:`~repro.rewriting.api.AnswerSession`), and
a serving workload repeats queries constantly — often under different
variable names, since clients generate them.  The cache therefore keys
entries by a *canonical* fingerprint: two OMQs that differ only by a
bijective renaming of query variables (answer tuple order preserved)
hash to the same key, and the cached NDL program answers both — NDL
evaluation returns constant tuples positioned by the answer tuple,
which renaming does not move.

Cached programs are data-independent (rewriting + optional magic
sets), so data updates never invalidate the cache; the data-dependent
stages (``optimize_program``, ``adaptive``) bypass it.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from itertools import permutations, product
from math import factorial
from typing import Callable, Dict, Iterable, List, Tuple
from weakref import WeakKeyDictionary

from ..queries.cq import CQ

#: Ceiling on the candidate variable orderings tried while
#: canonicalising a CQ.  Queries whose existential variables form
#: larger symmetric groups fall back to a name-dependent (still
#: deterministic and collision-free) ordering: isomorphic variants may
#: then miss each other in the cache, but never alias distinct queries.
PERMUTATION_LIMIT = 720

_tbox_fingerprints: "WeakKeyDictionary" = WeakKeyDictionary()
_tbox_lock = threading.Lock()


def tbox_fingerprint(tbox) -> str:
    """A digest of the ontology's user axioms (order-insensitive)."""
    with _tbox_lock:
        cached = _tbox_fingerprints.get(tbox)
        if cached is None:
            text = "\n".join(sorted(str(axiom)
                                    for axiom in tbox.user_axioms))
            cached = hashlib.sha256(text.encode()).hexdigest()
            _tbox_fingerprints[tbox] = cached
        return cached


def _signature(cq: CQ, var: str, answer_codes: Dict[str, int]) -> Tuple:
    """A renaming-invariant local description of ``var``.

    Two variables with different signatures cannot be exchanged by any
    isomorphism fixing the answer tuple, so signatures both order the
    canonical search and prune its permutation space.
    """
    items: List[Tuple] = []
    for atom in cq.atoms:
        if var not in atom.args:
            continue
        description = tuple(
            ("a", answer_codes[arg]) if arg in answer_codes
            else ("self",) if arg == var else ("e",)
            for arg in atom.args)
        items.append((atom.predicate, description))
    return tuple(sorted(items))


def _encode(cq: CQ, codes: Dict[str, int]) -> Tuple:
    atoms = tuple(sorted(
        (atom.predicate, tuple(codes[arg] for arg in atom.args))
        for atom in cq.atoms))
    return (tuple(codes[v] for v in cq.answer_vars), atoms)


_cq_fingerprints: "WeakKeyDictionary" = WeakKeyDictionary()
_cq_lock = threading.Lock()


def cq_fingerprint(cq: CQ) -> Tuple:
    """A canonical encoding of ``cq`` up to variable renaming.

    Answer variables are pinned in answer-tuple order; existential
    variables are assigned the remaining codes by the lexicographically
    smallest resulting encoding (searched within signature classes,
    capped by :data:`PERMUTATION_LIMIT`).  Equal fingerprints imply the
    queries are isomorphic — the encoding contains the full atom set,
    so distinct queries can never collide.

    Memoised per CQ object (the canonical search is the expensive
    part, and a serving request fingerprints the same CQ more than
    once: the cache-hit probe, then the key of the cache lookup).
    """
    with _cq_lock:
        cached = _cq_fingerprints.get(cq)
    if cached is not None:
        return cached
    fingerprint = _cq_fingerprint(cq)
    with _cq_lock:
        _cq_fingerprints[cq] = fingerprint
    return fingerprint


def _cq_fingerprint(cq: CQ) -> Tuple:
    answer_codes: Dict[str, int] = {}
    for var in cq.answer_vars:
        answer_codes.setdefault(var, len(answer_codes))
    evars = sorted(v for v in cq.variables if v not in answer_codes)
    if not evars:
        return _encode(cq, answer_codes)
    groups: Dict[Tuple, List[str]] = {}
    for var in evars:
        groups.setdefault(_signature(cq, var, answer_codes),
                          []).append(var)
    ordered_groups = [groups[s] for s in sorted(groups)]
    candidates = 1
    for group in ordered_groups:
        candidates *= factorial(len(group))
    base = len(answer_codes)

    def encode_order(order: Iterable[str]) -> Tuple:
        codes = dict(answer_codes)
        for offset, var in enumerate(order):
            codes[var] = base + offset
        return _encode(cq, codes)

    if candidates > PERMUTATION_LIMIT:
        return encode_order(v for group in ordered_groups
                            for v in sorted(group))
    best = None
    for combo in product(*(permutations(g) for g in ordered_groups)):
        encoded = encode_order(v for group in combo for v in group)
        if best is None or encoded < best:
            best = encoded
    return best


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of a :class:`RewritingCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": self.size,
                "maxsize": self.maxsize,
                "hit_rate": round(self.hit_rate, 4)}


class RewritingCache:
    """A thread-safe LRU cache from OMQ fingerprints to NDL queries."""

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def key(self, omq, method: str = "auto", magic: bool = False) -> Tuple:
        """The cache key of ``omq`` under the given pipeline flags."""
        return (tbox_fingerprint(omq.tbox), cq_fingerprint(omq.query),
                method, bool(magic))

    def get(self, key: Tuple):
        """The cached program for ``key`` (``None`` on a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: Tuple, value) -> None:
        with self._lock:
            self._store(key, value)

    def _store(self, key: Tuple, value) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    def get_or_compute(self, key: Tuple, compute: Callable[[], object]):
        """The cached value for ``key``, filling it via ``compute``.

        ``compute`` runs outside the lock (rewriting can be slow);
        concurrent fillers of one key may both compute, last write
        wins — acceptable because rewriting is deterministic.
        """
        cached = self.get(key)
        if cached is not None:
            return cached
        value = compute()
        self.put(key, value)
        return value

    def contains(self, key: Tuple) -> bool:
        """Membership probe that does not touch the LRU order/stats."""
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions,
                              size=len(self._entries),
                              maxsize=self.maxsize)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        stats = self.stats()
        return (f"RewritingCache({stats.size}/{stats.maxsize} entries, "
                f"{stats.hits} hits, {stats.misses} misses)")
