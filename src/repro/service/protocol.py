"""The JSON/HTTP serving protocol, shared by both front-ends.

:mod:`repro.service.serve` (one thread per request, stdlib
``http.server``) and :mod:`repro.service.aserve` (asyncio streams with
request coalescing) speak the same wire protocol.  This module is the
single definition of that protocol — request decoding, route dispatch
and error shaping live here so the two servers cannot drift:

* :class:`ProtocolError` — a request failure that already knows its
  HTTP status and its structured JSON body (``{"error": <message>,
  "error_type": <kind>}``).  Malformed JSON bodies and non-integer
  ``Content-Length`` headers become 400s here instead of leaking
  raw parser messages (or worse, a generic 500) to clients;
* :func:`parse_content_length` / :func:`decode_json_body` — body
  framing and decoding with those structured errors;
* :class:`Router` — decodes payloads into service calls
  (``/answer``, ``/batch``, ``/datasets``, ...) and renders results.
  Both servers delegate every route here; the async server only
  intercepts ``/answer`` to add coalescing and micro-batching around
  the same :meth:`Router.decode_answer` / :meth:`Router.result_payload`
  pair.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..data.abox import ABox
from ..engine import ENGINES, available_engines
from ..obs import PROMETHEUS_CONTENT_TYPE, Trace
from ..obs.trace import mint_trace_id, span, valid_trace_id
from ..ontology import TBox
from ..queries import CQ
from ..rewriting.api import OMQ
from ..rewriting.plan import AnswerOptions
from ..store import DEFAULT_TENANT, QuotaError, RateLimited, TenantManager
from .service import BatchRequest, OMQService

#: Cap on long-poll blocking (seconds) — a client asking for more gets
#: this much; both servers share the bound so neither can be held open
#: indefinitely by one subscriber.
MAX_POLL_TIMEOUT = 30.0

#: Request/response header carrying the trace ID.  Honored inbound
#: (clients correlate their logs with the server's), echoed on every
#: response — including errors — and minted when absent.
TRACE_HEADER = "X-Repro-Trace-Id"

#: The routes both servers serve; anything else is folded into
#: ``"other"`` for metric labels, so hostile paths cannot explode the
#: ``route`` label's cardinality.
KNOWN_ROUTES = frozenset({
    "/health", "/stats", "/metrics", "/datasets", "/datasets/drop",
    "/tboxes", "/answer",
    "/explain", "/batch", "/update", "/subscribe", "/unsubscribe",
    "/poll"})


def begin_trace(header: Optional[str]) -> Trace:
    """The request's :class:`~repro.obs.trace.Trace`: the inbound
    ``X-Repro-Trace-Id`` is honored when it is a sane header value,
    a fresh ID is minted otherwise."""
    trace_id = None
    if header is not None and valid_trace_id(header.strip()):
        trace_id = header.strip()
    return Trace(trace_id or mint_trace_id())


def metric_route(path: str) -> str:
    """``path`` reduced to a bounded metric label."""
    base = path.split("?", 1)[0]
    return base if base in KNOWN_ROUTES else "other"


def encode_body(payload: Dict, trace: Optional[Trace] = None) -> bytes:
    """Serialize a response body, timing it as the ``encode`` span.

    When the client asked for the trace (``"trace": true`` in the
    request payload), the trace payload — including this encode span —
    is spliced into the body, at the cost of serialising twice; the
    common untraced path serialises once.
    """
    if trace is None:
        return json.dumps(payload).encode("utf-8")
    if trace.wanted:
        with trace.span("encode"):
            json.dumps(payload)
        enriched = dict(payload)
        enriched["trace"] = trace.payload()
        return json.dumps(enriched).encode("utf-8")
    with trace.span("encode"):
        return json.dumps(payload).encode("utf-8")


class ProtocolError(ValueError):
    """A request rejection carrying its HTTP status and error body.

    ``error_type`` is a small machine-readable vocabulary —
    ``bad_request``, ``not_found``, ``overloaded``, ``internal`` — so
    clients can branch without parsing prose.  ``retry_after``
    (seconds) is set on ``overloaded`` rejections and travels both as
    a body field and as the HTTP ``Retry-After`` header.
    """

    def __init__(self, message: str, status: int = 400,
                 error_type: str = "bad_request",
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.retry_after = retry_after

    def payload(self) -> Dict[str, object]:
        body: Dict[str, object] = {"error": str(self),
                                   "error_type": self.error_type}
        if self.retry_after is not None:
            body["retry_after"] = self.retry_after
        return body

    def headers(self) -> Dict[str, str]:
        if self.retry_after is None:
            return {}
        return {"Retry-After": f"{self.retry_after:g}"}


def overloaded_error(depth: int, max_pending: int,
                     retry_after: float = 1.0) -> ProtocolError:
    """The one 429 both servers raise when their request queue is
    full, so ``Retry-After`` and the structured body cannot drift
    between them (clients surface it as
    ``ServiceError.retry_after``)."""
    return ProtocolError(
        f"server overloaded: {depth} requests pending "
        f"(max {max_pending}); retry later",
        status=429, error_type="overloaded", retry_after=retry_after)


def error_payload(error: Exception,
                  trace_id: Optional[str] = None
                  ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
    """Map any handler exception to ``(status, body, extra_headers)``.

    The one error-shaping path for both servers: client mistakes
    (``ValueError`` and friends — bad fields, unknown datasets,
    malformed atoms) are 400s, everything else is a 500 that never
    drops the connection.  ``trace_id`` lands in the body (and the
    caller echoes it as the header), so 429/403/500s are attributable
    in client logs.
    """
    if isinstance(error, ProtocolError):
        status, body, headers = (error.status, error.payload(),
                                 error.headers())
    elif isinstance(error, RateLimited):
        # same wire shape as queue-depth backpressure, so clients
        # handle both through one ServiceError.retry_after path
        status, body, headers = 429, \
            {"error": str(error), "error_type": "rate_limited",
             "retry_after": error.retry_after}, \
            {"Retry-After": f"{error.retry_after:g}"}
    elif isinstance(error, QuotaError):
        status, body, headers = 403, \
            {"error": str(error), "error_type": "quota_exceeded",
             "resource": error.resource, "limit": error.limit}, {}
    elif isinstance(error, (ValueError, KeyError, TypeError)):
        status, body, headers = 400, \
            {"error": str(error), "error_type": "bad_request"}, {}
    else:
        status, body, headers = 500, \
            {"error": f"internal error: {error}",
             "error_type": "internal"}, {}
    if trace_id is not None:
        body["trace_id"] = trace_id
    return status, body, headers


#: Request header carrying the caller's tenant (the ``tenant`` payload
#: field overrides it; absent both, the default tenant is assumed).
TENANT_HEADER = "X-Repro-Tenant"


def resolve_tenant(header: Optional[str], payload: Optional[Dict]) -> str:
    """The request's tenant from the ``X-Repro-Tenant`` header and/or
    the payload's ``tenant`` field (field wins), validated."""
    tenant = None
    if payload is not None and payload.get("tenant") is not None:
        tenant = payload["tenant"]
    elif header is not None:
        tenant = header.strip()
    if tenant is None or tenant == DEFAULT_TENANT:
        return DEFAULT_TENANT
    if not isinstance(tenant, str):
        raise ProtocolError("'tenant' must be a string")
    try:
        return TenantManager.validate(tenant)
    except ValueError as error:
        raise ProtocolError(str(error)) from None


def parse_content_length(raw: Optional[str]) -> int:
    """The request body length; absent/empty means no body.

    A non-integer or negative header is the client's bug and must be
    a structured 400, not an internal error.
    """
    if raw is None or not raw.strip():
        return 0
    try:
        length = int(raw)
    except ValueError:
        raise ProtocolError(
            f"invalid Content-Length header {raw!r}: "
            "expected a non-negative integer") from None
    if length < 0:
        raise ProtocolError(
            f"invalid Content-Length header {raw!r}: must be >= 0")
    return length


def decode_json_body(body: bytes) -> Dict:
    """The request payload as a dict (empty body -> ``{}``)."""
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except UnicodeDecodeError as error:
        raise ProtocolError(f"request body is not valid UTF-8: "
                            f"{error}") from None
    except json.JSONDecodeError as error:
        raise ProtocolError(f"malformed JSON body: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object, got "
                            f"{type(payload).__name__}")
    return payload


def parse_atoms(texts) -> List[Tuple[str, Tuple[str, ...]]]:
    """Ground atoms from strings like ``"R(a, b)"``."""
    atoms: List[Tuple[str, Tuple[str, ...]]] = []
    for text in texts:
        parsed = list(ABox.parse(text).atoms())
        if not parsed:
            raise ProtocolError(f"no ground atom found in {text!r}")
        atoms.extend(parsed)
    return atoms


def answer_vars(raw) -> List[str]:
    if raw is None:
        return []
    if isinstance(raw, str):
        return [v.strip() for v in raw.split(",") if v.strip()]
    if not isinstance(raw, (list, tuple)):
        raise ProtocolError("'answers' must be a string or a list")
    return [str(v) for v in raw]


class Router:
    """Decode requests against one :class:`OMQService` and dispatch.

    ``extra_stats`` lets a server merge its own counters into the
    ``/stats`` payload (the async front-end reports coalescing, batch
    and queue numbers there).
    """

    def __init__(self, service: OMQService,
                 extra_stats: Optional[Callable[[], Dict]] = None):
        self.service = service
        self._extra_stats = extra_stats
        self._started = time.time()

    # -- observability -------------------------------------------------------

    def metrics_text(self) -> Tuple[bytes, str]:
        """``GET /metrics``: the service registry in Prometheus text
        format, plus its content type.  Both servers serve this from
        the same shared registry, so the exposed metric families are
        identical by construction."""
        text = self.service.obs.render_prometheus()
        return text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE

    def observe_request(self, method: str, path: str, status: int,
                        seconds: float,
                        trace: Optional[Trace] = None) -> None:
        """Account one finished request (HTTP metric families + the
        slow-query log); both servers call this once per response."""
        self.service.obs.observe_http(metric_route(path), method,
                                      status, seconds, trace)

    # -- admission -----------------------------------------------------------

    def throttle(self, tenant: str, method: str, path: str) -> None:
        """Charge one request against the tenant's token bucket
        (raises :class:`~repro.store.tenants.RateLimited` -> 429 +
        ``Retry-After``).  Both servers call this once per admitted
        request, before dispatch, so enforcement cannot drift.

        ``GET`` routes (health checks, stats scrapes) and ``/poll``
        (a parked long-poll is idle waiting, not work) are exempt.
        """
        if method != "POST" or path == "/poll":
            return
        self.service.tenants.throttle(tenant)

    # -- request decoding ----------------------------------------------------

    def decode_tbox(self, payload: Dict,
                    tenant: str = DEFAULT_TENANT) -> TBox:
        """The request ontology: ``tbox_text`` (inline) beats ``tbox``.

        ``tbox`` is a registered name (looked up in the requesting
        tenant's namespace); as a convenience an inline text is also
        accepted there when it is unambiguous (contains ``<=`` or a
        newline — impossible in a registered name).
        """
        text = payload.get("tbox_text")
        if text is not None:
            if not isinstance(text, str) or not text.strip():
                raise ProtocolError("'tbox_text' must be TBox text")
            return self.service.intern_tbox(TBox.parse(text))
        spec = payload.get("tbox")
        if not isinstance(spec, str) or not spec.strip():
            raise ProtocolError("missing 'tbox' (name) or 'tbox_text'")
        try:
            return self.service.named_tbox(spec, tenant=tenant)
        except ValueError:
            if "<=" not in spec and "\n" not in spec:
                raise
        return self.service.intern_tbox(TBox.parse(spec))

    @staticmethod
    def decode_options(payload: Dict) -> AnswerOptions:
        """The request's :class:`AnswerOptions`: an ``"options"``
        object, with the legacy flat keys (``method``, ``engine``,
        ``magic``, ``optimize``, ``optimize_sql``) applied on top."""
        raw = payload.get("options")
        if raw is not None and not isinstance(raw, dict):
            raise ProtocolError("'options' must be a JSON object")
        engine = payload.get("engine")
        if engine is not None and engine not in ENGINES:
            raise ProtocolError(f"unknown engine {engine!r}; "
                                f"expected one of {ENGINES}")
        overrides: Dict[str, object] = {
            "method": payload.get("method"), "engine": engine,
            "timeout": payload.get("timeout")}
        if "magic" in payload:
            overrides["magic"] = bool(payload["magic"])
        if "optimize" in payload:
            overrides["optimize"] = bool(payload["optimize"])
        if "optimize_sql" in payload:
            overrides["optimize_sql"] = bool(payload["optimize_sql"])
        return AnswerOptions.coerce(raw, **overrides)

    def decode_omq(self, payload: Dict,
                   tenant: str = DEFAULT_TENANT) -> OMQ:
        query = payload.get("query")
        if not query or not isinstance(query, str):
            raise ProtocolError("'query' must be a non-empty string")
        cq = CQ.parse(query, answer_vars=answer_vars(payload.get("answers")))
        return OMQ(self.decode_tbox(payload, tenant=tenant), cq)

    def decode_answer(self, payload: Dict,
                      tenant: str = DEFAULT_TENANT) -> BatchRequest:
        """One ``/answer`` (or ``/batch`` entry) as a ``BatchRequest``."""
        dataset = payload.get("dataset")
        if not dataset:
            raise ProtocolError("missing 'dataset'")
        options = self.decode_options(payload)
        return BatchRequest(dataset=dataset,
                            omq=self.decode_omq(payload, tenant=tenant),
                            engine=options.engine, options=options,
                            tenant=tenant)

    @staticmethod
    def result_payload(result) -> Dict:
        return {"answers": sorted(list(row) for row in result.answers),
                "count": len(result.answers),
                "dataset": result.dataset, "method": result.method,
                "engine": result.engine,
                "seconds": round(result.seconds, 6),
                "cached_rewriting": result.cached_rewriting,
                "generated_tuples": result.generated_tuples,
                "plan_fingerprint": result.plan_fingerprint,
                "timed_out": result.timed_out,
                "shards": result.shards}

    # -- dispatch ------------------------------------------------------------

    def stats_payload(self) -> Dict:
        payload = self.service.stats()
        if self._extra_stats is not None:
            payload.update(self._extra_stats())
        return payload

    def health_payload(self) -> Dict:
        """``GET /health``: liveness plus what an orchestrator needs
        to gate on — engines actually available in this process,
        storage state, uptime."""
        return {"status": "ok",
                "engines": list(available_engines()),
                "datasets": len(self.service.datasets()),
                "uptime_seconds": round(time.time() - self._started, 3),
                "storage": self.service.storage_status()}

    def handle(self, method: str, path: str, payload: Dict,
               tenant: str = DEFAULT_TENANT) -> Tuple[int, Dict]:
        """Dispatch one decoded request; raises on failure (callers
        shape errors through :func:`error_payload`).

        ``tenant`` (resolved by the server from the ``X-Repro-Tenant``
        header / ``tenant`` field via :func:`resolve_tenant`) scopes
        every dataset, ontology and subscription the request names.
        """
        service = self.service
        if method == "GET":
            if path == "/health":
                return 200, self.health_payload()
            if path == "/stats":
                return 200, self.stats_payload()
            if path == "/subscribe" or path.startswith("/subscribe?"):
                # SSE streaming is the async server's job (it
                # intercepts this path before dispatch); the threaded
                # server serves standing queries via POST /poll only
                raise ProtocolError(
                    "GET /subscribe (SSE) requires the async server "
                    "(serve --async-io); use POST /poll on this one",
                    status=501, error_type="unsupported")
            raise ProtocolError(f"unknown path {path!r}", status=404,
                                error_type="not_found")
        if method != "POST":
            raise ProtocolError(f"unsupported method {method!r}",
                                status=404, error_type="not_found")
        if path == "/datasets":
            name = payload.get("name")
            if not name:
                raise ProtocolError("missing 'name'")
            raw_shards = payload.get("shards", 0)
            service.register_dataset(
                name, ABox.parse(payload.get("data", "")),
                replace=bool(payload.get("replace", False)),
                shards="auto" if raw_shards == "auto" else int(raw_shards),
                tenant=tenant)
            return 201, {"registered": name}
        if path == "/datasets/drop":
            name = payload.get("name")
            if not name:
                raise ProtocolError("missing 'name'")
            try:
                service.unregister_dataset(name, tenant=tenant)
            except KeyError:
                raise ProtocolError(f"unknown dataset {name!r}",
                                    status=404, error_type="not_found")
            return 200, {"unregistered": name}
        if path == "/tboxes":
            name = payload.get("name")
            if not name:
                raise ProtocolError("missing 'name'")
            service.register_tbox(name, TBox.parse(payload.get("tbox", "")),
                                  tenant=tenant)
            return 201, {"registered": name}
        if path == "/answer":
            with span("decode"):
                request = self.decode_answer(payload, tenant=tenant)
            result = service.answer(request.dataset, request.omq,
                                    options=request.options,
                                    tenant=tenant)
            return 200, self.result_payload(result)
        if path == "/explain":
            with span("decode"):
                omq = self.decode_omq(payload, tenant=tenant)
                options = self.decode_options(payload)
            report = service.explain(omq, options=options,
                                     dataset=payload.get("dataset"),
                                     tenant=tenant)
            return 200, report
        if path == "/batch":
            with span("decode"):
                requests = self.decode_batch(payload, tenant=tenant)
            results = service.answer_batch(requests)
            return 200, {"results": [self.result_payload(result)
                                     for result in results]}
        if path == "/update":
            dataset = payload.get("dataset")
            if not dataset:
                raise ProtocolError("missing 'dataset'")
            result = service.update(
                dataset,
                inserts=parse_atoms(payload.get("insert", ())),
                deletes=parse_atoms(payload.get("delete", ())),
                tenant=tenant)
            return 200, result.as_dict()
        if path == "/subscribe":
            dataset = payload.get("dataset")
            if not dataset:
                raise ProtocolError("missing 'dataset'")
            sub = service.subscribe(dataset,
                                    self.decode_omq(payload, tenant=tenant),
                                    options=self.decode_options(payload),
                                    tenant=tenant)
            return 201, service.standing.snapshot(sub.subscription_id)
        if path == "/unsubscribe":
            service.unsubscribe(self._subscription_id(payload),
                                tenant=tenant)
            return 200, {"unsubscribed": payload["subscription"]}
        if path == "/poll":
            since = payload.get("since_epoch")
            if since is not None and not isinstance(since, int):
                raise ProtocolError("'since_epoch' must be an integer")
            timeout = payload.get("timeout", 0.0)
            if not isinstance(timeout, (int, float)) or timeout < 0:
                raise ProtocolError(
                    "'timeout' must be a non-negative number")
            return 200, service.poll(
                self._subscription_id(payload), since_epoch=since,
                timeout=min(float(timeout), MAX_POLL_TIMEOUT),
                tenant=tenant)
        raise ProtocolError(f"unknown path {path!r}", status=404,
                            error_type="not_found")

    @staticmethod
    def _subscription_id(payload: Dict) -> str:
        sid = payload.get("subscription")
        if not sid or not isinstance(sid, str):
            raise ProtocolError("missing 'subscription'")
        return sid

    def decode_batch(self, payload: Dict,
                     tenant: str = DEFAULT_TENANT) -> List[BatchRequest]:
        raw = payload.get("requests")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("'requests' must be a non-empty list")
        return [self.decode_answer(entry, tenant=tenant)
                for entry in raw]
