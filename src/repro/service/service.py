"""`OMQService`: a thread-safe, multi-dataset OMQ answering front door.

The serving analogue of the paper's Tables 3-5 workload: many
ontology-mediated queries, a few evolving data instances.  The service
owns

* a shared :class:`~repro.service.cache.RewritingCache` (one per
  service, injected into every session, so a query rewritten for any
  dataset is free everywhere);
* per-dataset pools of :class:`~repro.rewriting.api.AnswerSession`
  (SQLite connections cannot be shared concurrently, so concurrency is
  bought with pooled sessions; the Python engine pools a single
  session, whose in-memory database all requests share);
* a per-dataset readers/writer lock: answering holds a read lock,
  :meth:`update` a write lock, so incremental updates only run against
  quiescent sessions.

:meth:`answer_batch` deduplicates requests that share a rewriting
fingerprint within the batch and fans the unique work out on a
``ThreadPoolExecutor``.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..data.abox import ABox, GroundAtom
from ..engine import ENGINES
from ..obs import Observability
from ..obs import trace as _trace
from ..rewriting.api import OMQ, AnswerSession
from ..rewriting.plan import AnswerOptions
from ..standing.maintain import (
    full_reexecute,
    initialize,
    refresh,
    variant_changed_predicates,
)
from ..standing.registry import (
    AnswerDelta,
    StandingQuery,
    StandingRegistry,
)
from ..store import (
    DEFAULT_TENANT,
    DatasetStore,
    StoredSubscription,
    TenantManager,
    TenantQuota,
)
from .cache import RewritingCache
from .updates import UpdateResult, apply_update

log = logging.getLogger("repro.service")


class _RWLock:
    """A readers/writer lock (writer-preferring enough for our use)."""

    def __init__(self):
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._waiting_writers:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if not self._readers:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._waiting_writers += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()


class _SessionPool:
    """Bounded pool of ``AnswerSession``s for one (dataset, engine)."""

    def __init__(self, factory, capacity: int):
        self._factory = factory
        self._capacity = max(1, capacity)
        self._condition = threading.Condition()
        self._free: List[AnswerSession] = []
        self._all: List[AnswerSession] = []

    def checkout(self) -> AnswerSession:
        with self._condition:
            while True:
                if self._free:
                    return self._free.pop()
                if len(self._all) < self._capacity:
                    session = self._factory()
                    self._all.append(session)
                    return session
                self._condition.wait()

    def checkin(self, session: AnswerSession) -> None:
        with self._condition:
            self._free.append(session)
            self._condition.notify()

    @property
    def sessions(self) -> Tuple[AnswerSession, ...]:
        with self._condition:
            return tuple(self._all)

    def close(self) -> None:
        with self._condition:
            for session in self._all:
                session.close()
            self._all.clear()
            self._free.clear()


class _Dataset:
    """A registered data instance plus its session pools."""

    def __init__(self, name: str, abox: ABox, cache: RewritingCache,
                 pool_capacity: int, shards: int = 0,
                 shard_executor: str = "auto",
                 default_engine: str = "python",
                 tenant: str = DEFAULT_TENANT,
                 base_name: Optional[str] = None):
        self.name = name
        #: Owning tenant and the un-scoped name it registered
        #: (``name`` is the tenant-scoped registry key).
        self.tenant = tenant
        self.base_name = base_name if base_name is not None else name
        self.abox = abox
        self.shards = shards
        self.lock = _RWLock()
        #: Shared by every pooled session so the per-TBox completion is
        #: computed once per dataset and patched once per update.
        self.completions: Dict[int, Tuple[object, ABox]] = {}
        self._cache = cache
        self._pool_capacity = pool_capacity
        self._shard_executor = shard_executor
        self._default_engine = default_engine
        self._pools: Dict[str, _SessionPool] = {}
        self._pool_lock = threading.Lock()
        self.requests = 0
        self.updates = 0
        #: Bumped under the write lock on every update attempt; the
        #: version standing-query watermarks and ``since_epoch`` polls
        #: speak in.
        self.epoch = 0

    @property
    def sharded(self) -> bool:
        return self.shards == "auto" or self.shards >= 2

    def pool(self, engine: str) -> _SessionPool:
        with self._pool_lock:
            if self.sharded:
                # one ShardedSession serves every engine (workers load
                # per-engine backends on demand); its executor already
                # owns the per-shard parallelism, so the pool holds a
                # single session and requests queue per scatter round.
                # The label shows up in stats() next to real engine
                # names, so keep it dunder-free and self-describing
                engine = "sharded"
            pool = self._pools.get(engine)
            if pool is None:
                if self.sharded:
                    from ..shard.session import ShardedSession

                    pool = _SessionPool(
                        lambda: ShardedSession(
                            self.abox, shards=self.shards,
                            engine=self._default_engine,
                            executor=self._shard_executor,
                            rewriting_cache=self._cache),
                        1)
                else:
                    # one session is enough for the Python engine: its
                    # backends share one interned Database and
                    # evaluation is GIL-bound anyway.  The SQLite
                    # engines pool up to ``pool_capacity`` independent
                    # connections.
                    capacity = (1 if engine == "python"
                                else self._pool_capacity)
                    pool = _SessionPool(
                        lambda: AnswerSession(
                            self.abox, engine=engine,
                            rewriting_cache=self._cache,
                            shared_completions=self.completions),
                        capacity)
                self._pools[engine] = pool
            return pool

    def all_sessions(self) -> List[AnswerSession]:
        with self._pool_lock:
            pools = list(self._pools.values())
        return [session for pool in pools for session in pool.sessions]

    def pool_sizes(self) -> Dict[str, int]:
        with self._pool_lock:
            return {engine: len(pool.sessions)
                    for engine, pool in self._pools.items()}

    def close(self) -> None:
        with self._pool_lock:
            for pool in self._pools.values():
                pool.close()
            self._pools.clear()


@dataclass(frozen=True)
class BatchRequest:
    """One entry of :meth:`OMQService.answer_batch`.

    Pass an :class:`~repro.rewriting.plan.AnswerOptions` via
    ``options``; the legacy ``method``/``magic``/``optimize_program``
    flags build one when it is absent.
    """

    dataset: str
    omq: OMQ
    method: str = "auto"
    engine: Optional[str] = None
    magic: bool = False
    optimize_program: bool = False
    options: Optional[AnswerOptions] = None
    tenant: str = DEFAULT_TENANT
    #: Optional :class:`~repro.obs.trace.Trace` to record this entry's
    #: spans under — the batching front-ends thread each request's
    #: trace through here (the worker thread running the job activates
    #: it; identity only, so it never partitions the dedup).
    trace: Optional[object] = field(default=None, compare=False)

    def answer_options(self) -> AnswerOptions:
        """The request's options (built from the flags when unset)."""
        return AnswerOptions.from_legacy(
            self.options, method=self.method, magic=self.magic,
            optimize=self.optimize_program, engine=self.engine)


@dataclass
class ServiceResult:
    """An answered request: the certain answers plus serving metadata."""

    answers: FrozenSet[Tuple[str, ...]]
    dataset: str
    method: str
    engine: str
    seconds: float
    cached_rewriting: bool
    generated_tuples: int = 0
    relation_sizes: Dict[str, int] = field(default_factory=dict)
    plan_fingerprint: str = ""
    timed_out: bool = False
    #: Shards that served the request (``0`` = monolithic dataset).
    shards: int = 0

    def __iter__(self):
        return iter(self.answers)

    def __len__(self) -> int:
        return len(self.answers)


class OMQService:
    """Concurrent OMQ answering over named, updatable datasets.

    Usage::

        service = OMQService()
        service.register_dataset("demo", abox)
        result = service.answer("demo", OMQ(tbox, query))
        service.insert_facts("demo", [("R", ("a", "b"))])
        service.stats()

    ``max_workers`` bounds both the batch executor and the number of
    pooled SQLite sessions per dataset.

    Multi-tenant serving (see :mod:`repro.store`): every public method
    takes a ``tenant`` keyword (default: the unscoped tenant, which
    preserves the single-tenant behavior) and scopes dataset/ontology
    names per tenant; ``quota`` caps per-tenant datasets, facts and
    subscriptions.  ``data_dir`` (or an explicit ``store``) turns on
    durability: registrations and updates are persisted as they
    happen, :meth:`checkpoint` folds the WAL down on shutdown, and
    :meth:`restore` warm-loads everything — datasets at their
    persisted epochs and re-armed standing subscriptions — into a
    fresh service.
    """

    def __init__(self, cache_size: int = 256, max_workers: int = 4,
                 default_engine: str = "python",
                 shard_executor: str = "auto",
                 store: Optional[DatasetStore] = None,
                 data_dir: Optional[str] = None,
                 quota: Optional[TenantQuota] = None,
                 obs: Optional[Observability] = None):
        if default_engine not in ENGINES:
            raise ValueError(f"unknown engine {default_engine!r}; "
                             f"expected one of {ENGINES}")
        self.default_engine = default_engine
        self.max_workers = max(1, max_workers)
        #: Executor kind for datasets registered with ``shards >= 2``
        #: (``"auto"`` / ``"process"`` / ``"serial"``).
        self.shard_executor = shard_executor
        #: The service-wide metrics registry + slow-query log (see
        #: :mod:`repro.obs`); every subsystem below shares it.
        self.obs = obs or Observability()
        self.cache = RewritingCache(maxsize=cache_size, obs=self.obs)
        #: Standing-query subscriptions (see :mod:`repro.standing`).
        self.standing = StandingRegistry(obs=self.obs)
        if store is None and data_dir is not None:
            store = DatasetStore(data_dir)
        #: Durable backing store (``None`` = in-memory only).
        self.store = store
        #: Per-tenant namespaces, quotas and rate limits.
        self.tenants = TenantManager(quota, obs=self.obs)
        self._storage_errors = self.obs.storage_write_errors
        self._datasets: Dict[str, _Dataset] = {}
        self._tboxes: Dict[str, object] = {}
        self._named_tboxes: Dict[str, object] = {}
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._requests = self.obs.service_requests
        self._batches = self.obs.service_batches
        self._batch_requests = self.obs.service_batch_requests
        self._batch_deduped = self.obs.service_batch_deduped
        self._updates = self.obs.service_updates
        self._started = time.time()

    # -- registration --------------------------------------------------------

    def register_dataset(self, name: str, abox: ABox,
                         replace: bool = False, shards: int = 0,
                         tenant: str = DEFAULT_TENANT,
                         _persist: bool = True) -> None:
        """Register ``abox`` under ``name`` (the service owns it: it is
        mutated in place by :meth:`update`).

        ``shards >= 2`` serves the dataset through a
        :class:`~repro.shard.session.ShardedSession`: the data is
        partitioned by Gaifman components and every answer runs
        scatter-gather over per-shard engines (updates route their
        deltas to the owning shards, rebalancing on component merges).

        ``tenant`` scopes the name into that tenant's namespace and
        charges its quota; ``_persist=False`` is the :meth:`restore`
        path (already durable, quotas accounted but not enforced).
        ``shards="auto"`` sizes the partition adaptively from live
        CPUs and component skew.
        """
        if shards != "auto" and (not isinstance(shards, int)
                                 or shards < 0):
            raise ValueError(
                f"shards must be >= 0 or 'auto', got {shards!r}")
        scoped = TenantManager.scope(tenant, name)
        with self._lock:
            existing = self._datasets.get(scoped)
            if existing is not None and not replace:
                raise ValueError(f"dataset {name!r} already registered")
            # may raise QuotaError before anything is registered
            self.tenants.charge_dataset(
                tenant, len(abox),
                replacing_facts=(len(existing.abox)
                                 if existing is not None else None),
                enforce=_persist)
            self._datasets[scoped] = _Dataset(
                scoped, abox, self.cache, self.max_workers,
                shards=shards, shard_executor=self.shard_executor,
                default_engine=self.default_engine, tenant=tenant,
                base_name=name)
        if existing is not None:
            # subscriptions materialized the *old* data: close them
            # (their pollers/streams get an end-of-stream, clients
            # re-subscribe against the replacement)
            self._drop_subscriptions(scoped)
            self._drain_and_close(existing)
        if self.store is not None and _persist:
            self._store_write(
                f"register {scoped!r}",
                lambda: self.store.save_dataset(
                    tenant, name, list(abox.atoms()), shards=shards,
                    epoch=0))

    def unregister_dataset(self, name: str,
                           tenant: str = DEFAULT_TENANT) -> None:
        scoped = TenantManager.scope(tenant, name)
        with self._lock:
            dataset = self._datasets.pop(scoped)
        self.tenants.release_dataset(tenant, len(dataset.abox))
        self._drop_subscriptions(scoped)
        self._drain_and_close(dataset)
        if self.store is not None:
            self._store_write(
                f"unregister {scoped!r}",
                lambda: self.store.delete_dataset(tenant, name))

    def _drop_subscriptions(self, scoped: str) -> None:
        """Close every subscription of a (replaced or unregistered)
        dataset, releasing quota and durable rows."""
        for sub in self.standing.drop_dataset(scoped):
            self.tenants.release_subscription(sub.tenant)
            if self.store is not None:
                self._store_write(
                    f"drop subscription {sub.subscription_id!r}",
                    lambda sub=sub: self.store.delete_subscription(
                        sub.tenant, sub.subscription_id))

    def _store_write(self, description: str, write) -> bool:
        """Run one durable write, absorbing failures: serving state is
        already committed when these run, so a broken disk degrades
        durability (counted, logged) instead of failing requests."""
        if self.store is None:
            return False
        try:
            write()
        except Exception as error:
            self._storage_errors.inc()
            log.error("dataset store write failed (%s): %s: %s",
                      description, type(error).__name__, error)
            return False
        return True

    @staticmethod
    def _drain_and_close(dataset: "_Dataset") -> None:
        """Close a dataset's pools after in-flight answers finish.

        The dataset is already out of the registry, so no new request
        can check a session out; the write lock drains the readers
        that are still holding one.
        """
        dataset.lock.acquire_write()
        try:
            dataset.close()
        finally:
            dataset.lock.release_write()

    def datasets(self, tenant: Optional[str] = None) -> Tuple[str, ...]:
        """All registered (tenant-scoped) names, or one tenant's
        un-scoped names when ``tenant`` is given."""
        with self._lock:
            names = sorted(self._datasets)
        if tenant is None:
            return tuple(names)
        TenantManager.validate(tenant)
        return tuple(base for scoped in names
                     for owner, base in (TenantManager.split(scoped),)
                     if owner == tenant)

    def register_tbox(self, name: str, tbox,
                      tenant: str = DEFAULT_TENANT,
                      _persist: bool = True) -> None:
        """Name an ontology for by-name reference (the HTTP front-end)."""
        scoped = TenantManager.scope(tenant, name)
        interned = self.intern_tbox(tbox)
        with self._lock:
            self._named_tboxes[scoped] = interned
        if self.store is not None and _persist:
            from ..client import tbox_to_text

            self._store_write(
                f"tbox {scoped!r}",
                lambda: self.store.save_tbox(tenant, name,
                                             tbox_to_text(interned)))

    def named_tbox(self, name: str, tenant: str = DEFAULT_TENANT):
        scoped = TenantManager.scope(tenant, name)
        with self._lock:
            try:
                return self._named_tboxes[scoped]
            except KeyError:
                raise ValueError(f"unknown tbox {name!r}") from None

    def _dataset(self, name: str) -> _Dataset:
        with self._lock:
            try:
                return self._datasets[name]
            except KeyError:
                raise ValueError(f"unknown dataset {name!r}") from None

    def _acquire_read(self, name: str) -> _Dataset:
        """The registered dataset with its read lock held.

        Re-validated after acquisition: between the registry lookup and
        the lock, ``unregister_dataset``/``register_dataset(replace=
        True)`` may have swapped the entry and closed the old pools —
        answering from that state would serve unregistered data.
        """
        while True:
            state = self._dataset(name)
            state.lock.acquire_read()
            with self._lock:
                current = self._datasets.get(name)
            if current is state:
                return state
            state.lock.release_read()

    def intern_tbox(self, tbox):
        """One canonical TBox object per fingerprint (see
        :func:`repro.fingerprint.intern_tbox`): re-parsed-per-request
        TBoxes must collapse to one representative or every request
        would pay completion again."""
        from ..fingerprint import intern_tbox

        with self._lock:
            return intern_tbox(tbox, self._tboxes)

    def _canonical_omq(self, omq: OMQ) -> OMQ:
        interned = self.intern_tbox(omq.tbox)
        if interned is omq.tbox:
            return omq
        return OMQ(interned, omq.query)

    # -- answering -----------------------------------------------------------

    def answer(self, dataset: str, omq: OMQ, method: str = "auto",
               engine: Optional[str] = None, magic: bool = False,
               optimize_program: bool = False,
               options: Optional[AnswerOptions] = None,
               tenant: str = DEFAULT_TENANT) -> ServiceResult:
        """Certain answers to ``omq`` over the named dataset.

        Configure the pipeline with one
        :class:`~repro.rewriting.plan.AnswerOptions` via ``options``
        (the legacy flags build one when it is absent; an explicit
        ``engine`` argument overrides ``options.engine``).
        """
        options = AnswerOptions.from_legacy(options, method=method,
                                            magic=magic,
                                            optimize=optimize_program,
                                            engine=engine)
        state = self._acquire_read(TenantManager.scope(tenant, dataset))
        try:
            return self._answer_locked(state, omq, options)
        finally:
            state.lock.release_read()

    def _answer_locked(self, state: _Dataset, omq: OMQ,
                       options: AnswerOptions) -> ServiceResult:
        omq = self._canonical_omq(omq)
        engine_name = options.engine or self.default_engine
        was_cached = (not options.data_dependent
                      and self.cache.contains(self.cache.key(omq, options)))
        pool = state.pool(engine_name)
        session = pool.checkout()
        start = time.perf_counter()
        try:
            result = session.answer(omq, options=options)
        finally:
            pool.checkin(session)
        elapsed = time.perf_counter() - start
        self._requests.inc()
        self.obs.answer_seconds.labels(engine=engine_name).observe(elapsed)
        _trace.annotate("plan_fingerprint", result.plan_fingerprint)
        _trace.annotate("dataset", state.name)
        _trace.annotate("cached_rewriting", was_cached)
        state.requests += 1
        return ServiceResult(answers=result.answers, dataset=state.name,
                             method=options.method, engine=engine_name,
                             seconds=elapsed, cached_rewriting=was_cached,
                             generated_tuples=result.generated_tuples,
                             relation_sizes=dict(result.relation_sizes),
                             plan_fingerprint=result.plan_fingerprint,
                             timed_out=result.timed_out,
                             shards=result.shards)

    def answer_batch(self, requests: Sequence[BatchRequest]
                     ) -> List[ServiceResult]:
        """Answer many requests, deduplicating shared rewritings.

        Requests with the same (dataset, engine, rewriting fingerprint,
        flags) are evaluated once and the result shared; unique work
        runs concurrently on a thread pool.  Read locks on every
        involved dataset are held for the whole batch, so all requests
        see one consistent data version.
        """
        requests = [request if isinstance(request, BatchRequest)
                    else BatchRequest(**request) for request in requests]
        canonical = [self._canonical_omq(request.omq)
                     for request in requests]
        all_options = [request.answer_options() for request in requests]
        scoped = [TenantManager.scope(request.tenant, request.dataset)
                  for request in requests]
        names = sorted(set(scoped))
        unique: Dict[Tuple, List[int]] = {}
        for position, (omq, options) in enumerate(
                zip(canonical, all_options)):
            engine_name = options.engine or self.default_engine
            # the cache key folds in every compile-relevant option
            # (method, magic, optimize, over); timeout is execution-
            # only but shapes the shared result's timed_out flag, so
            # it must partition the dedup (never the plan cache)
            key = (scoped[position], engine_name, options.timeout,
                   self.cache.key(omq, options))
            unique.setdefault(key, []).append(position)

        states: Dict[str, _Dataset] = {}
        try:
            for name in names:
                states[name] = self._acquire_read(name)
        except Exception:
            for state in states.values():
                state.lock.release_read()
            raise
        try:
            jobs = list(unique.items())

            def run(job) -> ServiceResult:
                _, positions = job
                request = requests[positions[0]]
                if request.trace is not None:
                    # the job runs on a pool thread with no ambient
                    # trace: activate the originating request's
                    # (contexts are per-thread, so concurrent jobs
                    # record into distinct traces)
                    with _trace.tracing(request.trace):
                        return self._answer_locked(
                            states[scoped[positions[0]]],
                            canonical[positions[0]],
                            all_options[positions[0]])
                return self._answer_locked(
                    states[scoped[positions[0]]],
                    canonical[positions[0]],
                    all_options[positions[0]])

            if len(jobs) == 1:
                outcomes = [run(jobs[0])]
            else:
                outcomes = list(self._pool().map(run, jobs))
        finally:
            for state in states.values():
                state.lock.release_read()

        results: List[Optional[ServiceResult]] = [None] * len(requests)
        for (_, positions), outcome in zip(jobs, outcomes):
            for position in positions:
                results[position] = outcome
        self._batches.inc()
        self._batch_requests.inc(len(requests))
        self._batch_deduped.inc(len(requests) - len(jobs))
        return results

    def explain(self, omq: OMQ, options: Optional[AnswerOptions] = None,
                dataset: Optional[str] = None,
                tenant: str = DEFAULT_TENANT,
                **overrides) -> Dict[str, object]:
        """The compiled plan's :meth:`~repro.rewriting.plan.Plan.explain`
        report, without evaluating anything.

        Data-independent compilations go through (and warm) the shared
        rewriting cache.  The data-dependent stages (``adaptive``,
        ``optimize``) need ``dataset``: the plan is then compiled
        against that dataset's session, exactly as :meth:`answer`
        would.
        """
        from ..rewriting.plan import compile_omq

        options = AnswerOptions.coerce(options, **overrides)
        omq = self._canonical_omq(omq)
        if not options.data_dependent:
            return compile_omq(omq, options, cache=self.cache).explain()
        if dataset is None:
            raise ValueError(
                f"options {options.rewrite_fingerprint()} are "
                "data-dependent: explain needs a dataset")
        state = self._acquire_read(TenantManager.scope(tenant, dataset))
        try:
            if state.sharded:
                # compilation only consults the master data — don't
                # boot the K-worker executor just to explain.  The
                # per-TBox master completion is cached on the dataset
                # (and cleared by update()).
                from ..rewriting.api import compile_data_variant

                def completion_of():
                    key = id(omq.tbox)
                    entry = state.completions.get(key)
                    if entry is None:
                        entry = state.completions.setdefault(
                            key, (omq.tbox,
                                  state.abox.complete(omq.tbox)))
                    return entry[1]

                data = compile_data_variant(options, state.abox,
                                            completion_of)
                return compile_omq(omq, options, data=data,
                                   cache=self.cache).explain()
            engine_name = options.engine or self.default_engine
            pool = state.pool(engine_name)
            session = pool.checkout()
            try:
                return session.compile(omq, options).explain()
            finally:
                pool.checkin(session)
        finally:
            state.lock.release_read()

    def _pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="omq-service")
            return self._executor

    # -- updates -------------------------------------------------------------

    def update(self, dataset: str,
               inserts: Iterable[GroundAtom] = (),
               deletes: Iterable[GroundAtom] = (),
               tenant: str = DEFAULT_TENANT) -> UpdateResult:
        """Incrementally mutate a dataset (deletions apply first).

        Holds the dataset's write lock: in-flight answers finish first,
        then the raw ABox, the shared completions and every pooled
        session's loaded backends are patched in place (see
        :mod:`repro.service.updates`), so the next answer reflects the
        update without any reload.

        Standing-query maintenance runs inside the same critical
        section (see :mod:`repro.standing`): the dataset epoch is
        bumped, affected subscriptions are delta-maintained and their
        :class:`~repro.standing.registry.AnswerDelta`\\ s committed
        before the lock drops, so subscribers can never observe a torn
        epoch.  The returned result carries the new epoch.

        With a backing store the requested delta is appended inside
        the same critical section — ``DELETE`` then ``INSERT OR
        IGNORE`` in one transaction reproduces the in-memory
        deletes-first semantics idempotently, so a crash between the
        in-memory commit and the durable write loses at most this
        update, never tears the file.
        """
        inserts = list(inserts)
        deletes = list(deletes)
        scoped = TenantManager.scope(tenant, dataset)
        # conservative pre-admission: an update can grow the tenant by
        # at most len(inserts) facts (duplicates make it smaller)
        self.tenants.charge_facts(tenant, len(inserts))
        state = self._dataset(scoped)
        state.lock.acquire_write()
        try:
            try:
                result = self._apply_update_locked(state, inserts,
                                                   deletes)
            except Exception:
                # the data may have partially changed: version it,
                # then re-materialize every subscription against
                # whatever the dataset now holds and push resync
                # deltas, so subscribers are not left serving answers
                # that may not reflect the partial application until
                # a next update that may never come.  Anything the
                # resync cannot refresh stays stale, which poll and
                # snapshot bodies surface to the consumer.
                state.epoch += 1
                self.standing.invalidate_dataset(scoped)
                self._resync_standing(state)
                # re-save wholesale: the store must mirror whatever
                # the partially-applied master ABox now serves
                self._store_write(
                    f"post-failure save {scoped!r}",
                    lambda: self.store.save_dataset(
                        state.tenant, state.base_name,
                        list(state.abox.atoms()), shards=state.shards,
                        epoch=state.epoch))
                raise
            state.epoch += 1
            result.epoch = state.epoch
            if self.store is not None:
                if not self._store_write(
                        f"delta {scoped!r}",
                        lambda: self.store.apply_delta(
                            state.tenant, state.base_name,
                            inserts=inserts, deletes=deletes,
                            epoch=state.epoch)):
                    # delta failed partway (rolled back): fall back to
                    # rewriting the dataset from the committed ABox
                    self._store_write(
                        f"fallback save {scoped!r}",
                        lambda: self.store.save_dataset(
                            state.tenant, state.base_name,
                            list(state.abox.atoms()),
                            shards=state.shards, epoch=state.epoch))
            self._maintain_standing(state, result)
        finally:
            state.lock.release_write()
        self.tenants.adjust_facts(tenant,
                                  result.inserted - result.deleted)
        self._updates.inc()
        state.updates += 1
        return result

    def _apply_update_locked(self, state: _Dataset,
                             inserts: Iterable[GroundAtom],
                             deletes: Iterable[GroundAtom]
                             ) -> UpdateResult:
        if state.sharded:
            # the sharded session owns the master ABox and the
            # component partition: it routes the deltas to the
            # owning shards itself (at most one session exists —
            # the single-slot sharded pool)
            sessions = state.all_sessions()
            if sessions:
                try:
                    result = sessions[0].apply_update(
                        inserts=inserts, deletes=deletes)
                except Exception:
                    # the session poisoned itself (some shard may
                    # have missed its delta) but the master ABox is
                    # correct — drop the pools so the next answer
                    # rebuilds a fresh partition over the master
                    # instead of the dataset staying bricked
                    state.close()
                    state.completions.clear()
                    raise
            else:
                # nothing loaded yet: patch the raw ABox only; the
                # first answer builds a fresh partition over it
                result = apply_update(state.abox, {}, [],
                                      inserts=inserts,
                                      deletes=deletes)
            # explain()'s master-completion cache is stale now
            state.completions.clear()
        else:
            result = apply_update(state.abox, state.completions,
                                  state.all_sessions(),
                                  inserts=inserts, deletes=deletes)
        return result

    def insert_facts(self, dataset: str, atoms: Iterable[GroundAtom],
                     tenant: str = DEFAULT_TENANT) -> UpdateResult:
        return self.update(dataset, inserts=atoms, tenant=tenant)

    def delete_facts(self, dataset: str, atoms: Iterable[GroundAtom],
                     tenant: str = DEFAULT_TENANT) -> UpdateResult:
        return self.update(dataset, deletes=atoms, tenant=tenant)

    # -- standing queries ----------------------------------------------------

    def subscribe(self, dataset: str, omq: OMQ,
                  options: Optional[AnswerOptions] = None,
                  engine: Optional[str] = None,
                  tenant: str = DEFAULT_TENANT,
                  subscription_id: Optional[str] = None,
                  _persist: bool = True,
                  **overrides) -> StandingQuery:
        """Register a standing query: compile, materialize the current
        answers, and keep them delta-maintained by every subsequent
        :meth:`update`.

        Returns the live :class:`~repro.standing.registry.StandingQuery`
        — consume it via :meth:`poll` (or the servers' SSE/long-poll
        transports) and release it with :meth:`unsubscribe`.  The
        materialization happens under the dataset's read lock, so the
        snapshot and its epoch watermark are consistent: the first
        delta a subscriber sees corresponds to exactly the first update
        after its snapshot.
        """
        options = AnswerOptions.coerce(options, engine=engine,
                                       **overrides)
        scoped = TenantManager.scope(tenant, dataset)
        # may raise QuotaError; released again if registration fails
        self.tenants.charge_subscription(tenant, enforce=_persist)
        try:
            state = self._acquire_read(scoped)
        except Exception:
            self.tenants.release_subscription(tenant)
            raise
        try:
            omq = self._canonical_omq(omq)
            engine_name = options.engine or self.default_engine
            pool = state.pool(engine_name)
            session = pool.checkout()
            try:
                plan = session.compile(omq, options)
                sub = StandingQuery(
                    subscription_id=(subscription_id
                                     or self.standing.new_id()),
                    dataset=scoped, plan=plan, options=options,
                    engine=engine_name, tenant=tenant,
                    epoch=state.epoch, oldest_epoch=state.epoch)
                initialize(sub, session)
            finally:
                pool.checkin(session)
            self.standing.add(sub)
            if self.store is not None and _persist:
                from ..client import cq_to_text, tbox_to_text

                stored = StoredSubscription(
                    subscription_id=sub.subscription_id,
                    dataset=state.base_name,
                    tbox_text=tbox_to_text(omq.tbox),
                    query=cq_to_text(omq.query),
                    answer_vars=tuple(omq.query.answer_vars),
                    options=options.as_dict(), engine=engine_name,
                    epoch=state.epoch)
                self._store_write(
                    f"subscription {sub.subscription_id!r}",
                    lambda: self.store.save_subscription(tenant,
                                                         stored))
            return sub
        except Exception:
            self.tenants.release_subscription(tenant)
            raise
        finally:
            state.lock.release_read()

    def _owned_subscription(self, subscription_id: str,
                            tenant: str) -> StandingQuery:
        """The live subscription, provided ``tenant`` owns it — a
        wrong tenant gets the same error as a nonexistent id, so ids
        cannot be probed across namespaces."""
        sub = self.standing.get(subscription_id)
        if sub.tenant != tenant:
            raise ValueError(
                f"unknown subscription {subscription_id!r}")
        return sub

    def unsubscribe(self, subscription_id: str,
                    tenant: str = DEFAULT_TENANT) -> None:
        """Drop a subscription; blocked pollers and attached streams
        see end-of-stream."""
        self._owned_subscription(subscription_id, tenant)
        self.standing.remove(subscription_id)
        self.tenants.release_subscription(tenant)
        if self.store is not None:
            self._store_write(
                f"unsubscribe {subscription_id!r}",
                lambda: self.store.delete_subscription(
                    tenant, subscription_id))

    def poll(self, subscription_id: str,
             since_epoch: Optional[int] = None,
             timeout: float = 0.0,
             tenant: str = DEFAULT_TENANT) -> Dict[str, object]:
        """Deltas newer than ``since_epoch`` (long-poll up to
        ``timeout`` seconds); see
        :meth:`~repro.standing.registry.StandingRegistry.poll`."""
        self._owned_subscription(subscription_id, tenant)
        return self.standing.poll(subscription_id,
                                  since_epoch=since_epoch,
                                  timeout=timeout)

    def _maintain_standing(self, state: _Dataset,
                           result: UpdateResult) -> None:
        """Delta-maintain this dataset's subscriptions after an update
        (caller holds the write lock; pooled sessions are quiescent and
        already patched).

        Never raises: a failed refresh marks its subscription stale
        (healed by the next update) instead of failing the update.
        """
        subs = self.standing.for_dataset(state.name)
        if not subs:
            return
        epoch = state.epoch
        delta = result.delta
        started = time.perf_counter()
        try:
            if delta is None:
                from .updates import UpdateDelta

                delta = UpdateDelta()
            # map the delta into each data variant once, not per sub
            changed_by_variant: Dict[object, FrozenSet[str]] = {}
            for sub in subs:
                key = sub.variant_key()
                if key not in changed_by_variant:
                    changed_by_variant[key] = variant_changed_predicates(
                        sub.plan._variant_tbox(), delta)
            affected = self.standing.affected(state.name,
                                              changed_by_variant)
            affected_ids = {sub.subscription_id for sub in affected}
            for sub in subs:
                if sub.subscription_id not in affected_ids:
                    self.standing.advance(sub, epoch)
            if not affected:
                return
            # shared across this update's subscriptions: N subscribers
            # of one plan cost one evaluation per affected disjunct
            memo: Dict = {}
            checked: Dict[int, Tuple[_SessionPool, object]] = {}
            try:
                for sub in affected:
                    try:
                        pool = state.pool(sub.engine)
                        entry = checked.get(id(pool))
                        if entry is None:
                            entry = (pool, pool.checkout())
                            checked[id(pool)] = entry
                        session = entry[1]
                        changed = changed_by_variant[sub.variant_key()]
                        old = sub.answers
                        new_answers, fallback = refresh(
                            sub, session, delta, changed, memo)
                        self.standing.commit(
                            sub,
                            AnswerDelta(
                                epoch=epoch,
                                added=frozenset(new_answers - old),
                                removed=frozenset(old - new_answers)),
                            new_answers)
                        sub.stale = False
                        if fallback:
                            self.standing.record_fallback()
                    except Exception as error:
                        log.error(
                            "standing maintenance failed for %s "
                            "(%s: %s); marked stale",
                            sub.subscription_id,
                            type(error).__name__, error)
                        sub.stale = True
            finally:
                for pool, session in checked.values():
                    pool.checkin(session)
        except Exception as error:  # pragma: no cover - defensive
            log.error("standing maintenance pass failed (%s: %s)",
                      type(error).__name__, error)
            self.standing.invalidate_dataset(state.name)
        finally:
            self.standing.record_maintenance(
                time.perf_counter() - started)

    def _resync_standing(self, state: _Dataset) -> None:
        """Recover this dataset's subscribers after a *failed* update
        (caller holds the write lock): re-execute each subscription's
        plan from scratch against whatever the data now holds and
        commit a ``resync`` delta carrying the full answer set.

        Never raises — it runs on the exception path of
        :meth:`update`.  A subscription whose re-execution also fails
        keeps its ``stale`` flag (set by ``invalidate_dataset``
        before this runs), which poll and snapshot bodies expose so
        its consumer knows to re-subscribe or retry.
        """
        subs = self.standing.for_dataset(state.name)
        if not subs:
            return
        epoch = state.epoch
        started = time.perf_counter()
        checked: Dict[int, Tuple[_SessionPool, object]] = {}
        try:
            for sub in subs:
                try:
                    pool = state.pool(sub.engine)
                    entry = checked.get(id(pool))
                    if entry is None:
                        entry = (pool, pool.checkout())
                        checked[id(pool)] = entry
                    session = entry[1]
                    new_answers = full_reexecute(sub, session)
                    # per-disjunct sets are rebuilt by the next
                    # successful maintenance pass
                    sub.disjunct_answers = None
                    self.standing.commit(
                        sub,
                        AnswerDelta(epoch=epoch, resync=True,
                                    answers=new_answers),
                        new_answers)
                    self.standing.record_resync()
                    sub.stale = False
                except Exception as error:
                    log.error(
                        "post-failure resync failed for %s (%s: %s); "
                        "left stale", sub.subscription_id,
                        type(error).__name__, error)
                    sub.stale = True
        except Exception as error:  # pragma: no cover - defensive
            log.error("post-failure resync pass failed (%s: %s)",
                      type(error).__name__, error)
        finally:
            for pool, session in checked.values():
                try:
                    pool.checkin(session)
                except Exception:  # pragma: no cover - defensive
                    log.exception("session checkin failed after resync")
            self.standing.record_maintenance(
                time.perf_counter() - started)

    # -- durability ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Re-save every registered dataset wholesale (under its read
        lock, so each write sees one consistent epoch).  Registrations,
        updates and subscriptions are already persisted as they happen;
        the snapshot exists to fold drift from absorbed write failures
        back into the store before a checkpoint."""
        if self.store is None:
            return {"enabled": False, "datasets": 0}
        with self._lock:
            datasets = list(self._datasets.values())
        saved = 0
        for state in datasets:
            state.lock.acquire_read()
            try:
                atoms = list(state.abox.atoms())
                shards, epoch = state.shards, state.epoch
            finally:
                state.lock.release_read()
            if self._store_write(
                    f"snapshot {state.name!r}",
                    lambda: self.store.save_dataset(
                        state.tenant, state.base_name, atoms,
                        shards=shards, epoch=epoch)):
                saved += 1
        return {"enabled": True, "datasets": saved}

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot every dataset, then truncate the WAL files — what
        the servers run on graceful shutdown, so a clean stop leaves
        fully-folded database files with no tail to replay."""
        summary = self.snapshot()
        if self.store is not None:
            try:
                summary.update(self.store.checkpoint())
            except Exception as error:
                self._storage_errors.inc()
                log.error("store checkpoint failed: %s: %s",
                          type(error).__name__, error)
        return summary

    def restore(self) -> Dict[str, object]:
        """Warm-load everything the store holds: every tenant's named
        ontologies, datasets (re-registered at their persisted epochs)
        and standing subscriptions (re-armed under their original ids,
        re-materialized from the restored facts).  Quotas are accounted
        but not enforced — restores never fail on a tightened quota.
        """
        counts = {"tenants": 0, "datasets": 0, "tboxes": 0,
                  "subscriptions": 0}
        if self.store is None:
            return counts
        from ..ontology import TBox
        from ..queries import CQ

        for tenant, snap in sorted(self.store.load_all().items()):
            counts["tenants"] += 1
            for name, text in snap.tboxes.items():
                try:
                    self.register_tbox(name, TBox.parse(text),
                                       tenant=tenant, _persist=False)
                    counts["tboxes"] += 1
                except Exception as error:
                    log.error("restore of tbox %r/%r failed: %s: %s",
                              tenant, name, type(error).__name__, error)
            for name, (atoms, shards, epoch) in snap.datasets.items():
                try:
                    self.register_dataset(name, ABox(atoms),
                                          replace=True, shards=shards,
                                          tenant=tenant, _persist=False)
                    scoped = TenantManager.scope(tenant, name)
                    self._dataset(scoped).epoch = epoch
                    counts["datasets"] += 1
                except Exception as error:
                    log.error("restore of dataset %r/%r failed: %s: %s",
                              tenant, name, type(error).__name__, error)
            for stored in snap.subscriptions:
                try:
                    omq = OMQ(TBox.parse(stored.tbox_text),
                              CQ.parse(stored.query,
                                       answer_vars=stored.answer_vars))
                    self.subscribe(
                        stored.dataset, omq,
                        options=AnswerOptions.coerce(stored.options),
                        tenant=tenant,
                        subscription_id=stored.subscription_id,
                        _persist=False)
                    counts["subscriptions"] += 1
                except Exception as error:
                    log.error("restore of subscription %r failed: "
                              "%s: %s", stored.subscription_id,
                              type(error).__name__, error)
        return counts

    def storage_status(self) -> Dict[str, object]:
        """The ``storage`` block of ``/health`` and ``/stats``."""
        if self.store is None:
            return {"enabled": False}
        try:
            status = self.store.status()
        except Exception as error:  # pragma: no cover - defensive
            status = {"enabled": True, "error": str(error)}
        status["write_errors"] = int(self._storage_errors.value)
        return status

    # -- stats and lifecycle -------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            datasets = dict(self._datasets)
        counters = {"requests": int(self._requests.value),
                    "batches": int(self._batches.value),
                    "batch_requests": int(self._batch_requests.value),
                    "batch_deduplicated": int(self._batch_deduped.value),
                    "updates": int(self._updates.value),
                    "uptime_seconds": round(
                        time.time() - self._started, 3)}
        counters["cache"] = self.cache.stats().as_dict()
        counters["standing"] = self.standing.stats()
        counters["tenants"] = self.tenants.stats()
        counters["storage"] = self.storage_status()
        counters["observability"] = self.obs.stats()
        per_dataset: Dict[str, object] = {}
        for name, state in sorted(datasets.items()):
            # the read lock keeps update() from mutating the ABox while
            # its relations are being counted
            state.lock.acquire_read()
            try:
                per_dataset[name] = {
                    "facts": len(state.abox),
                    "requests": state.requests,
                    "updates": state.updates,
                    "epoch": state.epoch,
                    "sessions": state.pool_sizes(),
                    "completions": len(state.completions),
                    "shards": state.shards}
            finally:
                state.lock.release_read()
        counters["datasets"] = per_dataset
        return counters

    def close(self) -> None:
        # checkpoint while the datasets are still registered, so a
        # graceful stop leaves fully-folded store files behind
        if self.store is not None:
            self.checkpoint()
        # close subscriptions first: blocked pollers wake with
        # end-of-stream instead of waiting out their timeouts
        self.standing.close_all()
        with self._lock:
            datasets = list(self._datasets.values())
            self._datasets.clear()
            executor = self._executor
            self._executor = None
        for state in datasets:
            state.close()
        if executor is not None:
            executor.shutdown(wait=True)
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "OMQService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            names = sorted(self._datasets)
        requests = int(self._requests.value)
        return (f"OMQService({len(names)} datasets, {requests} requests, "
                f"cache={self.cache.stats().size})")
