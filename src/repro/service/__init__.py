"""The serving layer: answer many OMQs, cheaply, across requests.

PR 1's :class:`~repro.rewriting.api.AnswerSession` amortises *data*
loading within one session; this subsystem amortises the remaining
per-request costs *across* requests and sessions:

* :mod:`repro.service.cache` — an LRU cache of compiled
  :class:`~repro.rewriting.plan.Plan` objects keyed by a canonical
  fingerprint of (TBox, CQ up to variable renaming, compile options),
  so a repeated query never pays compilation again;
* :mod:`repro.service.service` — :class:`OMQService`, a thread-safe
  front door over named datasets with pooled ``AnswerSession``s,
  batch answering with in-batch deduplication and a shared cache;
* :mod:`repro.service.updates` — incremental ABox insert/delete that
  patches the interned database, the memoised indexes, the SQLite
  tables and the cached completions in place instead of reloading;
* :mod:`repro.service.protocol` — the JSON protocol itself (request
  decoding, route dispatch, structured errors), shared by both
  HTTP front-ends so they parse and fail identically;
* :mod:`repro.service.serve` — the threaded JSON-over-HTTP front-end
  (``python -m repro serve``) on the stdlib ``http.server``;
* :mod:`repro.service.aserve` — the asyncio front-end
  (``python -m repro serve --async-io``): request coalescing of
  identical in-flight queries, micro-batching into
  ``answer_batch`` windows, and 429 queue-depth backpressure.

Standing queries (:mod:`repro.standing`) plug into the service here:
``OMQService.subscribe`` registers a compiled plan for incremental
answer maintenance inside the update path, the threaded server offers
long-poll (``POST /poll``) and the asyncio server adds SSE streaming
(``GET /subscribe``).
"""

from .aserve import AsyncServiceServer, BackgroundAsyncServer, serve_in_background
from .cache import CacheStats, RewritingCache, cq_fingerprint, tbox_fingerprint
from .protocol import ProtocolError, Router
from .service import BatchRequest, OMQService, ServiceResult
from .updates import UpdateResult, apply_update

__all__ = [
    "AsyncServiceServer",
    "BackgroundAsyncServer",
    "BatchRequest",
    "CacheStats",
    "OMQService",
    "ProtocolError",
    "RewritingCache",
    "Router",
    "ServiceResult",
    "UpdateResult",
    "apply_update",
    "cq_fingerprint",
    "serve_in_background",
    "tbox_fingerprint",
]
