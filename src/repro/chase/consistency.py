"""KB consistency checking (the ``bottom`` remark of Section 2).

The paper assumes w.l.o.g. that ontologies contain no ``bottom`` and
notes that rewritings can incorporate subqueries detecting that the
left-hand side of a disjointness axiom fires, outputting *all* tuples
in that case.  This module provides both pieces:

* :func:`is_consistent` — decides ``T, A |= bottom`` by checking
  clashes on the completed data and, via the letter-state analysis, on
  the anonymous part of the canonical model;
* :func:`inconsistency_clauses` — NDL clauses deriving a 0-ary ``Bot``
  predicate exactly when the data is inconsistent with ``T``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..data.abox import ABox, Constant
from ..datalog.program import Clause, Literal
from ..ontology.terms import Atomic, Concept, Exists, Role
from .canonical import CanonicalModel
from .certain import reachable_letters


def _individual_concepts(tbox, abox: ABox) -> Dict[Constant, Set[Concept]]:
    model = CanonicalModel(tbox, abox, max_depth=0)
    return {constant: set(model.entailed_concepts(constant))
            for constant in abox.individuals}


def _pair_roles(tbox, abox: ABox) -> Dict[Tuple[Constant, Constant],
                                          Set[Role]]:
    pairs: Dict[Tuple[Constant, Constant], Set[Role]] = {}
    for predicate in abox.binary_predicates:
        role = Role(predicate)
        supers = tbox.role_supers(role)
        inverse_supers = tbox.role_supers(role.inverse())
        for first, second in abox.binary(predicate):
            pairs.setdefault((first, second), set()).update(supers)
            pairs.setdefault((second, first), set()).update(inverse_supers)
    return pairs


def is_consistent(tbox, abox: ABox) -> bool:
    """``True`` iff ``(T, A)`` has a model (no disjointness or
    irreflexivity axiom fires in the canonical model)."""
    saturation = tbox.saturation
    if not abox.individuals:
        return True
    # global: an entailed-reflexive role clashing with irreflexivity (or
    # a disjoint pair of reflexive roles) poisons every individual
    reflexive = {role for role in tbox.roles if tbox.is_reflexive(role)}
    if reflexive and saturation.loop_clash(reflexive):
        return False
    # concept clashes at individuals
    for concepts in _individual_concepts(tbox, abox).values():
        if saturation.concepts_clash(concepts):
            return False
    # role clashes on data pairs (loops also trigger irreflexivity)
    for (first, second), roles in _pair_roles(tbox, abox).items():
        if first == second:
            if saturation.loop_clash(roles | reflexive):
                return False
        elif saturation.roles_clash(roles | reflexive):
            return False
    # the anonymous part: a null with incoming letter ``s`` satisfies
    # the concepts above Exists(s-) and the edge to its parent carries
    # the roles above ``s``
    for letter in reachable_letters(tbox, abox):
        concepts = set(saturation.concept_supers(Exists(letter.inverse())))
        if saturation.concepts_clash(concepts):
            return False
        if saturation.roles_clash(
                set(saturation.role_supers(letter)) | reflexive):
            return False
        if saturation.roles_clash(
                set(saturation.role_supers(letter.inverse())) | reflexive):
            return False
    return True


BOT = "Bot"


def inconsistency_clauses(tbox) -> List[Clause]:
    """NDL clauses over *complete* data instances deriving ``Bot()``
    exactly when ``T, A |= bottom``.

    Over a completed ABox every entailed ground atom is materialised,
    so each disjointness axiom turns into one clause; anonymous-part
    clashes are detected through the surrogate atoms ``A_rho``.
    """
    from ..ontology.tbox import surrogate_name

    clauses: List[Clause] = []
    head = Literal(BOT, ())

    def concept_literal(concept: Concept, var: str):
        if isinstance(concept, Atomic):
            return Literal(concept.name, (var,))
        if isinstance(concept, Exists):
            return Literal(surrogate_name(concept.role), (var,))
        return Literal("__adom__", (var,))

    saturation = tbox.saturation
    for axiom in saturation.concept_disjointness:
        clauses.append(Clause(head, (concept_literal(axiom.lhs, "x"),
                                     concept_literal(axiom.rhs, "x"))))
    for axiom in saturation.role_disjointness:
        first = (Literal(axiom.lhs.name, ("x", "y"))
                 if not axiom.lhs.inverted
                 else Literal(axiom.lhs.name, ("y", "x")))
        second = (Literal(axiom.rhs.name, ("x", "y"))
                  if not axiom.rhs.inverted
                  else Literal(axiom.rhs.name, ("y", "x")))
        clauses.append(Clause(head, (first, second)))
    for axiom in saturation.irreflexivities:
        clauses.append(Clause(head,
                              (Literal(axiom.role.name, ("x", "x")),)))
    # anonymous-part clashes: if an inherently clashing letter state is
    # reachable from Exists(rho), Bot fires as soon as some individual
    # entails Exists(rho) (i.e. carries A_rho in the completed data)
    from ..ontology.depth import successor_graph

    graph = successor_graph(tbox)
    bad_states = set()
    for letter in graph:
        concepts = set(saturation.concept_supers(Exists(letter.inverse())))
        if (saturation.concepts_clash(concepts)
                or saturation.roles_clash(
                    set(saturation.role_supers(letter)))
                or saturation.roles_clash(
                    set(saturation.role_supers(letter.inverse())))):
            bad_states.add(letter)
    for letter in graph:
        closure = {letter}
        stack = [letter]
        while stack:
            current = stack.pop()
            for succ in graph.get(current, ()):
                if succ not in closure:
                    closure.add(succ)
                    stack.append(succ)
        if closure & bad_states:
            clauses.append(Clause(head, (Literal(
                surrogate_name(letter), ("x",)),)))
    return clauses
