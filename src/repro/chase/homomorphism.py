"""Backtracking homomorphism search from CQs into canonical models.

``T, A |= q(a)`` iff there is a homomorphism ``h : q -> C_{T,A}`` with
``h(x) = a`` (Section 2), so this module is the semantic reference point
for every rewriting in the library.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..queries.cq import CQ, Atom, Variable
from .canonical import CanonicalModel, Element, individual


def _variable_order(query: CQ,
                    preassigned: Sequence[Variable]) -> List[Variable]:
    """Order variables so each (after the first of its component) is
    adjacent to an already-placed variable — keeps the search guided."""
    graph = query.gaifman()
    order: List[Variable] = [v for v in preassigned if v in query.variables]
    placed = set(order)
    frontier: List[Variable] = list(order)
    while len(placed) < len(query.variables):
        index = 0
        while index < len(frontier):
            for neighbour in sorted(graph.neighbors(frontier[index])):
                if neighbour not in placed:
                    placed.add(neighbour)
                    order.append(neighbour)
                    frontier.append(neighbour)
            index += 1
        if len(placed) < len(query.variables):
            # start a fresh connected component
            fresh = min(query.variables - placed)
            placed.add(fresh)
            order.append(fresh)
            frontier = [fresh]
    return order


def _atom_checks(query: CQ, order: Sequence[Variable]):
    """For each position in the order, the atoms fully assigned there."""
    position = {var: i for i, var in enumerate(order)}
    checks: List[List[Atom]] = [[] for _ in order]
    for atom in query.atoms:
        latest = max(position[arg] for arg in atom.args)
        checks[latest].append(atom)
    return checks


def _candidates(model: CanonicalModel, query: CQ, var: Variable,
                assignment: Dict[Variable, Element]) -> Iterator[Element]:
    """Candidate images for ``var``: via an already-assigned neighbour when
    possible, the whole (bounded) domain otherwise."""
    for atom in query.binary_atoms():
        first, second = atom.args
        if first == second:
            continue
        if first == var and second in assignment:
            # need u with predicate(u, h(second)); enumerate via inverse
            for candidate in _inverse_neighbours(model, atom.predicate,
                                                 assignment[second]):
                yield candidate
            return
        if second == var and first in assignment:
            yield from model.role_neighbours(atom.predicate,
                                             assignment[first])
            return
    yield from model.elements()


def _inverse_neighbours(model: CanonicalModel, predicate: str,
                        element: Element) -> Iterator[Element]:
    """All ``u`` with ``predicate(u, element)`` in the model."""
    from ..ontology.terms import Role

    role = Role(predicate, True)
    tbox = model.tbox
    seen = set()
    if model.is_individual(element):
        constant = element[0]
        for sub in tbox.role_subs(role):
            for first, second in model.abox.role_pairs(sub):
                if first == constant and (cand := individual(second)) not in seen:
                    seen.add(cand)
                    yield cand
        if role.name not in tbox.role_names:
            for first, second in model.abox.role_pairs(role):
                if first == constant and (cand := individual(second)) not in seen:
                    seen.add(cand)
                    yield cand
    if tbox.is_reflexive(role) and element not in seen:
        seen.add(element)
        yield element
    for child in model.children(element):
        if tbox.entails_role(child[1][-1], role) and child not in seen:
            seen.add(child)
            yield child
    parent = model.parent(element)
    if parent is not None and parent not in seen:
        if tbox.entails_role(element[1][-1].inverse(), role):
            yield parent


def _satisfied(model: CanonicalModel, atom: Atom,
               assignment: Dict[Variable, Element]) -> bool:
    if atom.is_unary:
        return model.satisfies_concept(atom.predicate,
                                       assignment[atom.args[0]])
    return model.satisfies_role(atom.predicate, assignment[atom.args[0]],
                                assignment[atom.args[1]])


def find_homomorphism(
        model: CanonicalModel, query: CQ,
        fixed: Optional[Dict[Variable, Element]] = None
) -> Optional[Dict[Variable, Element]]:
    """A homomorphism ``q -> C_{T,A}`` extending ``fixed``, or ``None``."""
    for hom in homomorphisms(model, query, fixed):
        return hom
    return None


def homomorphisms(
        model: CanonicalModel, query: CQ,
        fixed: Optional[Dict[Variable, Element]] = None
) -> Iterator[Dict[Variable, Element]]:
    """All homomorphisms ``q -> C_{T,A}`` extending ``fixed``."""
    fixed = dict(fixed or {})
    order = _variable_order(query, list(fixed))
    checks = _atom_checks(query, order)
    assignment: Dict[Variable, Element] = {}

    def extend(position: int) -> Iterator[Dict[Variable, Element]]:
        if position == len(order):
            yield dict(assignment)
            return
        var = order[position]
        if var in fixed:
            candidates: Iterator[Element] = iter([fixed[var]])
        else:
            candidates = _candidates(model, query, var, assignment)
        for candidate in candidates:
            assignment[var] = candidate
            if all(_satisfied(model, atom, assignment)
                   for atom in checks[position]):
                yield from extend(position + 1)
            del assignment[var]

    yield from extend(0)
