"""The canonical model (chase) ``C_{T,A}`` of Section 2.

Elements are the individuals of ``A`` plus labelled nulls
``a . rho_1 ... rho_n`` where ``rho_1 ... rho_n`` ranges over the
generating words ``W_T`` whose first letter is forced at ``a``
(``T, A |= Exists(rho_1)(a)``).  Since ``W_T`` may be infinite, the
model is explored lazily up to a *depth bound*; for answering a CQ
``q`` a bound of ``|var(q)|`` suffices, because a homomorphic image of
a connected component of ``q`` inside a tree of nulls spans at most
``|var(q)|`` consecutive levels.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..data.abox import ABox, Constant
from ..ontology.depth import Word, successor_roles
from ..ontology.terms import Atomic, Exists, Role

#: An element of the canonical model: an individual with a (possibly
#: empty) word of roles attached.  Individuals are ``(a, ())``.
Element = Tuple[Constant, Word]


def individual(constant: Constant) -> Element:
    return (constant, ())


def element_str(element: Element) -> str:
    constant, word = element
    if not word:
        return constant
    return constant + "." + ".".join(str(role) for role in word)


class CanonicalModel:
    """A lazily explored canonical model ``C_{T,A}``.

    Parameters
    ----------
    tbox, abox:
        the knowledge base.
    max_depth:
        longest word of nulls to explore.  ``None`` uses the ontology
        depth when finite and must be supplied otherwise (callers use
        ``|var(q)|``).
    """

    def __init__(self, tbox, abox: ABox, max_depth: Optional[int] = None):
        self.tbox = tbox
        self.abox = abox
        if max_depth is None:
            from ..ontology.depth import chase_depth

            depth = chase_depth(tbox)
            if depth is math.inf:
                raise ValueError(
                    "an explicit max_depth is required for infinite-depth "
                    "ontologies")
            max_depth = int(depth)
        self.max_depth = max_depth
        self._entailed_concepts: Dict[Constant, Set] = {}
        self._compute_individual_concepts()
        self._successor_cache: Dict[Role, List[Role]] = {}

    # -- individual-level entailments ------------------------------------

    def _compute_individual_concepts(self) -> None:
        tbox, abox = self.tbox, self.abox
        top_supers = tbox.concept_supers(_top())
        for constant in abox.individuals:
            self._entailed_concepts[constant] = set(top_supers)
        for predicate in abox.unary_predicates:
            supers = tbox.concept_supers(Atomic(predicate))
            for constant in abox.unary(predicate):
                self._entailed_concepts[constant].update(supers)
        for predicate in abox.binary_predicates:
            role = Role(predicate)
            forward = tbox.concept_supers(Exists(role))
            backward = tbox.concept_supers(Exists(role.inverse()))
            for first, second in abox.binary(predicate):
                self._entailed_concepts[first].update(forward)
                self._entailed_concepts[second].update(backward)

    def entailed_concepts(self, constant: Constant) -> FrozenSet:
        """Basic concepts ``tau`` with ``T, A |= tau(a)``."""
        return frozenset(self._entailed_concepts.get(constant, ()))

    # -- elements ----------------------------------------------------------

    @property
    def individuals(self) -> FrozenSet[Constant]:
        return self.abox.individuals

    def is_individual(self, element: Element) -> bool:
        return not element[1]

    def _successors_of_role(self, role: Role) -> List[Role]:
        if role not in self._successor_cache:
            self._successor_cache[role] = successor_roles(self.tbox, role)
        return self._successor_cache[role]

    def children(self, element: Element) -> List[Element]:
        """The witnesses ``element . rho`` present in the model."""
        constant, word = element
        if len(word) >= self.max_depth:
            return []
        tbox = self.tbox
        if word:
            letters = self._successors_of_role(word[-1])
        else:
            concepts = self._entailed_concepts.get(constant, ())
            letters = [role for role in sorted(tbox.roles)
                       if not tbox.is_reflexive(role)
                       and Exists(role) in concepts]
        return [(constant, word + (letter,)) for letter in letters]

    def parent(self, element: Element) -> Optional[Element]:
        constant, word = element
        if not word:
            return None
        return (constant, word[:-1])

    def elements(self) -> Iterator[Element]:
        """All elements up to the depth bound (individuals first)."""
        stack: List[Element] = []
        for constant in sorted(self.abox.individuals):
            root = individual(constant)
            yield root
            stack.extend(self.children(root))
        while stack:
            element = stack.pop()
            yield element
            stack.extend(self.children(element))

    def size(self) -> int:
        return sum(1 for _ in self.elements())

    # -- satisfaction --------------------------------------------------------

    def satisfies_concept(self, name: str, element: Element) -> bool:
        """``C_{T,A} |= name(element)``."""
        constant, word = element
        if not word:
            return Atomic(name) in self._entailed_concepts.get(constant, ())
        return self.tbox.entails_concept(Exists(word[-1].inverse()),
                                         Atomic(name))

    def satisfies_role(self, predicate: str, first: Element,
                       second: Element) -> bool:
        """``C_{T,A} |= predicate(first, second)``."""
        role = Role(predicate)
        if self.is_individual(first) and self.is_individual(second):
            if self._data_role_holds(role, first[0], second[0]):
                return True
        if first == second and self.tbox.is_reflexive(role):
            return True
        # child edge: second = first . sigma
        if (second[0] == first[0] and len(second[1]) == len(first[1]) + 1
                and second[1][:-1] == first[1]):
            return self.tbox.entails_role(second[1][-1], role)
        # parent edge: first = second . sigma
        if (first[0] == second[0] and len(first[1]) == len(second[1]) + 1
                and first[1][:-1] == second[1]):
            return self.tbox.entails_role(first[1][-1].inverse(), role)
        return False

    def _data_role_holds(self, role: Role, first: Constant,
                         second: Constant) -> bool:
        for sub in self.tbox.role_subs(role):
            if self.abox.has_role(sub, first, second):
                return True
        # data predicates outside the ontology signature
        return self.abox.has_role(role, first, second)

    def role_neighbours(self, predicate: str,
                        element: Element) -> Iterator[Element]:
        """All ``v`` with ``C_{T,A} |= predicate(element, v)``."""
        role = Role(predicate)
        tbox = self.tbox
        seen: Set[Element] = set()
        if self.is_individual(element):
            constant = element[0]
            for sub in tbox.role_subs(role):
                for first, second in self.abox.role_pairs(sub):
                    if first == constant:
                        candidate = individual(second)
                        if candidate not in seen:
                            seen.add(candidate)
                            yield candidate
            if role.name not in tbox.role_names:
                for first, second in self.abox.role_pairs(role):
                    if first == constant:
                        candidate = individual(second)
                        if candidate not in seen:
                            seen.add(candidate)
                            yield candidate
        if tbox.is_reflexive(role) and element not in seen:
            seen.add(element)
            yield element
        for child in self.children(element):
            if tbox.entails_role(child[1][-1], role) and child not in seen:
                seen.add(child)
                yield child
        parent = self.parent(element)
        if parent is not None and parent not in seen:
            if tbox.entails_role(element[1][-1].inverse(), role):
                yield parent

    def __repr__(self) -> str:
        return (f"CanonicalModel({len(self.abox.individuals)} individuals, "
                f"max_depth={self.max_depth})")


def _top():
    from ..ontology.terms import TOP

    return TOP
